"""The bytecode machine: a flat register file and a handler table.

Executes :class:`~repro.vm.bytecode.BytecodeProgram` with exactly the
reference interpreter's observable semantics:

* shared runtime types (:class:`HeapObject`, :class:`HeapArray`,
  :class:`ExecutionResult`, :class:`InterpreterState`) and identical
  trap messages, raised as :class:`EvaluationTrap`;
* identical step accounting — one step per executed instruction or
  terminator, zero for phis — and the same
  :class:`BudgetExceeded` timing (checked before executing);
* the same profile hooks (``record_block`` on every block entry,
  ``record_branch`` per ``If``) and the same
  ``observer(instruction, value)`` callback per produced value;
* metered runs accumulate the costs baked into the tuples, matching
  the reference's ``cycle_cost=cycles_of`` totals.

The dispatch loop keeps ``steps``/``cycles`` in Python locals and
flushes them to the shared :class:`InterpreterState` around calls,
returns and traps — the single biggest win over attribute traffic in
an inner loop.  Calls are the one opcode dispatched inline (they need
the flush); everything else indexes ``_HANDLERS``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..interp.interpreter import (
    BudgetExceeded,
    ExecutionResult,
    HeapArray,
    HeapObject,
    InterpreterState,
    ProfileCollector,
)
from ..ir.ops import EvaluationTrap, _is_ref
from .bytecode import (
    OP_CALL,
    OP_GOTO,
    OP_IF,
    OP_RETURN,
    BytecodeFunction,
    BytecodeProgram,
)

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
_TWO64 = 1 << 64


# ----------------------------------------------------------------------
# Handlers.  Uniform signature (vm, ins, regs, pc) -> next pc; a
# negative pc means "return from frame" (the value is in vm._retval).
# Arithmetic inlines the wrap64/eval_binop semantics of repro.ir.ops.
# ----------------------------------------------------------------------
def _op_add(vm, ins, regs, pc):
    v = (regs[ins[4]] + regs[ins[5]]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_sub(vm, ins, regs, pc):
    v = (regs[ins[4]] - regs[ins[5]]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_mul(vm, ins, regs, pc):
    v = (regs[ins[4]] * regs[ins[5]]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_div(vm, ins, regs, pc):
    b = regs[ins[5]]
    if b == 0:
        raise EvaluationTrap("division by zero")
    a = regs[ins[4]]
    q = abs(a) // abs(b)  # truncate toward zero (Python's // floors)
    if (a >= 0) != (b >= 0):
        q = -q
    v = q & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_mod(vm, ins, regs, pc):
    b = regs[ins[5]]
    if b == 0:
        raise EvaluationTrap("modulo by zero")
    a = regs[ins[4]]
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    v = r & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_and(vm, ins, regs, pc):
    v = (regs[ins[4]] & regs[ins[5]]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_or(vm, ins, regs, pc):
    v = (regs[ins[4]] | regs[ins[5]]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_xor(vm, ins, regs, pc):
    v = (regs[ins[4]] ^ regs[ins[5]]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_shl(vm, ins, regs, pc):
    v = (regs[ins[4]] << (regs[ins[5]] & 63)) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_shr(vm, ins, regs, pc):
    v = (regs[ins[4]] >> (regs[ins[5]] & 63)) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_ushr(vm, ins, regs, pc):
    v = ((regs[ins[4]] & _MASK) >> (regs[ins[5]] & 63)) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_eq(vm, ins, regs, pc):
    a, b = regs[ins[4]], regs[ins[5]]
    regs[ins[3]] = a is b if _is_ref(a) or _is_ref(b) else a == b
    return pc + 1


def _op_ne(vm, ins, regs, pc):
    a, b = regs[ins[4]], regs[ins[5]]
    regs[ins[3]] = not (a is b if _is_ref(a) or _is_ref(b) else a == b)
    return pc + 1


def _op_lt(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] < regs[ins[5]]
    return pc + 1


def _op_le(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] <= regs[ins[5]]
    return pc + 1


def _op_gt(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] > regs[ins[5]]
    return pc + 1


def _op_ge(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] >= regs[ins[5]]
    return pc + 1


def _op_not(vm, ins, regs, pc):
    regs[ins[3]] = not regs[ins[4]]
    return pc + 1


def _op_neg(vm, ins, regs, pc):
    v = (-regs[ins[4]]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_new(vm, ins, regs, pc):
    regs[ins[3]] = HeapObject(ins[4], dict(ins[5]))
    return pc + 1


def _op_load_field(vm, ins, regs, pc):
    obj = regs[ins[4]]
    if obj is None:
        raise EvaluationTrap(f"null dereference reading .{ins[5]}")
    regs[ins[3]] = obj.fields[ins[5]]
    return pc + 1


def _op_store_field(vm, ins, regs, pc):
    obj = regs[ins[4]]
    if obj is None:
        raise EvaluationTrap(f"null dereference writing .{ins[5]}")
    obj.fields[ins[5]] = regs[ins[6]]
    regs[ins[3]] = None
    return pc + 1


def _op_load_global(vm, ins, regs, pc):
    regs[ins[3]] = vm.state.globals[ins[4]]
    return pc + 1


def _op_store_global(vm, ins, regs, pc):
    vm.state.globals[ins[4]] = regs[ins[5]]
    regs[ins[3]] = None
    return pc + 1


def _op_new_array(vm, ins, regs, pc):
    length = regs[ins[4]]
    if length < 0:
        raise EvaluationTrap(f"negative array length {length}")
    regs[ins[3]] = HeapArray([ins[5]] * length)
    return pc + 1


def _op_array_load(vm, ins, regs, pc):
    array = regs[ins[4]]
    if array is None:
        raise EvaluationTrap("null array access")
    index = regs[ins[5]]
    if 0 <= index < len(array.values):
        regs[ins[3]] = array.values[index]
        return pc + 1
    raise EvaluationTrap(f"array index {index} out of bounds")


def _op_array_store(vm, ins, regs, pc):
    array = regs[ins[4]]
    if array is None:
        raise EvaluationTrap("null array access")
    index = regs[ins[5]]
    if 0 <= index < len(array.values):
        array.values[index] = regs[ins[6]]
        regs[ins[3]] = None
        return pc + 1
    raise EvaluationTrap(f"array index {index} out of bounds")


def _op_array_length(vm, ins, regs, pc):
    array = regs[ins[4]]
    if array is None:
        raise EvaluationTrap("null dereference in len()")
    regs[ins[3]] = len(array.values)
    return pc + 1


def _op_call(vm, ins, regs, pc):  # pragma: no cover - dispatched inline
    raise AssertionError("calls are dispatched inline by the frame loop")


def _take_edge(vm, regs, edge):
    """Complete one CFG edge: profile hook, phi moves, observers."""
    if vm.profile is not None:
        vm.profile.record_block(edge[3])
    for d, s in edge[1]:
        regs[d] = regs[s]
    if vm.observer is not None:
        for phi, dreg in edge[2]:
            vm.observer(phi, regs[dreg])
    return edge[0]


def _op_goto(vm, ins, regs, pc):
    edge = ins[4]
    if vm.profile is None and vm.observer is None and not edge[1]:
        return edge[0]
    return _take_edge(vm, regs, edge)


def _op_if(vm, ins, regs, pc):
    if regs[ins[4]]:
        taken, edge = True, ins[5]
    else:
        taken, edge = False, ins[6]
    if vm.profile is not None:
        vm.profile.record_branch(ins[2], taken)
    if vm.profile is None and vm.observer is None and not edge[1]:
        return edge[0]
    return _take_edge(vm, regs, edge)


def _op_return(vm, ins, regs, pc):
    vm._retval = regs[ins[4]] if ins[4] >= 0 else None
    return -1


_HANDLERS: tuple[Callable, ...] = (
    _op_add, _op_sub, _op_mul, _op_div, _op_mod,
    _op_and, _op_or, _op_xor, _op_shl, _op_shr, _op_ushr,
    _op_eq, _op_ne, _op_lt, _op_le, _op_gt, _op_ge,
    _op_not, _op_neg, _op_new,
    _op_load_field, _op_store_field, _op_load_global, _op_store_global,
    _op_new_array, _op_array_load, _op_array_store, _op_array_length,
    _op_call, _op_goto, _op_if, _op_return,
)

#: extended handler table for the fused/quickened fast stream — base
#: opcodes first, then every opcode registered by repro.vm.fusion and
#: repro.vm.quicken (in that import order, which repro.vm.__init__
#: fixes, so extended opcode numbers are stable across processes and
#: safe to pickle into cached artifacts).
XHANDLERS: list = list(_HANDLERS)


def register_xop(handler: Callable) -> int:
    """Append ``handler`` to the extended table; returns its opcode."""
    XHANDLERS.append(handler)
    return len(XHANDLERS) - 1


#: extended opcodes the fast loops dispatch *inline* (if/elif on the
#: opcode instead of a handler call — in CPython the call is the
#: expensive part).  Bound by repro.vm.fusion once it has registered
#: its superinstructions; -1 (never a valid opcode) until then, which
#: safely disables the inline arms.
#: (spec_base, if_lt, if_gt, if_ge) — see bind_fast_ops.  The huge
#: sentinel spec_base disables the range arm until fusion binds it.
_X_OPS = (1 << 30, -1, -1, -1)


def bind_fast_ops(spec_base: int, if_lt: int, if_gt: int, if_ge: int) -> None:
    """Tell the fast loops how to dispatch extended opcodes inline.

    ``spec_base`` routes by *range*: every opcode >= ``spec_base`` must
    be a plain compute handler — it returns a non-negative next pc and
    is never a call, return or CFG terminator — so the fast loops
    dispatch it with a single compare and skip the return-pc check.
    Fusion's specialized pair/triple superinstructions and all of
    quickening's forms satisfy this by construction; anything
    registered through :func:`register_xop` after fusion's import must
    too.  The fused compare+branch opcodes sit below ``spec_base`` and
    the hottest three get dedicated inline arms.
    """
    global _X_OPS
    _X_OPS = (spec_base, if_lt, if_gt, if_ge)


def fast_op_bindings() -> tuple:
    """The current ``(spec_base, if_lt, if_gt, if_ge)`` inline-dispatch
    bindings — read-only view for the verifier and tests."""
    return _X_OPS


class VirtualMachine:
    """Drop-in execution engine with the reference interpreter's API.

    ``run``/``reset``/``state`` mirror :class:`repro.interp.Interpreter`
    so harness code can treat both engines uniformly.  Metering is a
    boolean (costs are baked into the bytecode at translation time);
    translate with custom cost functions for a non-default model.
    """

    def __init__(
        self,
        bytecode: BytecodeProgram,
        max_steps: int = 50_000_000,
        metered: bool = False,
        profile: Optional[ProfileCollector] = None,
        max_call_depth: int = 200,
        observer: Optional[Callable[[Any, Any], None]] = None,
        fused: bool = True,
    ) -> None:
        self.bytecode = bytecode
        self.max_steps = max_steps
        self.metered = metered
        self.profile = profile
        self.max_call_depth = max_call_depth
        self.observer = observer
        #: ``fused=False`` pins the flat-tuple loops even when a fused
        #: stream exists (the bench engine matrix's "vm-nofuse" row).
        self.fused = fused
        self._call_depth = 0
        self._retval: Any = None
        self.state = InterpreterState()
        self._init_globals()

    @classmethod
    def for_program(cls, program, **kwargs) -> "VirtualMachine":
        """Translate ``program`` and build a machine for it."""
        from .translate import translate_program

        return cls(translate_program(program), **kwargs)

    def _init_globals(self) -> None:
        self.state.globals = dict(self.bytecode.globals_init)

    def reset(self) -> None:
        """Fresh globals and meters (run-to-run isolation)."""
        self.state = InterpreterState()
        self._init_globals()

    # ------------------------------------------------------------------
    def run(self, function: str, args: list[Any]) -> ExecutionResult:
        """Call ``function`` with ``args`` and capture the outcome."""
        fn = self.bytecode.functions[function]
        try:
            value = self._call(fn, list(args))
            return ExecutionResult(
                value=value, steps=self.state.steps, cycles=self.state.cycles
            )
        except EvaluationTrap as trap:
            return ExecutionResult(
                trap=str(trap), steps=self.state.steps, cycles=self.state.cycles
            )

    def _call(self, fn: BytecodeFunction, args: list[Any]) -> Any:
        if len(args) != fn.nparams:
            raise TypeError(
                f"{fn.name} expects {fn.nparams} args, got {len(args)}"
            )
        self._call_depth += 1
        try:
            return self._run_frame(fn, args)
        finally:
            self._call_depth -= 1

    def _run_frame(self, fn: BytecodeFunction, args: list[Any]) -> Any:
        if (
            self.fused
            and fn.xcode is not None
            and self.profile is None
            and self.observer is None
        ):
            return self._run_frame_fast(fn, args)
        if self._call_depth > self.max_call_depth:
            raise EvaluationTrap("stack overflow")
        regs = fn.template[:]
        if args:
            regs[: len(args)] = args
        if self.profile is not None:
            self.profile.record_block(fn.entry_block)
        state = self.state
        max_steps = self.max_steps
        metered = self.metered
        observer = self.observer
        handlers = _HANDLERS
        code = fn.code
        # Hot loop: steps/cycles live in locals, flushed to the shared
        # state around calls, returns and traps (see module docstring).
        # Three specializations keep per-instruction branching minimal;
        # they are line-for-line identical except for metering/observer.
        steps = state.steps
        cycles = state.cycles
        pc = 0
        try:
            if observer is None and metered:
                while True:
                    ins = code[pc]
                    steps += 1
                    if steps > max_steps:
                        state.steps = steps
                        state.cycles = cycles
                        raise BudgetExceeded(
                            f"exceeded {max_steps} interpreter steps"
                        )
                    op = ins[0]
                    if op != OP_CALL:
                        pc = handlers[op](self, ins, regs, pc)
                        if pc < 0:
                            # Return: charge its cost like any terminator.
                            state.steps = steps
                            state.cycles = cycles + ins[1]
                            return self._retval
                    else:
                        state.steps = steps
                        state.cycles = cycles
                        regs[ins[3]] = self._call(
                            ins[4], [regs[r] for r in ins[5]]
                        )
                        steps = state.steps
                        cycles = state.cycles
                        pc += 1
                    cycles += ins[1]
            elif observer is None:
                while True:
                    ins = code[pc]
                    steps += 1
                    if steps > max_steps:
                        state.steps = steps
                        state.cycles = cycles
                        raise BudgetExceeded(
                            f"exceeded {max_steps} interpreter steps"
                        )
                    op = ins[0]
                    if op != OP_CALL:
                        pc = handlers[op](self, ins, regs, pc)
                        if pc < 0:
                            state.steps = steps
                            state.cycles = cycles
                            return self._retval
                    else:
                        state.steps = steps
                        state.cycles = cycles
                        regs[ins[3]] = self._call(
                            ins[4], [regs[r] for r in ins[5]]
                        )
                        steps = state.steps
                        cycles = state.cycles
                        pc += 1
            else:
                while True:
                    ins = code[pc]
                    steps += 1
                    if steps > max_steps:
                        state.steps = steps
                        state.cycles = cycles
                        raise BudgetExceeded(
                            f"exceeded {max_steps} interpreter steps"
                        )
                    op = ins[0]
                    if op != OP_CALL:
                        pc = handlers[op](self, ins, regs, pc)
                        if pc < 0:
                            state.steps = steps
                            state.cycles = cycles + ins[1] if metered else cycles
                            return self._retval
                    else:
                        state.steps = steps
                        state.cycles = cycles
                        regs[ins[3]] = self._call(
                            ins[4], [regs[r] for r in ins[5]]
                        )
                        steps = state.steps
                        cycles = state.cycles
                        pc += 1
                    if metered:
                        cycles += ins[1]
                    if ins[3] >= 0:
                        observer(ins[2], regs[ins[3]])
        except EvaluationTrap:
            # A trap from a nested call already flushed fresher values.
            if steps > state.steps:
                state.steps = steps
                state.cycles = cycles
            raise

    # ------------------------------------------------------------------
    # Fused/quickened fast stream.  Only taken when neither a profile
    # collector nor an observer is attached: hooked runs fall back to
    # the flat-tuple loops above, which keeps hook semantics untouched
    # by construction.  Every ``xcode`` tuple carries a trailing step
    # weight (``ins[-1]``); superinstructions (weight 2 or 3)
    # additionally carry the tuple of their unfused prefix halves at
    # ``ins[-2]`` so the budget slow path can stop mid-run with exact
    # reference timing.
    # ------------------------------------------------------------------
    def _run_frame_fast(self, fn: BytecodeFunction, args: list[Any]) -> Any:
        if self._call_depth > self.max_call_depth:
            raise EvaluationTrap("stack overflow")
        if not fn.quickened:
            from .quicken import quicken_function

            quicken_function(fn)
        code = fn.xcode
        regs = fn.template[:]
        if args:
            regs[: len(args)] = args
        state = self.state
        max_steps = self.max_steps
        handlers = XHANDLERS
        # Every opcode >= x_spec is a plain compute handler (specialized
        # pair/triple superinstructions, quickened forms): one range
        # compare dispatches it and the return-pc check is skipped.
        # The hottest fused branches below x_spec get inline arms — an
        # int compare beats a handler call by a wide margin in CPython;
        # their bodies are line-identical to the registered handlers.
        x_spec, x_if_lt, x_if_gt, x_if_ge = _X_OPS
        steps = state.steps
        cycles = state.cycles
        pc = 0
        try:
            if self.metered:
                while True:
                    ins = code[pc]
                    steps += ins[-1]
                    if steps > max_steps:
                        self._budget_stop(ins, regs, pc, steps, cycles)
                    op = ins[0]
                    if op >= x_spec:
                        pc = handlers[op](self, ins, regs, pc)
                    elif op == x_if_lt:
                        c = regs[ins[4]] < regs[ins[5]]
                        regs[ins[3]] = c
                        edge = ins[6] if c else ins[7]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == OP_GOTO:
                        edge = ins[4]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == x_if_gt:
                        c = regs[ins[4]] > regs[ins[5]]
                        regs[ins[3]] = c
                        edge = ins[6] if c else ins[7]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == x_if_ge:
                        c = regs[ins[4]] >= regs[ins[5]]
                        regs[ins[3]] = c
                        edge = ins[6] if c else ins[7]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == OP_IF:
                        edge = ins[5] if regs[ins[4]] else ins[6]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == OP_RETURN:
                        state.steps = steps
                        state.cycles = cycles + ins[1]
                        return regs[ins[4]] if ins[4] >= 0 else None
                    elif op != OP_CALL:
                        pc = handlers[op](self, ins, regs, pc)
                        if pc < 0:
                            state.steps = steps
                            state.cycles = cycles + ins[1]
                            return self._retval
                    else:
                        # Direct frame dispatch: skips the _call and
                        # _run_frame layers.  Arity is correct by
                        # construction in translated bytecode, and the
                        # fast-frame preconditions (fused, no hooks)
                        # are invariant across frames of one run.
                        state.steps = steps
                        state.cycles = cycles
                        callee = ins[4]
                        self._call_depth += 1
                        try:
                            if callee.xcode is not None:
                                regs[ins[3]] = self._run_frame_fast(
                                    callee, [regs[r] for r in ins[5]]
                                )
                            else:
                                regs[ins[3]] = self._run_frame(
                                    callee, [regs[r] for r in ins[5]]
                                )
                        finally:
                            self._call_depth -= 1
                        steps = state.steps
                        cycles = state.cycles
                        pc += 1
                    cycles += ins[1]
            else:
                while True:
                    ins = code[pc]
                    steps += ins[-1]
                    if steps > max_steps:
                        self._budget_stop(ins, regs, pc, steps, cycles)
                    op = ins[0]
                    if op >= x_spec:
                        pc = handlers[op](self, ins, regs, pc)
                    elif op == x_if_lt:
                        c = regs[ins[4]] < regs[ins[5]]
                        regs[ins[3]] = c
                        edge = ins[6] if c else ins[7]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == OP_GOTO:
                        edge = ins[4]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == x_if_gt:
                        c = regs[ins[4]] > regs[ins[5]]
                        regs[ins[3]] = c
                        edge = ins[6] if c else ins[7]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == x_if_ge:
                        c = regs[ins[4]] >= regs[ins[5]]
                        regs[ins[3]] = c
                        edge = ins[6] if c else ins[7]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == OP_IF:
                        edge = ins[5] if regs[ins[4]] else ins[6]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        pc = edge[0]
                    elif op == OP_RETURN:
                        state.steps = steps
                        state.cycles = cycles
                        return regs[ins[4]] if ins[4] >= 0 else None
                    elif op != OP_CALL:
                        pc = handlers[op](self, ins, regs, pc)
                        if pc < 0:
                            state.steps = steps
                            state.cycles = cycles
                            return self._retval
                    else:
                        # Same direct frame dispatch as the metered loop.
                        state.steps = steps
                        state.cycles = cycles
                        callee = ins[4]
                        self._call_depth += 1
                        try:
                            if callee.xcode is not None:
                                regs[ins[3]] = self._run_frame_fast(
                                    callee, [regs[r] for r in ins[5]]
                                )
                            else:
                                regs[ins[3]] = self._run_frame(
                                    callee, [regs[r] for r in ins[5]]
                                )
                        finally:
                            self._call_depth -= 1
                        steps = state.steps
                        cycles = state.cycles
                        pc += 1
        except EvaluationTrap:
            # Fused handlers never trap (fusion only combines
            # non-trapping ops), so a trapping instruction here always
            # has weight 1 — identical accounting to the base loops.
            if steps > state.steps:
                state.steps = steps
                state.cycles = cycles
            raise

    def _budget_stop(self, ins, regs, pc, steps, cycles) -> None:
        """Stop a fast-stream run with exact unfused budget timing.

        ``steps`` already includes the current tuple's full weight
        ``w``.  A weight-``w`` superinstruction carries its ``w - 1``
        unfused prefix halves at ``ins[-2]``; however many of them
        still fit the budget execute here through the base table
        (fusion guarantees they cannot trap), charging their steps and
        cycles, and only then the budget trips — bit-identical to the
        flat-tuple loop stopping inside the run.
        """
        state = self.state
        w = ins[-1]
        allowed = self.max_steps - (steps - w)
        if w == 1 or allowed <= 0:
            # The very first op of the tuple already lapses the budget:
            # nothing executes, exactly one step past the limit counts.
            state.steps = steps - w + 1
            state.cycles = cycles
        else:
            extra = 0
            for half in ins[-2][:allowed]:
                _HANDLERS[half[0]](self, half, regs, pc)
                extra += half[1]
            state.steps = steps - w + allowed + 1
            state.cycles = cycles + extra if self.metered else cycles
        raise BudgetExceeded(f"exceeded {self.max_steps} interpreter steps")
