"""Tests for Graph and Program containers."""

import pytest

from repro.ir import (
    ArithOp,
    BinOp,
    Goto,
    Graph,
    INT,
    ObjectType,
    Program,
    Return,
    VOID,
)
from repro.ir.types import ClassDecl, FieldDecl


class TestGraph:
    def test_entry_created(self):
        g = Graph("f", [("a", INT)], INT)
        assert g.entry in g.blocks
        assert g.entry.name == "entry"
        assert len(g.parameters) == 1
        assert g.parameters[0].index == 0

    def test_block_ids_unique(self):
        g = Graph("f", [], VOID)
        blocks = [g.new_block() for _ in range(10)]
        assert len({b.id for b in blocks}) == 10

    def test_instruction_count(self):
        g = Graph("f", [("a", INT)], INT)
        a = g.parameters[0]
        g.entry.append(ArithOp(BinOp.ADD, a, a))
        g.entry.append(ArithOp(BinOp.MUL, a, a))
        assert g.instruction_count() == 2

    def test_merge_blocks_query(self):
        g = Graph("f", [], VOID)
        p1, p2, m = g.new_block(), g.new_block(), g.new_block()
        p1.set_terminator(Goto(m))
        assert g.merge_blocks() == []
        p2.set_terminator(Goto(m))
        assert g.merge_blocks() == [m]

    def test_remove_block(self):
        g = Graph("f", [], VOID)
        b = g.new_block()
        b.set_terminator(Return(None))
        g.remove_block(b)
        assert b not in g.blocks

    def test_cannot_remove_entry(self):
        g = Graph("f", [], VOID)
        with pytest.raises(AssertionError):
            g.remove_block(g.entry)

    def test_describe_mentions_signature(self):
        g = Graph("myfn", [("a", INT)], INT)
        g.entry.set_terminator(Return(g.const_int(0)))
        text = g.describe()
        assert "myfn" in text and "int" in text

    def test_repr(self):
        g = Graph("f", [], VOID)
        assert "f" in repr(g)


class TestProgram:
    def test_function_registry(self):
        p = Program()
        g = Graph("f", [], VOID)
        p.add_function(g)
        assert p.function("f") is g
        with pytest.raises(ValueError):
            p.add_function(Graph("f", [], VOID))

    def test_globals(self):
        p = Program()
        p.declare_global("g", INT)
        assert p.globals["g"] == INT
        with pytest.raises(ValueError):
            p.declare_global("g", INT)

    def test_class_table(self):
        p = Program()
        p.class_table.declare(ClassDecl("A", [FieldDecl("x", INT)]))
        assert "A" in p.class_table

    def test_describe_all_functions(self):
        p = Program()
        for name in ("f", "g"):
            graph = Graph(name, [], VOID)
            graph.entry.set_terminator(Return(None))
            p.add_function(graph)
        text = p.describe()
        assert "fn f" in text and "fn g" in text


class TestPrinter:
    def test_format_helpers(self):
        from repro.ir.printer import format_graph, format_program

        p = Program()
        g = Graph("f", [], VOID)
        g.entry.set_terminator(Return(None))
        p.add_function(g)
        assert format_graph(g) == g.describe()
        assert "fn f" in format_program(p)
