"""Load-time artifact verification in the cache (satellite regression).

A v3 cache entry whose fused bytecode stream was tampered with — and
re-signed with a *valid* whole-payload digest — must be caught by the
verifying cache at load, evicted with a ``cache.evict`` event, counted
in the metrics, and transparently replaced by a recompile.  A cache
built with verification off keeps the old trusting behaviour.
"""

from __future__ import annotations

import hashlib
import pickle

import pytest

from repro.obs import MetricsRegistry, Tracer, use_registry
from repro.pipeline.cache import (
    PICKLE_PROTOCOL,
    ArtifactCache,
    cache_key,
    make_entry,
    pack_artifact,
    unpack_artifact,
)
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import CONFIGURATIONS
from repro.vm.translate import translate_program

SOURCE = """
fn main(n: int) -> int {
  var total: int = 0;
  var i: int = 0;
  while (i < n) {
    total = total + i * i;
    i = i + 1;
  }
  return total;
}
"""


@pytest.fixture(scope="module")
def artifact():
    program, report = compile_and_profile(
        SOURCE, "main", [[9]], CONFIGURATIONS["dbds"]
    )
    return program, report


def _store(cache, program, report):
    key = cache_key(SOURCE, CONFIGURATIONS["dbds"])
    bytecode = translate_program(program)
    cache.put(make_entry(key, program, report, bytecode=bytecode))
    return key


def _tamper_fused_stream(path):
    """Corrupt one fused superinstruction's cost inside the stored
    artifact, then re-sign the file with a correct digest."""
    raw = path.read_bytes()
    _digest, payload = raw.split(b"\n", 1)
    payload_dict = pickle.loads(payload)
    program, bytecode = unpack_artifact(payload_dict["program_blob"])
    fn = bytecode.function("main")
    pc = 0
    while pc < len(fn.xcode):
        ins = fn.xcode[pc]
        if ins[-1] >= 2:
            fn.xcode[pc] = ins[:1] + (ins[1] + 3,) + ins[2:]
            break
        pc += ins[-1]
    else:
        pytest.skip("no fused site to corrupt")
    payload_dict["program_blob"] = pack_artifact(program, bytecode)
    new_payload = pickle.dumps(payload_dict, protocol=PICKLE_PROTOCOL)
    digest = hashlib.sha256(new_payload).hexdigest().encode("ascii")
    path.write_bytes(digest + b"\n" + new_payload)


def test_tampered_artifact_rejected_and_recompiled(tmp_path, artifact):
    program, report = artifact
    registry = MetricsRegistry()
    with use_registry(registry):
        cache = ArtifactCache(tmp_path, verify_bytecode="load")
        key = _store(cache, program, report)
        _tamper_fused_stream(cache.path_for(key))

        tracer = Tracer()
        assert cache.get(key, tracer) is None
        assert cache.stats.evictions == 1
        evicts = [e for e in tracer.events if e.name == "cache.evict"]
        assert len(evicts) == 1
        assert "bytecode verification failed" in evicts[0].attrs["reason"]
        # the file is gone: the pipeline's miss path recompiles...
        assert not cache.path_for(key).exists()
        key2 = _store(cache, program, report)
        assert key2 == key
        # ...and the replacement loads cleanly (transparent recovery)
        entry = cache.get(key)
        assert entry is not None
        assert entry.bytecode().function("main").code

    snapshot = registry.snapshot()
    assert snapshot.counter_total("repro_bcverify_rejected_artifacts_total") == 1


def test_unverified_cache_trusts_tampered_artifact(tmp_path, artifact):
    program, report = artifact
    cache = ArtifactCache(tmp_path)  # verify_bytecode defaults to off
    key = _store(cache, program, report)
    _tamper_fused_stream(cache.path_for(key))
    # digest is valid, so the trusting cache happily returns the entry
    entry = cache.get(key)
    assert entry is not None
    assert cache.stats.evictions == 0


def test_pristine_artifact_loads_under_verification(tmp_path, artifact):
    program, report = artifact
    cache = ArtifactCache(tmp_path, verify_bytecode="load")
    key = _store(cache, program, report)
    entry = cache.get(key)
    assert entry is not None
    assert cache.stats.hits == 1 and cache.stats.evictions == 0


def test_garbage_blob_rejected_not_raised(tmp_path, artifact):
    """An artifact whose inner pickle is broken must come back as a
    miss (evict), not as an exception escaping ``get``."""
    program, report = artifact
    cache = ArtifactCache(tmp_path, verify_bytecode="load")
    key = _store(cache, program, report)
    path = cache.path_for(key)
    raw = path.read_bytes()
    _digest, payload = raw.split(b"\n", 1)
    payload_dict = pickle.loads(payload)
    payload_dict["program_blob"] = b"\x80\x04not a pickle"
    new_payload = pickle.dumps(payload_dict, protocol=PICKLE_PROTOCOL)
    digest = hashlib.sha256(new_payload).hexdigest().encode("ascii")
    path.write_bytes(digest + b"\n" + new_payload)
    tracer = Tracer()
    assert cache.get(key, tracer) is None
    evicts = [e for e in tracer.events if e.name == "cache.evict"]
    assert evicts and "unpickle" in evicts[0].attrs["reason"]
