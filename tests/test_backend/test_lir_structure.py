"""Structural tests on LIR containers and dumps."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend.lir import PReg, StackSlot, VReg, fresh_vreg, Immediate
from repro.backend.lowering import lower_graph, lower_program
from repro.backend.regalloc import allocate, allocate_program
from repro.frontend.irbuilder import compile_source
from tests.generators import random_program


class TestContainers:
    def test_fresh_vregs_unique(self):
        regs = [fresh_vreg() for _ in range(100)]
        assert len({r.id for r in regs}) == 100

    def test_operand_hashability(self):
        # The machine keys frames by operand; all kinds must hash.
        frame = {PReg(0): 1, StackSlot(2): 2, fresh_vreg(): 3}
        assert len(frame) == 3
        assert PReg(0) == PReg(0) and StackSlot(2) == StackSlot(2)

    def test_describe_contains_blocks(self):
        program = compile_source(
            "fn f(x: int) -> int { if (x > 0) { return 1; } return 2; }"
        )
        fn = lower_graph(program.function("f"))
        text = fn.describe()
        assert "lir f" in text
        assert "L0:" in text
        assert "br" in text and "ret" in text

    def test_instruction_count(self):
        program = compile_source("fn f(a: int) -> int { return a + 1; }")
        fn = lower_graph(program.function("f"))
        assert fn.instruction_count() == 2  # add + ret

    def test_block_order_sorted(self):
        program = compile_source(
            "fn f(x: int) -> int { if (x > 0) { return 1; } return 2; }"
        )
        fn = lower_graph(program.function("f"))
        ids = [b.id for b in fn.block_order()]
        assert ids == sorted(ids)


class TestAllocationProperties:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=8),
    )
    def test_register_file_bound_respected(self, seed, registers):
        program = compile_source(random_program(seed))
        lir = lower_program(program)
        results = allocate_program(lir, registers)
        for name, fn in lir.functions.items():
            used = set()
            for block in fn.blocks.values():
                for ins in block.instructions:
                    for op in list(ins.uses()) + list(ins.defs()):
                        if isinstance(op, PReg):
                            used.add(op.index)
                        assert not isinstance(op, VReg)
            assert all(0 <= r < registers for r in used), name

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_stack_slots_unique_per_function(self, seed):
        program = compile_source(random_program(seed))
        lir = lower_program(program)
        results = allocate_program(lir, 3)
        for name, result in results.items():
            slots = [
                loc.index
                for loc in result.mapping.values()
                if isinstance(loc, StackSlot)
            ]
            assert len(slots) == len(set(slots)), name
            assert lir.function(name).frame_slots == len(slots)
