"""Dominator tree, dominance queries and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative algorithm over RPO
numbers, plus in/out DFS numbering for O(1) ``dominates`` queries and
(iterated) dominance frontiers for SSA repair.
"""

from __future__ import annotations

from .block import Block
from .cfgutils import reverse_post_order
from .graph import Graph


class DominatorTree:
    """Immutable dominator information for one graph snapshot.

    Recompute after structural CFG changes; the tree never self-updates.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.rpo: list[Block] = reverse_post_order(graph)
        self._rpo_index: dict[Block, int] = {b: i for i, b in enumerate(self.rpo)}
        self.idom: dict[Block, Block] = {}
        self._compute_idoms()
        self.children: dict[Block, list[Block]] = {b: [] for b in self.rpo}
        for block, parent in self.idom.items():
            if block is not parent:
                self.children[parent].append(block)
        # Children in RPO order gives a deterministic DFS.
        for kids in self.children.values():
            kids.sort(key=self._rpo_index.__getitem__)
        self._dfs_in: dict[Block, int] = {}
        self._dfs_out: dict[Block, int] = {}
        self._number()

    # ------------------------------------------------------------------
    def _compute_idoms(self) -> None:
        entry = self.graph.entry
        idom: dict[Block, Block] = {entry: entry}
        index = self._rpo_index
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                processed = [p for p in block.predecessors if p in idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = self._intersect(new_idom, p, idom, index)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = idom

    @staticmethod
    def _intersect(a: Block, b: Block, idom: dict, index: dict) -> Block:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def _number(self) -> None:
        counter = 0
        stack: list[tuple[Block, bool]] = [(self.graph.entry, False)]
        while stack:
            block, done = stack.pop()
            if done:
                self._dfs_out[block] = counter
                counter += 1
                continue
            self._dfs_in[block] = counter
            counter += 1
            stack.append((block, True))
            for child in reversed(self.children[block]):
                stack.append((child, False))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def dominates(self, a: Block, b: Block) -> bool:
        """True when ``a`` dominates ``b`` (every block dominates itself)."""
        return (
            self._dfs_in[a] <= self._dfs_in[b] and self._dfs_out[b] <= self._dfs_out[a]
        )

    def strictly_dominates(self, a: Block, b: Block) -> bool:
        return a is not b and self.dominates(a, b)

    def immediate_dominator(self, block: Block) -> Block:
        return self.idom[block]

    def dominator_tree_children(self, block: Block) -> list[Block]:
        return self.children[block]

    def walk_up(self, block: Block):
        """Yield ``block`` and all its dominators up to the entry."""
        current = block
        while True:
            yield current
            parent = self.idom[current]
            if parent is current:
                return
            current = parent

    def depth_first(self):
        """Pre-order DFS of the dominator tree (the traversal the DBDS
        simulation tier is built on, Figure 2)."""
        stack = [self.graph.entry]
        while stack:
            block = stack.pop()
            yield block
            for child in reversed(self.children[block]):
                stack.append(child)

    # ------------------------------------------------------------------
    # Dominance frontiers
    # ------------------------------------------------------------------
    def dominance_frontiers(self) -> dict[Block, set[Block]]:
        """Cytron-style dominance frontiers for every reachable block."""
        df: dict[Block, set[Block]] = {b: set() for b in self.rpo}
        for block in self.rpo:
            if len(block.predecessors) < 2:
                continue
            for pred in block.predecessors:
                if pred not in self._dfs_in:
                    continue  # unreachable predecessor
                runner = pred
                while runner is not self.idom[block]:
                    df[runner].add(block)
                    runner = self.idom[runner]
        return df

    def iterated_dominance_frontier(self, blocks: set[Block]) -> set[Block]:
        """DF+ of a set of definition blocks: the phi placement set."""
        df = self.dominance_frontiers()
        result: set[Block] = set()
        worklist = [b for b in blocks if b in self._dfs_in]
        on_list = set(worklist)
        while worklist:
            block = worklist.pop()
            for frontier_block in df.get(block, ()):
                if frontier_block not in result:
                    result.add(frontier_block)
                    if frontier_block not in on_list:
                        on_list.add(frontier_block)
                        worklist.append(frontier_block)
        return result
