"""Shared pytest fixtures (helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from tests.helpers import build_diamond


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files (tests/goldens/) instead of "
        "asserting against them",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    """True when the run should regenerate golden files."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def diamond() -> dict:
    """The Figure 1 diamond CFG, built fresh per test."""
    return build_diamond()
