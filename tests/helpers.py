"""Shared helpers for the test suite."""

from __future__ import annotations

import dataclasses

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter, observable_outcome
from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
)
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import BACKTRACKING, BASELINE, DBDS, DUPALOT

ALL_CONFIGS = [BASELINE, DBDS, DUPALOT, BACKTRACKING]


def build_diamond(true_prob: float = 0.5) -> dict:
    """The Figure 1 program built by hand:

    ``int foo(int x) { int p; if (x>0) p=x; else p=0; return 2+p; }``

    Returns the graph plus named parts for structural assertions.
    """
    g = Graph("foo", [("x", INT)], INT)
    x = g.parameters[0]
    bt, bf, bm = g.new_block("t"), g.new_block("f"), g.new_block("m")
    cond = g.entry.append(Compare(CmpOp.GT, x, g.const_int(0)))
    g.entry.set_terminator(If(cond, bt, bf, true_prob))
    bt.set_terminator(Goto(bm))
    bf.set_terminator(Goto(bm))
    phi = Phi(bm, INT, [x, g.const_int(0)])
    bm.add_phi(phi)
    add = bm.append(ArithOp(BinOp.ADD, g.const_int(2), phi))
    bm.set_terminator(Return(add))
    return {
        "graph": g,
        "x": x,
        "cond": cond,
        "true_block": bt,
        "false_block": bf,
        "merge": bm,
        "phi": phi,
        "add": add,
    }


def run_function(program, name: str, args: list) -> tuple:
    """Run one function and return its observable outcome."""
    interp = Interpreter(program)
    result = interp.run(name, args)
    return observable_outcome(result, interp.state)


def outcomes(program, name: str, arg_sets: list[list]) -> list[tuple]:
    results = []
    interp = Interpreter(program)
    for args in arg_sets:
        interp.reset()
        result = interp.run(name, args)
        results.append(observable_outcome(result, interp.state))
    return results


def assert_configs_equivalent(source: str, entry: str, arg_sets: list[list]) -> dict:
    """Compile under all configurations and assert identical semantics.

    Returns the per-config observable outcomes for further checks.
    """
    per_config = {}
    for config in ALL_CONFIGS:
        config = dataclasses.replace(config, paranoid=True)
        program, _ = compile_and_profile(source, entry, arg_sets, config)
        per_config[config.name] = outcomes(program, entry, arg_sets)
    baseline = per_config["baseline"]
    for name, outs in per_config.items():
        assert outs == baseline, f"{name} diverged from baseline semantics"
    return per_config


def compile_one(source: str):
    """Parse MiniLang to an IR program (no optimization)."""
    return compile_source(source)
