"""Tests for loop-invariant code motion."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import ArithOp, BinOp, verify_graph
from repro.ir.loops import LoopForest
from repro.opts.licm import LoopInvariantCodeMotionPhase


def run_licm(source: str, name: str = "f"):
    """Canonicalize first (as the pipeline does — it collapses the
    builder's degenerate loop phis that would mask invariance), then
    hoist."""
    from repro.opts.canonicalize import CanonicalizerPhase

    program = compile_source(source)
    graph = program.function(name)
    CanonicalizerPhase().run(graph)
    hoisted = LoopInvariantCodeMotionPhase().run(graph)
    verify_graph(graph)
    return program, graph, hoisted


def in_loop(graph, instruction) -> bool:
    forest = LoopForest(graph)
    return any(instruction.block in loop.blocks for loop in forest.loops)


class TestHoisting:
    def test_invariant_mul_hoisted(self):
        program, graph, hoisted = run_licm(
            """
fn f(n: int, k: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    s = s + k * 3;
    i = i + 1;
  }
  return s;
}
"""
        )
        assert hoisted >= 1
        muls = [
            ins
            for b in graph.blocks
            for ins in b.instructions
            if isinstance(ins, ArithOp) and ins.op is BinOp.MUL
        ]
        assert muls and not in_loop(graph, muls[0])
        assert Interpreter(program).run("f", [4, 5]).value == 60

    def test_dependent_chain_hoisted_in_order(self):
        program, graph, hoisted = run_licm(
            """
fn f(n: int, k: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    s = s + (k * 3 + 7) * 2;
    i = i + 1;
  }
  return s;
}
"""
        )
        assert hoisted >= 3
        assert Interpreter(program).run("f", [3, 2]).value == 78

    def test_loop_varying_not_hoisted(self):
        program, graph, hoisted = run_licm(
            """
fn f(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    s = s + i * 3;
    i = i + 1;
  }
  return s;
}
"""
        )
        muls = [
            ins
            for b in graph.blocks
            for ins in b.instructions
            if isinstance(ins, ArithOp) and ins.op is BinOp.MUL
        ]
        assert muls and in_loop(graph, muls[0])

    def test_trapping_division_not_hoisted(self):
        # k/d may trap; hoisting would trap even for n == 0.
        program, graph, hoisted = run_licm(
            """
fn f(n: int, k: int, d: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    s = s + k / d;
    i = i + 1;
  }
  return s;
}
"""
        )
        divs = [
            ins
            for b in graph.blocks
            for ins in b.instructions
            if isinstance(ins, ArithOp) and ins.op is BinOp.DIV
        ]
        assert divs and in_loop(graph, divs[0])
        # n == 0: the loop never runs, no trap even when d == 0.
        assert not Interpreter(program).run("f", [0, 1, 0]).trapped

    def test_memory_ops_not_hoisted(self):
        program, graph, hoisted = run_licm(
            """
class A { x: int; }
fn f(a: A, n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    s = s + a.x;
    i = i + 1;
  }
  return s;
}
"""
        )
        from repro.ir import LoadField

        loads = [
            ins
            for b in graph.blocks
            for ins in b.instructions
            if isinstance(ins, LoadField)
        ]
        assert loads and in_loop(graph, loads[0])

    def test_nested_loops_bubble_outward(self):
        program, graph, hoisted = run_licm(
            """
fn f(n: int, k: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    var j: int = 0;
    while (j < n) {
      s = s + k * 5;
      j = j + 1;
    }
    i = i + 1;
  }
  return s;
}
"""
        )
        muls = [
            ins
            for b in graph.blocks
            for ins in b.instructions
            if isinstance(ins, ArithOp) and ins.op is BinOp.MUL
        ]
        assert muls
        forest = LoopForest(graph)
        # Hoisted past *both* loops.
        assert all(muls[0].block not in loop.blocks for loop in forest.loops)

    def test_no_loops_no_change(self):
        _, _, hoisted = run_licm("fn f(a: int) -> int { return a * 2; }")
        assert hoisted == 0


class TestSemantics:
    def test_behaviour_preserved(self):
        source = """
fn f(n: int, k: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    if (i % 2 == 0) { s = s + (k * 3 ^ 5); } else { s = s - k; }
    i = i + 1;
  }
  return s;
}
"""
        program = compile_source(source)
        cases = [(n, k) for n in range(0, 8) for k in (-3, 0, 4)]
        expected = [Interpreter(program).run("f", [n, k]).value for n, k in cases]
        LoopInvariantCodeMotionPhase().run(program.function("f"))
        verify_graph(program.function("f"))
        actual = [Interpreter(program).run("f", [n, k]).value for n, k in cases]
        assert actual == expected

    def test_reduces_dynamic_cycles(self):
        from repro.costmodel.model import cycles_of

        source = """
fn f(n: int, k: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) { s = s + k * 3; i = i + 1; }
  return s;
}
"""
        from repro.opts.canonicalize import CanonicalizerPhase

        program = compile_source(source)
        CanonicalizerPhase().run(program.function("f"))
        interp = Interpreter(program, cycle_cost=cycles_of, terminator_cost=cycles_of)
        before = interp.run("f", [50, 7]).cycles
        LoopInvariantCodeMotionPhase().run(program.function("f"))
        interp2 = Interpreter(program, cycle_cost=cycles_of, terminator_cost=cycles_of)
        after = interp2.run("f", [50, 7]).cycles
        assert after < before
