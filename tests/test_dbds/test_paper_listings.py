"""End-to-end reproduction of every listing of Section 2 (experiment F1).

Each listing is compiled, the DBDS pipeline is run, and we assert both
that the paper's claimed optimization actually happened *and* that the
program's observable behaviour is unchanged.
"""

import dataclasses

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import HeapObject, Interpreter
from repro.ir import ArithOp, Call, Compare, If, LoadField, New
from repro.pipeline.compiler import Compiler, compile_and_profile
from repro.pipeline.config import BASELINE, DBDS
from tests.helpers import assert_configs_equivalent


def compile_dbds(source: str, entry: str, profile_args):
    config = dataclasses.replace(DBDS, paranoid=True)
    program, report = compile_and_profile(source, entry, profile_args, config)
    return program, report


def instructions_of(graph, kind):
    return [i for b in graph.blocks for i in b.instructions if isinstance(i, kind)]


def branch_count(graph):
    return sum(1 for b in graph.blocks if isinstance(b.terminator, If))


class TestFigure1ConstantFolding:
    SOURCE = """
fn foo(x: int) -> int {
  var phi: int;
  if (x > 0) { phi = x; } else { phi = 0; }
  return 2 + phi;
}
"""

    def test_optimized_shape(self):
        """Figure 1c: the false branch returns the folded constant 2."""
        program, _ = compile_dbds(self.SOURCE, "foo", [[k] for k in range(-5, 6)])
        graph = program.function("foo")
        adds = instructions_of(graph, ArithOp)
        # Only the true branch still adds; the false branch is constant.
        assert len(adds) == 1

    def test_all_configs_agree(self):
        assert_configs_equivalent(self.SOURCE, "foo", [[k] for k in range(-5, 6)])


class TestListing1ConditionalElimination:
    SOURCE = """
fn foo(i: int) -> int {
  var p: int;
  if (i > 0) { p = i; } else { p = 13; }
  if (p > 12) { return 12; }
  return i;
}
"""

    def test_second_branch_partially_eliminated(self):
        """Listing 2: the else path returns 12 without re-testing."""
        baseline_program, _ = compile_and_profile(
            self.SOURCE, "foo", [[k] for k in range(-5, 20)], BASELINE
        )
        dbds_program, _ = compile_dbds(self.SOURCE, "foo", [[k] for k in range(-5, 20)])
        assert branch_count(dbds_program.function("foo")) < branch_count(
            baseline_program.function("foo")
        ) or branch_count(dbds_program.function("foo")) <= 2

    def test_all_configs_agree(self):
        assert_configs_equivalent(self.SOURCE, "foo", [[k] for k in range(-5, 20)])


class TestListing3PartialEscapeAnalysis:
    SOURCE = """
class A { x: int; }
fn foo(a: A) -> int {
  var p: A;
  if (a == null) { p = new A { x = 0 }; } else { p = a; }
  return p.x;
}
fn drive(i: int) -> int {
  var a: A = null;
  if (i % 2 > 0) { a = new A { x = i }; }
  return foo(a);
}
"""

    def test_allocation_removed(self):
        """Listing 4: the null path returns 0 with no allocation."""
        program, _ = compile_dbds(self.SOURCE, "drive", [[k] for k in range(12)])
        graph = program.function("foo")
        assert len(instructions_of(graph, New)) == 0

    def test_all_configs_agree(self):
        assert_configs_equivalent(self.SOURCE, "drive", [[k] for k in range(12)])


class TestListing5ReadElimination:
    SOURCE = """
class A { x: int; }
global s: int;
fn foo(a: A, i: int) -> int {
  if (i > 0) { s = a.x; } else { s = 0; }
  return a.x;
}
fn drive(i: int) -> int {
  var r: A = new A { x = i * 3 };
  return foo(r, i);
}
"""

    def test_read_becomes_fully_redundant(self):
        """Listing 6: the true path reuses the a.x it already loaded."""
        baseline_program, _ = compile_and_profile(
            self.SOURCE, "drive", [[k] for k in range(-6, 7)], BASELINE
        )
        dbds_program, _ = compile_dbds(self.SOURCE, "drive", [[k] for k in range(-6, 7)])
        baseline_loads = len(
            instructions_of(baseline_program.function("drive"), LoadField)
        )
        dbds_loads = len(instructions_of(dbds_program.function("drive"), LoadField))
        assert dbds_loads < baseline_loads or dbds_loads == 0

    def test_all_configs_agree(self):
        assert_configs_equivalent(self.SOURCE, "drive", [[k] for k in range(-6, 7)])


class TestFigure3StrengthReduction:
    SOURCE = """
fn f(a: int, b: int, x: int) -> int {
  var d: int;
  if (a > b) { d = a; } else { d = 2; }
  if (x >= 0) { return x / d; }
  return 0 - x;
}
fn drive(i: int) -> int { return f(i, 6, i + 20); }
"""

    def test_division_reduced_on_constant_path(self):
        program, _ = compile_dbds(self.SOURCE, "drive", [[k] for k in range(-8, 9)])
        graph = program.function("drive")
        from repro.ir import BinOp

        shifts = [
            i
            for i in instructions_of(graph, ArithOp)
            if i.op in (BinOp.SHR, BinOp.USHR)
        ]
        assert shifts, "expected a strength-reduced shift on the d=2 path"

    def test_all_configs_agree(self):
        assert_configs_equivalent(self.SOURCE, "drive", [[k] for k in range(-8, 9)])
