"""Unit tests for the IR-to-bytecode translator."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.vm.bytecode import (
    OP_CALL,
    OP_GOTO,
    OP_IF,
    OP_RETURN,
    OPCODE_NAMES,
    disassemble,
)
from repro.vm.translate import _sequentialize, translate_graph, translate_program

DIAMOND = """
fn main(x: int) -> int {
  var p: int = 0;
  if (x > 0) { p = x; } else { p = 7; }
  return 2 + p;
}
"""

TWO_FUNCTIONS = """
fn helper(a: int) -> int { return a * 3; }
fn main(x: int) -> int { return helper(x) + 1; }
"""

GLOBALS = """
global counter: int;
fn main(x: int) -> int {
  counter = counter + x;
  return counter;
}
"""


# ----------------------------------------------------------------------
# Parallel-copy sequentialization
# ----------------------------------------------------------------------
def test_sequentialize_independent_moves():
    assert _sequentialize([(1, 2), (3, 4)], scratch=9) == ((1, 2), (3, 4))


def test_sequentialize_drops_self_moves():
    assert _sequentialize([(1, 1), (2, 3)], scratch=9) == ((2, 3),)


def test_sequentialize_orders_chain():
    # r1 <- r2 <- r3: r2 must be copied out of before being clobbered.
    out = _sequentialize([(2, 3), (1, 2)], scratch=9)
    assert out == ((1, 2), (2, 3))


def test_sequentialize_breaks_swap_cycle_with_scratch():
    out = _sequentialize([(1, 2), (2, 1)], scratch=9)
    assert out == ((9, 1), (1, 2), (2, 9))


def test_sequentialize_three_cycle():
    out = _sequentialize([(1, 2), (2, 3), (3, 1)], scratch=9)
    # Simulate the emitted moves and check the permutation happened.
    regs = {1: "a", 2: "b", 3: "c", 9: None}
    for d, s in out:
        regs[d] = regs[s]
    assert (regs[1], regs[2], regs[3]) == ("b", "c", "a")


# ----------------------------------------------------------------------
# Register layout and encoding
# ----------------------------------------------------------------------
def test_template_materializes_constants():
    program = compile_source(DIAMOND)
    fn = translate_graph(program, program.function("main"))
    assert fn.nparams == 1
    # Every interned constant appears ready-made in the template.
    assert {0, 2, 7}.issubset(set(v for v in fn.template if isinstance(v, int)))


def test_every_code_entry_is_a_flat_tuple():
    program = compile_source(DIAMOND)
    fn = translate_graph(program, program.function("main"))
    assert isinstance(fn.code, tuple) and fn.code
    for ins in fn.code:
        assert isinstance(ins, tuple)
        assert 0 <= ins[0] < len(OPCODE_NAMES)
        assert isinstance(ins[1], (int, float))  # baked cycle cost


def test_branch_targets_are_instruction_indices():
    program = compile_source(DIAMOND)
    fn = translate_graph(program, program.function("main"))
    size = len(fn.code)
    for ins in fn.code:
        if ins[0] == OP_GOTO:
            assert 0 <= ins[4][0] < size
        elif ins[0] == OP_IF:
            assert 0 <= ins[5][0] < size and 0 <= ins[6][0] < size


def test_phis_lower_to_edge_moves():
    program = compile_source(DIAMOND)
    fn = translate_graph(program, program.function("main"))
    edges = []
    for ins in fn.code:
        if ins[0] == OP_GOTO:
            edges.append(ins[4])
        elif ins[0] == OP_IF:
            edges.extend([ins[5], ins[6]])
    # No PHI opcode exists; the merge's phi shows up as (dst, src)
    # register moves (or pre-materialized constants) on incoming edges.
    moved = [edge for edge in edges if edge[1]]
    phis = [edge for edge in edges if edge[2]]
    assert phis, "edges into the merge must carry the phi list"
    assert all(
        isinstance(d, int) and isinstance(s, int)
        for edge in moved for d, s in edge[1]
    )


def test_translate_program_covers_all_functions_and_globals():
    bytecode = translate_program(compile_source(GLOBALS))
    assert set(bytecode.functions) == {"main"}
    assert ("counter", 0) in bytecode.globals_init

    bytecode = translate_program(compile_source(TWO_FUNCTIONS))
    assert set(bytecode.functions) == {"helper", "main"}
    call = [i for i in bytecode.function("main").code if i[0] == OP_CALL]
    # Calls reference the callee's BytecodeFunction shell directly.
    assert call and call[0][4] is bytecode.function("helper")


def test_entry_block_recorded_for_profiling():
    program = compile_source(DIAMOND)
    fn = translate_graph(program, program.function("main"))
    assert fn.entry_block is program.function("main").entry


def test_return_encodes_missing_value_as_negative():
    program = compile_source("fn main(x: int) { return; }")
    fn = translate_graph(program, program.function("main"))
    returns = [i for i in fn.code if i[0] == OP_RETURN]
    assert returns and returns[0][4] == -1


def test_disassemble_mentions_opcodes_and_registers():
    program = compile_source(DIAMOND)
    fn = translate_graph(program, program.function("main"))
    listing = disassemble(fn)
    assert "fn main" in listing
    assert "if" in listing and "return" in listing
    assert "r0" in listing


def test_translation_is_deterministic():
    program = compile_source(DIAMOND)
    a = translate_graph(program, program.function("main"))
    b = translate_graph(program, program.function("main"))
    assert a.nregs == b.nregs
    assert len(a.code) == len(b.code)
    assert [i[0] for i in a.code] == [i[0] for i in b.code]


def test_unknown_function_lookup_raises_keyerror():
    bytecode = translate_program(compile_source(DIAMOND))
    with pytest.raises(KeyError):
        bytecode.function("nope")
