"""Experiment S1 — robustness of the conclusions to workload generation.

The paper runs each suite 10 times and reports boxplots; our peak
performance and code size are deterministic given a workload (the
substrate is a simulator), so run-to-run variance is replaced by
*generator* variance: the same suite is regenerated under different
seeds and the geomeans compared.  The conclusions must not hinge on one
lucky set of synthetic programs.

Shape checks: DBDS improves the micro-suite geomean under every seed,
and dupalot's code size exceeds DBDS's under every seed.
"""

from _support import record_figure

from repro.bench.harness import run_suite
from repro.bench.stats import format_percent
from repro.bench.workloads.suites import MICRO

SEEDS = [0, 1, 2]


def _sweep():
    return {seed: run_suite(MICRO, seed=seed) for seed in SEEDS}


def test_seed_stability(benchmark):
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "=== Seed stability (micro suite regenerated under 3 seeds) ===",
        f"{'seed':>6s}{'dbds perf':>12s}{'dupalot perf':>14s}"
        f"{'dbds size':>12s}{'dupalot size':>14s}",
    ]
    for seed, report in reports.items():
        lines.append(
            f"{seed:>6d}"
            f"{format_percent(report.geomean_speedup('dbds')):>12s}"
            f"{format_percent(report.geomean_speedup('dupalot')):>14s}"
            f"{format_percent(report.geomean_code_size('dbds')):>12s}"
            f"{format_percent(report.geomean_code_size('dupalot')):>14s}"
        )
    record_figure("seed_stability", "\n".join(lines))
    for seed, report in reports.items():
        assert report.geomean_speedup("dbds") > 0.0, f"seed {seed}"
        # dupalot occasionally lands a touch below DBDS on IR-level size
        # (extra duplication can enable extra deletion); allow a small
        # tolerance — the machine-level metric (M1) is the strict one.
        assert (
            report.geomean_code_size("dupalot")
            >= report.geomean_code_size("dbds") - 2.0
        ), f"seed {seed}"
