"""The template-extraction-style source mutator and its fuzz driver."""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis.progen import (
    MUTATION_KINDS,
    SourceMutator,
    mutated_program,
)
from repro.analysis.validate import fuzz_mutations
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter

PROGRAM = textwrap.dedent(
    """
    // leading comment with numbers 42 and a < b comparison
    fn main(n: int) -> int {
      var total: int = 7;
      var i: int = 0;
      while (i < n) {
        if (total > 3) { total = total + 2; } else { total = total - 1; }
        i = i + 1;
      }
      return total;
    }
    """
)

APPS = sorted(pathlib.Path("examples/apps").glob("*.mini"))


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
def test_swap_constant_changes_one_literal_outside_while_header():
    mutated = SourceMutator(seed=3).swap_constant(PROGRAM)
    assert mutated is not None and mutated != PROGRAM
    # The loop bound and comment are untouched.
    assert "while (i < n)" in mutated
    assert "comment with numbers 42" in mutated
    compile_source(mutated)


def test_flip_comparison_only_touches_if_headers():
    mutated = SourceMutator(seed=0).flip_comparison(PROGRAM)
    assert mutated is not None and mutated != PROGRAM
    assert "while (i < n)" in mutated, "while headers are off-limits"
    assert "(total > 3)" not in mutated
    compile_source(mutated)


def test_wrap_loop_body_is_semantically_neutral():
    mutated = SourceMutator(seed=0).wrap_loop_body(PROGRAM)
    assert mutated is not None
    assert "if (0 == 0)" in mutated
    original = compile_source(PROGRAM)
    wrapped = compile_source(mutated)
    for n in (0, 1, 5):
        before = Interpreter(original).run("main", [n])
        after = Interpreter(wrapped).run("main", [n])
        assert (before.value, before.trap) == (after.value, after.trap)


def test_mutate_is_deterministic_per_seed():
    a = SourceMutator(seed=11).mutate(PROGRAM, mutations=3)
    b = SourceMutator(seed=11).mutate(PROGRAM, mutations=3)
    c = SourceMutator(seed=12).mutate(PROGRAM, mutations=3)
    assert a.source == b.source and a.applied == b.applied
    assert (c.source, c.applied) != (a.source, a.applied) or c.source == a.source
    assert set(a.applied) <= set(MUTATION_KINDS)


def test_every_operator_fires_across_seeds():
    fired = set()
    for seed in range(30):
        fired.update(SourceMutator(seed).mutate(PROGRAM, mutations=2).applied)
        if fired == set(MUTATION_KINDS):
            break
    assert fired == set(MUTATION_KINDS)


def test_mutants_of_real_apps_stay_compilable():
    corpus = [path.read_text() for path in APPS]
    assert corpus
    for seed in range(10):
        mutant = mutated_program(seed, corpus)
        assert mutant.base.startswith("corpus[")
        compile_source(mutant.source)


def test_mutated_program_without_corpus_uses_generator():
    mutant = mutated_program(5)
    assert mutant.base == "generated[5]"
    compile_source(mutant.source)


# ----------------------------------------------------------------------
# The fuzz driver
# ----------------------------------------------------------------------
def test_fuzz_mutations_green_on_apps_corpus():
    corpus = [path.read_text() for path in APPS]
    report = fuzz_mutations(
        seed=0,
        programs=4,
        corpus=corpus,
        arg_values=(0, 2, 4),
        time_budget=60.0,
    )
    assert report.ok, report.format()
    assert report.programs == 4
    assert report.runs + report.skipped > 0


def test_fuzz_mutations_time_budget_stops_early():
    corpus = [path.read_text() for path in APPS]
    report = fuzz_mutations(
        seed=0, programs=500, corpus=corpus, arg_values=(2,), time_budget=0.0
    )
    assert report.programs <= 1


def test_fuzz_mutations_counts_screened_blowups_as_skipped():
    # A mutant whose unoptimized run busts a tiny step budget is
    # skipped, not failed: differential runs need both sides to finish.
    corpus = [PROGRAM]
    report = fuzz_mutations(
        seed=0, programs=3, corpus=corpus, arg_values=(5,), screen_steps=10
    )
    assert report.ok
    assert report.skipped == report.programs
    assert report.runs == 0
    assert "skipped" in report.format()
