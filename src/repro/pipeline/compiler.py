"""The compilation pipeline: front-end phases, DBDS, metrics.

Mirrors the Graal front end of Section 5.1: inlining and the high-level
optimizations run first, DBDS sits in the middle, and cleanup phases run
after.  Per compilation unit the pipeline records the three quantities
the paper evaluates: compile time (wall clock of the phases), code size
(node-cost-model size of the final graph), and — via
:func:`measure_performance` — the simulated peak performance of the
generated code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..costmodel.estimator import graph_code_size
from ..costmodel.model import cycles_of
from ..dbds.backtracking import BacktrackingDuplication
from ..dbds.phase import DbdsPhase, DbdsStats
from ..frontend.irbuilder import compile_source
from ..interp.interpreter import ExecutionResult, Interpreter
from ..interp.profile import apply_profile, profile_program
from ..ir.graph import Graph, Program
from ..ir.verifier import verify_graph
from ..opts.canonicalize import CanonicalizerPhase
from ..opts.condelim import ConditionalEliminationPhase
from ..opts.gvn import GlobalValueNumberingPhase
from ..opts.inline import InliningPhase
from ..opts.licm import LoopInvariantCodeMotionPhase
from ..opts.pea import PartialEscapeAnalysisPhase
from ..opts.readelim import ReadEliminationPhase
from .config import BASELINE, CompilerConfig


@dataclass
class UnitMetrics:
    """Metrics of one compiled function (compilation unit)."""

    function: str
    compile_time: float = 0.0
    code_size: float = 0.0
    initial_code_size: float = 0.0
    duplications: int = 0
    candidates: int = 0

    @property
    def code_size_increase(self) -> float:
        if self.initial_code_size == 0:
            return 0.0
        return self.code_size / self.initial_code_size - 1.0


@dataclass
class CompilationReport:
    """Aggregated result of compiling a whole program."""

    config: str
    units: list[UnitMetrics] = field(default_factory=list)

    @property
    def total_compile_time(self) -> float:
        return sum(u.compile_time for u in self.units)

    @property
    def total_code_size(self) -> float:
        return sum(u.code_size for u in self.units)

    @property
    def total_duplications(self) -> int:
        return sum(u.duplications for u in self.units)


class Compiler:
    """Compiles IR programs under a :class:`CompilerConfig`."""

    def __init__(self, config: CompilerConfig = BASELINE) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def compile_program(self, program: Program) -> CompilationReport:
        """Optimize every function in place; returns per-unit metrics."""
        report = CompilationReport(config=self.config.name)
        for name in list(program.functions):
            report.units.append(self.compile_function(program, name))
        return report

    def compile_function(self, program: Program, name: str) -> UnitMetrics:
        graph = program.function(name)
        metrics = UnitMetrics(function=name)
        start = time.perf_counter()

        if self.config.enable_inlining:
            InliningPhase(program).run(graph)
        self._cleanup_phases(program, graph)
        if self.config.enable_peeling:
            from ..opts.peeling import LoopPeelingPhase

            LoopPeelingPhase().run(graph)
            self._cleanup_phases(program, graph)
        metrics.initial_code_size = graph_code_size(graph)

        if self.config.backtracking:
            backtracker = BacktrackingDuplication(program)
            new_graph = backtracker.run(graph)
            if new_graph is not graph:
                program.functions[name] = new_graph
                graph = new_graph
            metrics.duplications = backtracker.stats.kept
        elif self.config.enable_dbds:
            phase = DbdsPhase(program, self.config.dbds_config())
            stats: DbdsStats = phase.run(graph)
            metrics.duplications = stats.duplications_performed
            metrics.candidates = stats.candidates_simulated

        self._cleanup_phases(program, graph)
        metrics.compile_time = time.perf_counter() - start
        metrics.code_size = graph_code_size(graph)
        if self.config.paranoid:
            verify_graph(graph)
        return metrics

    def _cleanup_phases(self, program: Program, graph: Graph) -> None:
        CanonicalizerPhase().run(graph)
        GlobalValueNumberingPhase().run(graph)
        LoopInvariantCodeMotionPhase().run(graph)
        ConditionalEliminationPhase().run(graph)
        ReadEliminationPhase(program).run(graph)
        PartialEscapeAnalysisPhase(program).run(graph)
        CanonicalizerPhase().run(graph)
        if self.config.paranoid:
            verify_graph(graph)


# ----------------------------------------------------------------------
# Convenience entry points used by examples, tests and the harness.
# ----------------------------------------------------------------------
def compile_and_profile(
    source: str,
    entry: str,
    profile_args: Iterable[list[Any]],
    config: CompilerConfig = BASELINE,
) -> tuple[Program, CompilationReport]:
    """Front-end + profiling run + optimizing compilation.

    This is the full JIT story in one call: parse, collect a profile by
    interpreting the unoptimized program, feed the profile to the
    compiler, optimize.
    """
    program = compile_source(source)
    collector = profile_program(program, entry, profile_args)
    apply_profile(program, collector)
    report = Compiler(config).compile_program(program)
    return program, report


def measure_performance(
    program: Program,
    entry: str,
    arg_sets: Iterable[list[Any]],
    max_steps: int = 50_000_000,
) -> tuple[float, list[ExecutionResult]]:
    """Simulated peak performance: total cost-model cycles over runs."""
    interpreter = Interpreter(
        program,
        max_steps=max_steps,
        cycle_cost=cycles_of,
        terminator_cost=cycles_of,
    )
    results = []
    total = 0.0
    for args in arg_sets:
        interpreter.reset()
        result = interpreter.run(entry, list(args))
        results.append(result)
        total += result.cycles
    return total, results
