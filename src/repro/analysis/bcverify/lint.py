"""Static lint over the exec-generated engine source.

The closure engine (:mod:`repro.vm.closure`) compiles each function to
Python source and ``exec``\\s it; the megaunit engine
(:mod:`repro.vm.megaunit`) does the same for the whole program at
once.  That source is generated from data that may have travelled
through a cache file, so the verifier lints the *text* (without
executing it) for the properties the codegen promises:

* it parses, and consists only of module-level function definitions
  (the ``_blk_<pc>`` block closures plus the ``_drive`` trampoline);
* no **banned names** anywhere (``eval``, ``exec``, ``open``, ... —
  generated code has no business reaching them) and no name reads
  outside the closed set the compiler seeds: the fixed support
  namespace, the two whitelisted builtins, per-function ``_blk_*`` /
  ``_f<N>`` cells, parameters, and locals assigned in the function;
* **balanced accounting**: per block closure, the ``m[0] += K`` step
  increments sum to exactly the block's instruction count, and the
  ``m[1] += C`` cycle increments sum to the block's total baked cost;
* every ``raise EvaluationTrap(...)`` inside a block closure is
  preceded (in the same statement suite) by a ``state.steps = ...``
  meter flush, so traps can never escape with stale accounting.

:func:`lint_megaunit_source` adds the whole-program variants: per
generated function, the step/cycle charges — which live in the meter
locals ``s``/``c`` there: ``s += W`` / ``c += C`` per segment plus
the ``m[0] = s + 1`` / ``c = m[1] + K`` call-site writebacks — must
sum to the bytecode function's instruction count and total baked
cost, and every *direct call* is audited against the program's
function table (the ``_mu<N>`` index must exist and the argument
count must match the callee's arity plus the ``vm``/``m``/``d``
protocol slots).

:func:`lint_closure_source` and :func:`lint_megaunit_source` return
plain message strings; the ``bc-codegen-lint`` checker turns them into
report violations.
"""

from __future__ import annotations

import ast
import math
import re

from ...vm.closure import CLOSURE_BUILTINS, CLOSURE_NAMESPACE, generate_source
from ...vm.megaunit import (
    MEGAUNIT_BUILTINS,
    MEGAUNIT_NAMESPACE,
    MegaunitUnsupported,
    generate_module_source,
)

#: names generated code must never mention, in any position
BANNED_NAMES = frozenset(
    (
        "eval", "exec", "compile", "__import__", "open",
        "globals", "locals", "vars", "getattr", "setattr", "delattr",
        "input", "breakpoint", "__builtins__",
    )
)

_GENERATED_NAME = re.compile(r"\A(_blk_\d+|_f\d+)\Z")
_BLOCK_DEF = re.compile(r"\A_blk_(\d+)\Z")

#: megaunit generated cells: entry functions, function refs, templates
_MEGA_NAME = re.compile(r"\A(_mu\d+|_fn\d+|_tmpl\d+)\Z")
_MEGA_DEF = re.compile(r"\A_mu(\d+)\Z")


def _literal(node) -> object:
    """The numeric value of an AST literal, or None if it isn't one."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return -node.operand.value
    return None


def _meter_increments(func: ast.FunctionDef, slot: int) -> list:
    """Values of every ``m[<slot>] += <literal>`` in the function."""
    found = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.op, ast.Add)
            and isinstance(node.target, ast.Subscript)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "m"
            and isinstance(node.target.slice, ast.Constant)
            and node.target.slice.value == slot
        ):
            found.append(_literal(node.value))
    return found


def _is_trap_raise(stmt) -> bool:
    return (
        isinstance(stmt, ast.Raise)
        and isinstance(stmt.exc, ast.Call)
        and isinstance(stmt.exc.func, ast.Name)
        and stmt.exc.func.id == "EvaluationTrap"
    )


def _is_steps_flush(stmt) -> bool:
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Attribute)
        and stmt.targets[0].attr == "steps"
        and isinstance(stmt.targets[0].value, ast.Name)
        and stmt.targets[0].value.id == "state"
    )


def _statement_suites(func: ast.FunctionDef):
    """Every statement list in the function, nested suites included."""
    yield func.body
    for node in ast.walk(func):
        for attr in ("body", "orelse", "finalbody"):
            suite = getattr(node, attr, None)
            if node is not func and isinstance(suite, list) and suite:
                yield suite


def _lint_names(func: ast.FunctionDef, messages: list) -> None:
    params = {arg.arg for arg in func.args.args}
    assigned = {
        node.id
        for node in ast.walk(func)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, (ast.Store, ast.Del))
    }
    for node in ast.walk(func):
        if not isinstance(node, ast.Name):
            continue
        name = node.id
        if name in BANNED_NAMES:
            messages.append(
                f"{func.name}: banned name {name!r} in generated source"
            )
        elif isinstance(node.ctx, ast.Load) and not (
            name in params
            or name in assigned
            or name in CLOSURE_NAMESPACE
            or name in CLOSURE_BUILTINS
            or _GENERATED_NAME.match(name)
        ):
            messages.append(
                f"{func.name}: generated source reads unexpected "
                f"global {name!r}"
            )


def _lint_accounting(
    func: ast.FunctionDef,
    start: int,
    spans: dict,
    code: tuple,
    metered: bool,
    messages: list,
) -> None:
    count = spans.get(start)
    if count is None:
        messages.append(
            f"{func.name}: no block span starts at pc {start}"
        )
        return
    steps = _meter_increments(func, 0)
    if None in steps:
        messages.append(f"{func.name}: non-literal step increment")
        return
    if sum(steps) != count:
        messages.append(
            f"{func.name}: step increments sum to {sum(steps)} but the "
            f"block has {count} instruction(s)"
        )
    if metered:
        cycles = _meter_increments(func, 1)
        if None in cycles:
            messages.append(f"{func.name}: non-literal cycle increment")
            return
        expected = 0
        for pc in range(start, start + count):
            expected = expected + code[pc][1]
        total = sum(cycles)
        if total != expected and not math.isclose(
            total, expected, rel_tol=1e-12, abs_tol=1e-12
        ):
            messages.append(
                f"{func.name}: cycle increments sum to {total!r} but the "
                f"block's baked costs sum to {expected!r}"
            )


def _lint_trap_flushes(func: ast.FunctionDef, messages: list) -> None:
    for suite in _statement_suites(func):
        for position, stmt in enumerate(suite):
            if _is_trap_raise(stmt) and not any(
                _is_steps_flush(prior) for prior in suite[:position]
            ):
                messages.append(
                    f"{func.name}: EvaluationTrap raised without a "
                    f"preceding state.steps flush (line {stmt.lineno})"
                )


def lint_closure_source(fn, metered: bool = True) -> list[str]:
    """Lint the closure source for ``fn``; returns message strings."""
    messages: list[str] = []
    try:
        source = generate_source(fn, metered=metered)
    except Exception as exc:
        return [f"closure codegen failed: {type(exc).__name__}: {exc}"]
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [f"generated source does not parse: {exc}"]

    spans = {start: count for start, count, _name in fn.blocks}
    seen_blocks = set()
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            messages.append(
                f"unexpected module-level statement in generated source "
                f"(line {node.lineno})"
            )
            continue
        _lint_names(node, messages)
        match = _BLOCK_DEF.match(node.name)
        if match:
            start = int(match.group(1))
            seen_blocks.add(start)
            _lint_accounting(
                node, start, spans, fn.code, metered, messages
            )
            _lint_trap_flushes(node, messages)
        elif node.name != "_drive":
            messages.append(
                f"unexpected generated function {node.name!r}"
            )
    missing = sorted(set(spans) - seen_blocks)
    if missing:
        messages.append(
            f"no closure generated for block(s) at pc {missing}"
        )
    return messages


# ----------------------------------------------------------------------
# Whole-program (megaunit) lint
# ----------------------------------------------------------------------
def _lint_mega_names(func: ast.FunctionDef, messages: list) -> None:
    params = {arg.arg for arg in func.args.args}
    assigned = {
        node.id
        for node in ast.walk(func)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, (ast.Store, ast.Del))
    }
    for node in ast.walk(func):
        if not isinstance(node, ast.Name):
            continue
        name = node.id
        if name in BANNED_NAMES:
            messages.append(
                f"{func.name}: banned name {name!r} in generated source"
            )
        elif isinstance(node.ctx, ast.Load) and not (
            name in params
            or name in assigned
            or name in MEGAUNIT_NAMESPACE
            or name in MEGAUNIT_BUILTINS
            or _MEGA_NAME.match(name)
        ):
            messages.append(
                f"{func.name}: generated source reads unexpected "
                f"global {name!r}"
            )


def _lint_mega_calls(
    func: ast.FunctionDef, order: list, messages: list
) -> None:
    """Audit every call in a generated function.

    Direct calls must target a ``_mu<N>`` that exists in the program's
    function table with the right argument count (``vm``/``m``
    prefix + the callee's parameters + the depth slot); anything else
    must be one of the whitelisted support callables."""
    allowed = MEGAUNIT_NAMESPACE | MEGAUNIT_BUILTINS
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if not isinstance(target, ast.Name):
            messages.append(
                f"{func.name}: non-name call target "
                f"(line {node.lineno})"
            )
            continue
        match = _MEGA_DEF.match(target.id)
        if match:
            index = int(match.group(1))
            if index >= len(order):
                messages.append(
                    f"{func.name}: direct call to _mu{index} but the "
                    f"program has {len(order)} function(s)"
                )
            elif len(node.args) != order[index].nparams + 3:
                messages.append(
                    f"{func.name}: direct call to _mu{index} "
                    f"({order[index].name!r}) passes "
                    f"{len(node.args) - 3} arg(s) for "
                    f"{order[index].nparams} parameter(s)"
                )
        elif target.id not in allowed:
            messages.append(
                f"{func.name}: call to unexpected name {target.id!r}"
            )


def _mega_meter_totals(func: ast.FunctionDef) -> tuple:
    """Step and cycle charges of one generated megaunit function.

    The megaunit compiler keeps the meters in the locals ``s``/``c``:
    a segment charges ``s += W`` / ``c += C``, and a call site charges
    its step as the ``m[0] = s + 1`` writeback and its call cost on
    the ``c = m[1] + K`` reload.  Returns ``(steps, cycles)`` lists
    with ``None`` standing in for any non-literal charge."""
    steps: list = []
    cycles: list = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.op, ast.Add)
            and isinstance(node.target, ast.Name)
        ):
            if node.target.id == "s":
                steps.append(_literal(node.value))
            elif node.target.id == "c":
                cycles.append(_literal(node.value))
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if not (
                isinstance(value, ast.BinOp)
                and isinstance(value.op, ast.Add)
            ):
                continue
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == "m"
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == 0
                and isinstance(value.left, ast.Name)
                and value.left.id == "s"
            ):
                steps.append(_literal(value.right))
            elif (
                isinstance(target, ast.Name)
                and target.id == "c"
                and isinstance(value.left, ast.Subscript)
                and isinstance(value.left.value, ast.Name)
                and value.left.value.id == "m"
            ):
                cycles.append(_literal(value.right))
    return steps, cycles


def _lint_mega_accounting(
    func: ast.FunctionDef, fn, metered: bool, messages: list
) -> None:
    """Whole-function meter balance: every instruction is stepped once
    (segment ``s += W`` sums plus one ``m[0] = s + 1`` per call site)
    and every baked cost is charged once (segment ``c += C`` sums plus
    the ``c = m[1] + K`` call-cost reloads)."""
    steps, cycles = _mega_meter_totals(func)
    if None in steps:
        messages.append(f"{func.name}: non-literal step increment")
        return
    if sum(steps) != len(fn.code):
        messages.append(
            f"{func.name}: step increments sum to {sum(steps)} but "
            f"{fn.name!r} has {len(fn.code)} instruction(s)"
        )
    if metered:
        if None in cycles:
            messages.append(f"{func.name}: non-literal cycle increment")
            return
        expected = 0
        for ins in fn.code:
            expected = expected + ins[1]
        total = sum(cycles)
        if total != expected and not math.isclose(
            total, expected, rel_tol=1e-12, abs_tol=1e-12
        ):
            messages.append(
                f"{func.name}: cycle increments sum to {total!r} but "
                f"{fn.name!r}'s baked costs sum to {expected!r}"
            )


def lint_megaunit_source(bytecode, metered: bool = True) -> list[str]:
    """Lint the whole-program megaunit module; returns message strings.

    Programs the megaunit compiler does not support (no block spans)
    lint clean by definition — the engine falls back to the closure
    engine for them and never execs megaunit text."""
    messages: list[str] = []
    try:
        source = generate_module_source(bytecode, metered=metered)
    except MegaunitUnsupported:
        return []
    except Exception as exc:
        return [f"megaunit codegen failed: {type(exc).__name__}: {exc}"]
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [f"generated megaunit module does not parse: {exc}"]

    order = list(bytecode.functions.values())
    seen = set()
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            messages.append(
                f"unexpected module-level statement in generated "
                f"megaunit module (line {node.lineno})"
            )
            continue
        match = _MEGA_DEF.match(node.name)
        if not match:
            messages.append(
                f"unexpected generated function {node.name!r}"
            )
            continue
        index = int(match.group(1))
        if index >= len(order):
            messages.append(
                f"generated function _mu{index} has no bytecode function"
            )
            continue
        seen.add(index)
        _lint_mega_names(node, messages)
        _lint_mega_calls(node, order, messages)
        _lint_mega_accounting(node, order[index], metered, messages)
        _lint_trap_flushes(node, messages)
    missing = sorted(set(range(len(order))) - seen)
    if missing:
        messages.append(
            f"no megaunit function generated for index(es) {missing}"
        )
    return messages


__all__ = ["BANNED_NAMES", "lint_closure_source", "lint_megaunit_source"]
