"""Static performance and code-size estimation over whole graphs.

Implements the "static performance estimator" of Sections 4.1/5.3: each
IR node contributes cost-model cycles weighted by its basic block's
relative execution frequency; code size is the plain sum of size
estimates.  The DBDS trade-off tier and the benchmark harness both
consume these estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.block import Block
from ..ir.frequency import BlockFrequencies
from ..ir.graph import Graph
from .model import cycles_of, size_of


def block_cycles(block: Block) -> float:
    """Unweighted cycle cost of one execution of ``block``."""
    total = 0.0
    for phi in block.phis:
        total += cycles_of(phi)
    for ins in block.instructions:
        total += cycles_of(ins)
    if block.terminator is not None:
        total += cycles_of(block.terminator)
    return total


def block_size(block: Block) -> float:
    """Code-size estimate of one block."""
    total = 0.0
    for phi in block.phis:
        total += size_of(phi)
    for ins in block.instructions:
        total += size_of(ins)
    if block.terminator is not None:
        total += size_of(block.terminator)
    return total


def graph_code_size(graph: Graph) -> float:
    """Code-size estimate of a whole compilation unit.

    This (not the raw node count) is the quantity the paper's budget
    heuristic compares against the initial size (Section 5.2).
    """
    return sum(block_size(b) for b in graph.blocks)


def estimated_run_time(graph: Graph, frequencies: BlockFrequencies | None = None) -> float:
    """Frequency-weighted cycle estimate of one invocation of ``graph``."""
    freqs = frequencies or graph.block_frequencies()
    return sum(
        block_cycles(block) * freqs.frequency.get(block, 0.0) for block in graph.blocks
    )


@dataclass(frozen=True)
class GraphCostSummary:
    """Size and estimated run time of a compilation unit."""

    code_size: float
    estimated_cycles: float

    @staticmethod
    def of(graph: Graph) -> "GraphCostSummary":
        return GraphCostSummary(graph_code_size(graph), estimated_run_time(graph))
