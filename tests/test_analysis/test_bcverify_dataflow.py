"""Dataflow engine: fixpoints on hand-built CFGs, mutant differential."""

from __future__ import annotations

import pytest

from repro.analysis.bcverify import (
    ConstProp,
    Liveness,
    MustDefined,
    build_cfg,
    run_bc_checkers,
    solve,
    verify_bytecode,
)
from repro.analysis.progen import mutated_program
from repro.pipeline.compiler import compile_and_profile, make_engine
from repro.pipeline.config import CONFIGURATIONS
from repro.vm.bytecode import (
    OP_ADD,
    OP_DIV,
    OP_GOTO,
    OP_IF,
    OP_LT,
    OP_MUL,
    OP_RETURN,
    BytecodeFunction,
)
from repro.vm.translate import translate_program


def _edge(target, moves=()):
    return (target, tuple(moves), (), None)


def make_loop_fn():
    """A counted accumulation loop, built by hand.

    ::

        b0 @0:   goto b1 [r1 <- r4 (0), r2 <- r4 (0)]
        b1 @1-2: r3 = r2 < r0 ; if r3 then b2 else b3
        b2 @3-5: r1 = r1 + r2 ; r2 = r2 + r5 ; goto b1
        b3 @6:   return r1

    Frame: r0 = n (param), r1 = acc, r2 = i, r3 = cond scratch,
    constants r4 = 0, r5 = 1.
    """
    fn = BytecodeFunction("loop", 1)
    fn.nregs = 6
    fn.const_base = 4
    fn.const_count = 2
    fn.template = [None, None, None, None, 0, 1]
    fn.code = (
        (OP_GOTO, 1, None, -1, _edge(1, ((1, 4), (2, 4)))),
        (OP_LT, 1, None, 3, 2, 0),
        (OP_IF, 1, None, -1, 3, _edge(3), _edge(6)),
        (OP_ADD, 1, None, 1, 1, 2),
        (OP_ADD, 1, None, 2, 2, 5),
        (OP_GOTO, 1, None, -1, _edge(1)),
        (OP_RETURN, 1, None, -1, 1),
    )
    fn.blocks = ((0, 1, "b0"), (1, 2, "b1"), (3, 3, "b2"), (6, 1, "b3"))
    fn.xcode = None
    return fn


@pytest.fixture()
def loop_cfg():
    return build_cfg(make_loop_fn())


def _block(cfg, start):
    return cfg.by_start[start]


# ----------------------------------------------------------------------
# CFG recovery
# ----------------------------------------------------------------------
def test_cfg_shape(loop_cfg):
    assert [b.start for b in loop_cfg.blocks] == [0, 1, 3, 6]
    header = _block(loop_cfg, 1)
    assert sorted(header.preds) == [
        _block(loop_cfg, 0).index,
        _block(loop_cfg, 3).index,
    ]
    assert sorted(header.succs) == [
        _block(loop_cfg, 3).index,
        _block(loop_cfg, 6).index,
    ]


# ----------------------------------------------------------------------
# MustDefined (forward, intersection)
# ----------------------------------------------------------------------
def test_must_defined_fixpoint(loop_cfg):
    result = solve(loop_cfg, MustDefined())
    header = _block(loop_cfg, 1)
    # params + constants + both phi moves reach the header on every path
    assert result.entry[header.index] == frozenset({0, 1, 2, 4, 5})
    # the compare defines r3 inside the header
    assert 3 in result.exit[header.index]
    exit_block = _block(loop_cfg, 6)
    assert result.entry[exit_block.index] >= frozenset({0, 1, 2, 3})


def test_must_defined_unreachable_is_none():
    fn = make_loop_fn()
    # append an unreachable trailing block
    fn.code = fn.code + ((OP_RETURN, 1, None, -1, 0),)
    fn.blocks = fn.blocks + ((7, 1, "dead"),)
    cfg = build_cfg(fn)
    result = solve(cfg, MustDefined())
    assert result.entry[cfg.by_start[7].index] is None


# ----------------------------------------------------------------------
# Liveness (backward, union)
# ----------------------------------------------------------------------
def test_liveness_fixpoint(loop_cfg):
    result = solve(loop_cfg, Liveness())
    header = _block(loop_cfg, 1)
    # the loop keeps n, acc, i and the increment constant alive
    assert result.entry[header.index] == frozenset({0, 1, 2, 5})
    body = _block(loop_cfg, 3)
    assert result.entry[body.index] == frozenset({0, 1, 2, 5})
    exit_block = _block(loop_cfg, 6)
    assert result.entry[exit_block.index] == frozenset({1})
    # nothing is live after the return
    assert result.exit[exit_block.index] == frozenset()


def test_liveness_edge_moves_rename():
    result = solve(build_cfg(make_loop_fn()), Liveness())
    # before the entry goto's moves run, only n and the constants are
    # needed: r1/r2 get their values from r4 through the moves
    entry = result.entry[0]
    assert 1 not in entry and 2 not in entry
    assert {0, 4, 5} <= entry


# ----------------------------------------------------------------------
# ConstProp (forward over the code stream)
# ----------------------------------------------------------------------
def test_constprop_folds_straightline():
    fn = BytecodeFunction("fold", 0)
    fn.nregs = 5
    fn.const_base = 3
    fn.const_count = 2
    fn.template = [None, None, None, 6, 7]
    fn.code = (
        (OP_ADD, 1, None, 0, 3, 4),   # r0 = 6 + 7 = 13
        (OP_MUL, 1, None, 1, 0, 0),   # r1 = 169
        (OP_RETURN, 1, None, -1, 1),
    )
    fn.blocks = ((0, 3, "b0"),)
    fn.xcode = None
    cfg = build_cfg(fn)
    result = solve(cfg, ConstProp())
    env = result.exit[0]
    assert env[0] == 13 and env[1] == 169


def test_constprop_join_drops_disagreements(loop_cfg):
    result = solve(loop_cfg, ConstProp())
    header = _block(loop_cfg, 1)
    env = result.entry[header.index]
    # constants survive the loop join; the induction variable does not
    assert env[4] == 0 and env[5] == 1
    assert 2 not in env and 1 not in env


def test_constprop_never_folds_division_by_zero():
    fn = BytecodeFunction("divz", 1)
    fn.nregs = 4
    fn.const_base = 2
    fn.const_count = 2
    fn.template = [None, None, 5, 0]
    fn.code = (
        (OP_DIV, 1, None, 1, 2, 3),   # 5 / 0: traps at runtime
        (OP_RETURN, 1, None, -1, 1),
    )
    fn.blocks = ((0, 2, "b0"),)
    fn.xcode = None
    result = solve(build_cfg(fn), ConstProp())
    assert 1 not in result.exit[0]


def test_constprop_matches_machine_wraparound():
    fn = BytecodeFunction("wrap", 0)
    fn.nregs = 3
    fn.const_base = 1
    fn.const_count = 2
    fn.template = [None, (1 << 62), 4]
    fn.code = (
        (OP_MUL, 1, None, 0, 1, 2),   # (1<<62) * 4 wraps to 0
        (OP_RETURN, 1, None, -1, 0),
    )
    fn.blocks = ((0, 2, "b0"),)
    fn.xcode = None
    result = solve(build_cfg(fn), ConstProp())
    assert result.exit[0][0] == 0


# ----------------------------------------------------------------------
# def-before-use through the checker
# ----------------------------------------------------------------------
def test_defuse_accepts_loop_fn():
    fn = make_loop_fn()
    report = run_bc_checkers(fn, checkers=("bc-structure", "bc-defuse"))
    assert report.ok, report.format() if hasattr(report, "format") else ""


def test_defuse_rejects_uninitialized_path():
    fn = make_loop_fn()
    code = list(fn.code)
    # drop the acc move from the entry edge: r1 is now only written
    # inside the loop, so the zero-trip path returns it uninitialized
    code[0] = (OP_GOTO, 1, None, -1, _edge(1, ((2, 4),)))
    fn.code = tuple(code)
    report = run_bc_checkers(fn, checkers=("bc-structure", "bc-defuse"))
    assert any(v.checker == "bc-defuse" for v in report.errors())


# ----------------------------------------------------------------------
# Satellite: verifier-accepted mutants never crash the VM
# ----------------------------------------------------------------------
MUTANT_CORPUS = [
    """
    fn main(n: int) -> int {
      var total: int = 0;
      var i: int = 1;
      while (i < n) {
        if (total > 40) { total = total - i; }
        else { total = total + i * 2; }
        i = i + 1;
      }
      return total;
    }
    """,
    """
    fn step(x: int) -> int {
      if (x % 2 == 0) { return x / 2; }
      return 3 * x + 1;
    }
    fn main(n: int) -> int {
      var x: int = n;
      var hops: int = 0;
      while (x > 1) {
        x = step(x);
        hops = hops + 1;
        if (hops > 200) { return hops; }
      }
      return hops;
    }
    """,
]


@pytest.mark.parametrize("seed", range(12))
def test_accepted_mutants_run_clean(seed):
    """Differential check: whatever the mutator produces, the verifier
    accepts the translation, and the accepted stream executes on the VM
    without any Python-level error (traps are legitimate outcomes)."""
    mutant = mutated_program(seed, corpus=[s for s in MUTANT_CORPUS])
    try:
        program, _report = compile_and_profile(
            mutant.source, "main", [[7]], CONFIGURATIONS["dbds"]
        )
    except Exception:
        pytest.skip("mutant does not compile (mutator bug, not ours)")
    bytecode = translate_program(program)
    verdict = verify_bytecode(bytecode, program, quicken=True)
    assert verdict.ok, verdict.format()
    for engine in ("vm", "vm-nofuse", "closure"):
        runner = make_engine(engine, program, bytecode=bytecode)
        result = runner.run("main", [7])
        assert result.trapped or result.value is not None
