"""Differential testing: every configuration must be semantically
transparent on arbitrary programs.

This is the central correctness property of the whole system: DBDS,
dupalot, backtracking and every enabling optimization may only change
*performance*, never observable behaviour (return values, traps and
global state) — checked on randomly generated programs covering the
full language.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter, observable_outcome
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import BACKTRACKING, BASELINE, DBDS, DUPALOT
from tests.generators import random_program
from tests.helpers import outcomes


def behaviours(program, arg_sets):
    return outcomes(program, "main", arg_sets)


ARGS = [[0], [1], [4], [9]]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.integers(min_value=0, max_value=10_000))
def test_all_configs_semantically_transparent(seed):
    source = random_program(seed)
    reference_program = compile_source(source)
    reference = behaviours(reference_program, ARGS)
    for config in (BASELINE, DBDS, DUPALOT):
        config = dataclasses.replace(config, paranoid=True)
        program, _ = compile_and_profile(source, "main", ARGS[:2], config)
        assert behaviours(program, ARGS) == reference, (
            f"{config.name} changed semantics for seed {seed}\n{source}"
        )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.integers(min_value=0, max_value=10_000))
def test_backtracking_semantically_transparent(seed):
    source = random_program(seed)
    reference = behaviours(compile_source(source), ARGS)
    config = dataclasses.replace(BACKTRACKING, paranoid=True)
    program, _ = compile_and_profile(source, "main", ARGS[:2], config)
    assert behaviours(program, ARGS) == reference, (
        f"backtracking changed semantics for seed {seed}\n{source}"
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_generated_programs_are_valid(seed):
    """The generator itself produces compilable, runnable programs."""
    source = random_program(seed)
    program = compile_source(source)
    from repro.ir import verify_program

    verify_program(program)
    result = Interpreter(program).run("main", [3])
    # Termination within budget; trapping is allowed.
    assert result.steps < 1_000_000


def test_known_regression_seeds():
    """Pin a few seeds end-to-end (fast deterministic smoke)."""
    for seed in (1, 7, 42, 1234):
        source = random_program(seed)
        reference = behaviours(compile_source(source), ARGS)
        program, _ = compile_and_profile(source, "main", ARGS[:2], DBDS)
        assert behaviours(program, ARGS) == reference
