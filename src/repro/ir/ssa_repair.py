"""On-demand SSA reconstruction after duplication.

Tail-duplicating a merge block turns each value it defined into *several*
definitions (one per duplicated copy).  Uses in dominated blocks must be
rewired to phis placed on the iterated dominance frontier of the new
definition blocks — this is precisely the "complex analysis to generate
valid φ instructions for usages in dominated blocks" that Section 3.1 of
the paper identifies as the expensive part of real duplication (and that
the simulation tier avoids).

The algorithm is the textbook one: place phis on DF+ of the definition
set, then resolve each use by walking up the dominator tree to the
nearest definition, filling phi operands recursively.
"""

from __future__ import annotations

from typing import Optional

from .block import Block
from .cfgutils import block_of_use
from .dominators import DominatorTree
from .graph import Graph
from .nodes import Phi, User, Value
from .types import Type


class SsaRepair:
    """Rewires uses of a value that now has multiple definitions."""

    def __init__(
        self,
        graph: Graph,
        dom: DominatorTree,
        definitions: dict[Block, Value],
        value_type: Type,
    ) -> None:
        self.graph = graph
        self.dom = dom
        self.value_type = value_type
        # block -> definition available at the *end* of that block.
        self.defs: dict[Block, Value] = dict(definitions)
        self.phi_blocks = dom.iterated_dominance_frontier(set(definitions))
        self.inserted_phis: list[Phi] = []

    # ------------------------------------------------------------------
    def definition_at_end_of(self, block: Block) -> Value:
        """The reaching definition live-out of ``block``."""
        existing = self.defs.get(block)
        if existing is not None:
            return existing
        if block in self.phi_blocks:
            return self._materialize_phi(block)
        parent = self.dom.immediate_dominator(block)
        if parent is block:
            raise LookupError(
                "no reaching definition at entry - use before def after duplication"
            )
        value = self.definition_at_end_of(parent)
        self.defs[block] = value
        return value

    def _materialize_phi(self, block: Block) -> Phi:
        phi = Phi(block, self.value_type, [])
        block.add_phi(phi)
        self.inserted_phis.append(phi)
        # Register before filling inputs: loops reach the phi itself.
        self.defs[block] = phi
        for pred in block.predecessors:
            phi._append_input(self.definition_at_end_of(pred))
        return phi

    # ------------------------------------------------------------------
    def rewrite_uses(self, uses: list[tuple[User, int]]) -> None:
        """Point each recorded (user, operand-slot) at its reaching def."""
        for user, slot in uses:
            use_block = block_of_use(user, self._phi_pred_index(user, slot))
            replacement = self.definition_at_end_of(use_block)
            user.set_input(slot, replacement)

    @staticmethod
    def _phi_pred_index(user: User, slot: int) -> int:
        # For phis the slot *is* the predecessor index; for any other
        # user block_of_use ignores the index argument.
        return slot

    def prune_dead_phis(self) -> None:
        """Drop inserted phis that ended up unused (no liveness pass is
        run up front, so over-approximation is expected).  A phi whose
        only user is itself (self loop input) is dead too."""
        changed = True
        while changed:
            changed = False
            for phi in list(self.inserted_phis):
                if phi.block is None:
                    continue
                if any(user is not phi for user in phi.uses):
                    continue
                # Clear self-referencing operand slots (positional phi
                # inputs cannot be deleted, so point them elsewhere).
                for slot, operand in enumerate(phi.inputs):
                    if operand is phi:
                        other = next(
                            (v for v in phi.inputs if v is not phi), None
                        )
                        if other is None:
                            break
                        phi.set_input(slot, other)
                if not phi.has_uses():
                    phi.block.remove_instruction(phi)
                    self.inserted_phis.remove(phi)
                    changed = True


def repair_value(
    graph: Graph,
    dom: DominatorTree,
    definitions: dict[Block, Value],
    uses: list[tuple[User, int]],
    value_type: Type,
) -> list[Phi]:
    """One-shot helper: repair all ``uses`` of a value that now has the
    given per-block ``definitions``. Returns the phis that were inserted
    (after pruning)."""
    repair = SsaRepair(graph, dom, definitions, value_type)
    repair.rewrite_uses(uses)
    repair.prune_dead_phis()
    return [phi for phi in repair.inserted_phis if phi.block is not None]


def collect_external_uses(value: Value, within: Block) -> list[tuple[User, int]]:
    """All (user, slot) pairs of ``value`` consumed outside ``within``.

    Phi uses are attributed to the predecessor edge (SSA use-block rule).
    """
    result: list[tuple[User, int]] = []
    for user in list(value.uses):
        for slot, operand in enumerate(user.inputs):
            if operand is not value:
                continue
            use_block: Optional[Block]
            if isinstance(user, Phi):
                use_block = user.block.predecessors[slot]
            else:
                use_block = user.block
            if use_block is not within:
                result.append((user, slot))
    return result
