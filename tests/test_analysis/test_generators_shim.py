"""Parity test for the ``tests.generators`` compatibility shim."""

from __future__ import annotations

from repro.analysis import progen

from tests import generators as shim


def test_shim_all_matches_package_module():
    assert sorted(shim.__all__) == sorted(progen.__all__)


def test_shim_reexports_identical_objects():
    for name in progen.__all__:
        assert getattr(shim, name) is getattr(progen, name), name
