"""Tests for profile-driven block frequency estimation."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.ir.frequency import BlockFrequencies
from repro.ir.loops import LoopForest
from tests.helpers import build_diamond


class TestDiamondFrequencies:
    def test_even_split(self):
        parts = build_diamond(true_prob=0.5)
        freqs = BlockFrequencies(parts["graph"])
        assert freqs.frequency[parts["graph"].entry] == pytest.approx(1.0)
        assert freqs.frequency[parts["true_block"]] == pytest.approx(0.5)
        assert freqs.frequency[parts["false_block"]] == pytest.approx(0.5)
        assert freqs.frequency[parts["merge"]] == pytest.approx(1.0)

    def test_skewed_split(self):
        parts = build_diamond(true_prob=0.9)
        freqs = BlockFrequencies(parts["graph"])
        assert freqs.frequency[parts["true_block"]] == pytest.approx(0.9)
        assert freqs.frequency[parts["false_block"]] == pytest.approx(0.1)
        assert freqs.frequency[parts["merge"]] == pytest.approx(1.0)

    def test_relative_normalizes_to_hottest(self):
        parts = build_diamond(true_prob=0.9)
        freqs = BlockFrequencies(parts["graph"])
        assert freqs.relative(parts["graph"].entry) == pytest.approx(1.0)
        assert freqs.relative(parts["true_block"]) == pytest.approx(0.9)


class TestLoopFrequencies:
    SOURCE = """
fn loop(n: int) -> int {
  var total: int = 0;
  var i: int = 0;
  while (i < n) {
    total = total + i;
    i = i + 1;
  }
  return total;
}
"""

    def test_body_scaled_by_trip_count(self):
        program = compile_source(self.SOURCE)
        graph = program.function("loop")
        forest = LoopForest(graph)
        loop = forest.loops[0]
        freqs = BlockFrequencies(graph, forest)
        # Header runs trip_count times per entry.
        assert freqs.frequency[loop.header] == pytest.approx(loop.trip_count)

    def test_profiled_trips_respected(self):
        program = compile_source(self.SOURCE)
        graph = program.function("loop")
        forest = LoopForest(graph)
        forest.loops[0].header.profile_trip_count = 100.0
        forest = LoopForest(graph)  # rebuild to pick up the annotation
        freqs = BlockFrequencies(graph, forest)
        assert freqs.frequency[forest.loops[0].header] == pytest.approx(100.0)

    def test_nested_loops_multiply(self):
        source = """
fn nested(n: int) -> int {
  var t: int = 0;
  var i: int = 0;
  while (i < n) {
    var j: int = 0;
    while (j < n) { t = t + 1; j = j + 1; }
    i = i + 1;
  }
  return t;
}
"""
        program = compile_source(source)
        graph = program.function("nested")
        forest = LoopForest(graph)
        freqs = BlockFrequencies(graph, forest)
        inner = next(l for l in forest.loops if l.parent is not None)
        outer = inner.parent
        # Inner header executes ~trip(outer) * trip(inner) * P(enter).
        assert freqs.frequency[inner.header] > freqs.frequency[outer.header]

    def test_hottest_block_is_loop_body(self):
        program = compile_source(self.SOURCE)
        graph = program.function("loop")
        freqs = BlockFrequencies(graph)
        hottest = max(freqs.frequency, key=freqs.frequency.get)
        forest = LoopForest(graph)
        assert forest.innermost_loop(hottest) is not None
