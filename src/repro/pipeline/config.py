"""Compiler configurations matching the paper's evaluation setup.

Section 6.1: *"We ran each benchmark with three different
configurations: baseline (DBDS disabled), DBDS (DBDS enabled) and
dupalot (DBDS enabled but without cost/benefit trade-off)."*

A fourth configuration, *backtracking*, implements Algorithm 1 for the
compile-time comparison of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..dbds.phase import DbdsConfig
from ..dbds.tradeoff import TradeOffConfig


@dataclass(frozen=True)
class CompilerConfig:
    """One named pipeline configuration."""

    name: str
    #: run the DBDS phase (simulate → trade-off → optimize)
    enable_dbds: bool = False
    #: DBDS without the trade-off tier: every positive-benefit pair
    dupalot: bool = False
    #: use the backtracking baseline instead of simulation
    backtracking: bool = False
    #: run the inliner in the front end
    enable_inlining: bool = True
    #: trade-off constants (ablations override)
    trade_off: TradeOffConfig = field(default_factory=TradeOffConfig)
    #: verify the IR after each phase (slow; tests enable it)
    paranoid: bool = False
    max_dbds_iterations: int = 3
    #: Section 8 future work: duplicate over multiple merges along paths
    path_duplication: bool = False
    #: experimental: peel first iterations of constant-entry loops
    #: before DBDS (duplication at loop headers — see DESIGN.md)
    enable_peeling: bool = False

    def fingerprint(self) -> str:
        """Deterministic digest of every tunable (cache-key component).

        Built from ``dataclasses.asdict`` so nested
        :class:`TradeOffConfig` constants participate: two configs that
        differ in any field — even an ablation tweak — never share
        artifact-cache entries (see ``repro.pipeline.cache``).
        """
        import dataclasses
        import hashlib
        import json

        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def dbds_config(self) -> DbdsConfig:
        return DbdsConfig(
            trade_off=self.trade_off,
            dupalot=self.dupalot,
            paranoid=self.paranoid,
            max_iterations=self.max_dbds_iterations,
            path_duplication=self.path_duplication,
        )

    def with_trade_off(self, **kwargs) -> "CompilerConfig":
        return replace(self, trade_off=replace(self.trade_off, **kwargs))


BASELINE = CompilerConfig(name="baseline")
DBDS = CompilerConfig(name="dbds", enable_dbds=True)
DUPALOT = CompilerConfig(name="dupalot", enable_dbds=True, dupalot=True)
BACKTRACKING = CompilerConfig(name="backtracking", backtracking=True)
#: Section 8 future work: DBDS extended with path duplication.
PATH_DBDS = CompilerConfig(
    name="path-dbds", enable_dbds=True, path_duplication=True
)
#: Experimental: loop peeling before DBDS (duplication at loop headers).
PEEL_DBDS = CompilerConfig(
    name="peel-dbds", enable_dbds=True, enable_peeling=True
)

CONFIGURATIONS = {
    c.name: c
    for c in (BASELINE, DBDS, DUPALOT, BACKTRACKING, PATH_DBDS, PEEL_DBDS)
}
