"""The closure engine: basic blocks compiled to Python closures.

The third execution engine (``--engine=closure``).  Where the bytecode
machine pays one handler round-trip per instruction, this backend
**compiles each translated function to Python source** — one closure
per basic block — and lets CPython's own bytecode do the dispatch:

* every basic block becomes ``_blk_<pc>(vm, r, m, state)`` returning
  the next block's closure (or ``None`` for a return), driven by a
  trampoline ``while b is not None: b = b(vm, r, m, state)``;
* instructions are inlined as straight-line statements — arithmetic
  with the wrap64 literals baked in, interned constants inlined as
  Python literals, field/array/global traffic as plain subscripts;
* steps and metered cycles are accounted **per segment** (a maximal
  call-free instruction run): one ``m[0] += W`` / ``m[1] += C`` pair
  per segment instead of per instruction, with ``W``/``C`` baked at
  compile time.

Exactness is preserved at every observable point:

* a segment-entry budget guard ``m[0] + W > max_steps`` routes to
  :func:`_finish_budget`, a cold path that replays the segment
  per-instruction through the base handler table and therefore stops
  with bit-identical :class:`BudgetExceeded` timing;
* trap sites flush ``state.steps = m[0] + k`` / ``state.cycles =
  m[1] + c`` with the partial step count and the left-to-right partial
  cycle sum baked in, so values, steps, cycles and trap messages match
  the reference exactly (partial sums are exact for integer-valued
  cost models — the default — since float addition is only
  associative on integers);
* call sites flush the meters to the shared state, run ``vm._call``
  (callees compile lazily on first entry), reload, and charge the call
  cost after, exactly like the machine's frame loops.

Hooked runs (a profile collector or an observer) fall back to the
flat-tuple machine loops, which keeps hook semantics untouched by
construction; so do functions without block-span metadata (legacy
cache artifacts).  ``max_steps`` and ``metered`` are baked into the
generated source, so drivers are recompiled if either changes between
runs on the same machine instance.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..interp.interpreter import BudgetExceeded
from ..ir.ops import EvaluationTrap
from .bytecode import (
    OP_ADD,
    OP_AND,
    OP_ARRAY_LENGTH,
    OP_ARRAY_LOAD,
    OP_ARRAY_STORE,
    OP_CALL,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GOTO,
    OP_GT,
    OP_IF,
    OP_LE,
    OP_LOAD_FIELD,
    OP_LOAD_GLOBAL,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_NEG,
    OP_NEW,
    OP_NEW_ARRAY,
    OP_NOT,
    OP_OR,
    OP_RETURN,
    OP_SHL,
    OP_SHR,
    OP_STORE_FIELD,
    OP_STORE_GLOBAL,
    OP_SUB,
    OP_USHR,
    OP_XOR,
    BytecodeFunction,
    BytecodeProgram,
)
from .machine import (
    _HANDLERS,
    HeapArray,
    HeapObject,
    VirtualMachine,
    _is_ref,
)

_MASK = "18446744073709551615"
_SIGN = "9223372036854775808"
_TWO64 = "18446744073709551616"
_INT_MIN = "-9223372036854775808"
_INT_MAX = "9223372036854775807"

#: sentinel stored in the driver cache for functions that cannot be
#: closure-compiled (no block spans — e.g. a legacy cache artifact)
_FALLBACK = object()

#: every global name the generated source may reference: the fixed
#: support namespace a compiler seeds (block closures ``_blk_<pc>`` and
#: callee cells ``_f<N>`` are added per function and matched by
#: pattern in the lint)
CLOSURE_NAMESPACE = frozenset(
    ("EvaluationTrap", "HeapObject", "HeapArray",
     "_is_ref", "_finish", "_fn", "_tmpl", "_ret")
)

#: the only builtins generated code is allowed to reach
CLOSURE_BUILTINS = frozenset(("abs", "len", "dict"))

#: base opcodes gen_ins/gen_call/gen_terminator can compile — the
#: opcode-space exhaustiveness test asserts this covers all 32
CLOSURE_COVERED = frozenset(
    (
        OP_ADD, OP_SUB, OP_MUL, OP_DIV, OP_MOD,
        OP_AND, OP_OR, OP_XOR, OP_SHL, OP_SHR, OP_USHR,
        OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE,
        OP_NOT, OP_NEG, OP_NEW,
        OP_LOAD_FIELD, OP_STORE_FIELD, OP_LOAD_GLOBAL, OP_STORE_GLOBAL,
        OP_NEW_ARRAY, OP_ARRAY_LOAD, OP_ARRAY_STORE, OP_ARRAY_LENGTH,
        OP_CALL, OP_GOTO, OP_IF, OP_RETURN,
    )
)


def _finish_budget(vm, fn, regs, m, pc) -> None:
    """Cold path: this segment's steps cannot all fit the budget.

    Replays from the segment's first pc through the *base* handler
    table with the machine loop's exact accounting; the guard only
    fires when exhaustion is guaranteed within the segment, so this
    always raises — :class:`BudgetExceeded` at the precise instruction
    the flat-tuple loop would stop at (or an :class:`EvaluationTrap`
    if an earlier instruction traps first, flushed identically).
    """
    state = vm.state
    code = fn.code
    max_steps = vm.max_steps
    metered = vm.metered
    steps, cycles = m
    while True:
        ins = code[pc]
        steps += 1
        if steps > max_steps:
            state.steps = steps
            state.cycles = cycles
            raise BudgetExceeded(f"exceeded {max_steps} interpreter steps")
        try:
            pc = _HANDLERS[ins[0]](vm, ins, regs, pc)
        except EvaluationTrap:
            state.steps = steps
            state.cycles = cycles
            raise
        if metered:
            cycles += ins[1]


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------
class _FunctionCompiler:
    """Generates and executes the Python source for one function."""

    def __init__(
        self,
        fn: BytecodeFunction,
        metered: bool,
        max_steps: int,
        max_call_depth: int,
    ) -> None:
        self.fn = fn
        self.metered = metered
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.lines: list[str] = []
        self.lo = fn.const_base
        self.hi = fn.const_base + fn.const_count
        self.namespace: dict[str, Any] = {
            "EvaluationTrap": EvaluationTrap,
            "HeapObject": HeapObject,
            "HeapArray": HeapArray,
            "_is_ref": _is_ref,
            "_finish": _finish_budget,
            "_fn": fn,
            "_tmpl": fn.template,
            "_ret": [None],
        }
        self._callees: dict[int, str] = {}

    # -- helpers ---------------------------------------------------------
    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def reg(self, reg: int) -> str:
        """How generated code names register ``reg`` (read or write).

        The closure engine keeps registers in the ``r`` list; the
        megaunit compiler overrides this to use Python locals.
        """
        return f"r[{reg}]"

    def fn_ref(self) -> str:
        """The generated-source global naming this function's
        :class:`BytecodeFunction` (the ``_finish`` cold path needs it)."""
        return "_fn"

    def finish_regs(self) -> str:
        """The register-file expression handed to ``_finish``."""
        return "r"

    def operand(self, reg: int) -> str:
        """A register read — interned constants inline as literals."""
        if self.lo <= reg < self.hi:
            value = self.fn.template[reg]
            if value is None or type(value) in (int, bool):
                return repr(value)
        return self.reg(reg)

    def callee(self, target: BytecodeFunction) -> str:
        name = self._callees.get(id(target))
        if name is None:
            name = f"_f{len(self._callees)}"
            self._callees[id(target)] = name
            self.namespace[name] = target
        return name

    def flush(self, indent: int, k: int, ck) -> None:
        """Partial meter flush preceding a trap raise.

        ``k`` instructions of the current segment (including the
        trapping one) count as steps; ``ck`` is the left-to-right
        partial cycle sum of the instructions *before* it.
        """
        self.emit(indent, f"state.steps = m[0] + {k}")
        if self.metered:
            if ck:
                self.emit(indent, f"state.cycles = m[1] + {ck!r}")
            else:
                self.emit(indent, "state.cycles = m[1]")

    def wrap64(self, indent: int, dest: int, expr: str) -> None:
        self.emit(indent, f"v = ({expr}) & {_MASK}")
        self.emit(
            indent, f"{self.reg(dest)} = v - {_TWO64} if v & {_SIGN} else v"
        )

    def guarded64(self, indent: int, dest: int, expr: str) -> None:
        # add/sub/mul: skip the mask while the result is in range
        # (identical values — masking an in-range int is the identity).
        self.emit(indent, f"v = {expr}")
        self.emit(indent, f"if {_INT_MIN} <= v <= {_INT_MAX}:")
        self.emit(indent + 1, f"{self.reg(dest)} = v")
        self.emit(indent, "else:")
        self.emit(indent + 1, f"v &= {_MASK}")
        self.emit(
            indent + 1,
            f"{self.reg(dest)} = v - {_TWO64} if v & {_SIGN} else v",
        )

    # -- per-instruction codegen ----------------------------------------
    def gen_ins(self, indent: int, ins: tuple, k: int, ck) -> None:
        """One non-call, non-terminator instruction.

        ``k``/``ck`` position it inside its segment for trap flushes.
        """
        op, dest = ins[0], ins[3]
        emit, flush = self.emit, self.flush
        if op in (OP_ADD, OP_SUB, OP_MUL):
            sym = {OP_ADD: "+", OP_SUB: "-", OP_MUL: "*"}[op]
            self.guarded64(
                indent, dest,
                f"{self.operand(ins[4])} {sym} {self.operand(ins[5])}",
            )
        elif op in (OP_AND, OP_OR, OP_XOR):
            sym = {OP_AND: "&", OP_OR: "|", OP_XOR: "^"}[op]
            self.wrap64(
                indent, dest,
                f"{self.operand(ins[4])} {sym} {self.operand(ins[5])}",
            )
        elif op == OP_SHL:
            self.wrap64(
                indent, dest,
                f"{self.operand(ins[4])} << ({self.operand(ins[5])} & 63)",
            )
        elif op == OP_SHR:
            self.wrap64(
                indent, dest,
                f"{self.operand(ins[4])} >> ({self.operand(ins[5])} & 63)",
            )
        elif op == OP_USHR:
            self.wrap64(
                indent, dest,
                f"({self.operand(ins[4])} & {_MASK})"
                f" >> ({self.operand(ins[5])} & 63)",
            )
        elif op in (OP_DIV, OP_MOD):
            emit(indent, f"b = {self.operand(ins[5])}")
            emit(indent, "if b == 0:")
            flush(indent + 1, k, ck)
            word = "division" if op == OP_DIV else "modulo"
            emit(indent + 1, f"raise EvaluationTrap('{word} by zero')")
            emit(indent, f"a = {self.operand(ins[4])}")
            if op == OP_DIV:
                emit(indent, "v = abs(a) // abs(b)")
                emit(indent, "if (a >= 0) != (b >= 0):")
                emit(indent + 1, "v = -v")
            else:
                emit(indent, "v = abs(a) % abs(b)")
                emit(indent, "if a < 0:")
                emit(indent + 1, "v = -v")
            emit(indent, f"v &= {_MASK}")
            emit(indent, f"{self.reg(dest)} = v - {_TWO64} if v & {_SIGN} else v")
        elif op in (OP_EQ, OP_NE):
            emit(indent, f"a = {self.operand(ins[4])}")
            emit(indent, f"b = {self.operand(ins[5])}")
            test = "a is b if _is_ref(a) or _is_ref(b) else a == b"
            if op == OP_NE:
                test = f"not ({test})"
            emit(indent, f"{self.reg(dest)} = {test}")
        elif op in (OP_LT, OP_LE, OP_GT, OP_GE):
            sym = {OP_LT: "<", OP_LE: "<=", OP_GT: ">", OP_GE: ">="}[op]
            emit(
                indent,
                f"{self.reg(dest)} = {self.operand(ins[4])} {sym}"
                f" {self.operand(ins[5])}",
            )
        elif op == OP_NOT:
            emit(indent, f"{self.reg(dest)} = not {self.operand(ins[4])}")
        elif op == OP_NEG:
            self.guarded64(indent, dest, f"-{self.operand(ins[4])}")
        elif op == OP_NEW:
            emit(
                indent,
                f"{self.reg(dest)} = HeapObject({ins[4]!r}, dict({ins[5]!r}))",
            )
        elif op == OP_LOAD_FIELD:
            emit(indent, f"o = {self.operand(ins[4])}")
            emit(indent, "if o is None:")
            flush(indent + 1, k, ck)
            emit(
                indent + 1,
                f"raise EvaluationTrap('null dereference reading"
                f" .{ins[5]}')",
            )
            emit(indent, f"{self.reg(dest)} = o.fields[{ins[5]!r}]")
        elif op == OP_STORE_FIELD:
            emit(indent, f"o = {self.operand(ins[4])}")
            emit(indent, "if o is None:")
            flush(indent + 1, k, ck)
            emit(
                indent + 1,
                f"raise EvaluationTrap('null dereference writing"
                f" .{ins[5]}')",
            )
            emit(indent, f"o.fields[{ins[5]!r}] = {self.operand(ins[6])}")
            emit(indent, f"{self.reg(dest)} = None")
        elif op == OP_LOAD_GLOBAL:
            emit(indent, f"{self.reg(dest)} = state.globals[{ins[4]!r}]")
        elif op == OP_STORE_GLOBAL:
            emit(
                indent,
                f"state.globals[{ins[4]!r}] = {self.operand(ins[5])}",
            )
            emit(indent, f"{self.reg(dest)} = None")
        elif op == OP_NEW_ARRAY:
            emit(indent, f"n = {self.operand(ins[4])}")
            emit(indent, "if n < 0:")
            flush(indent + 1, k, ck)
            emit(
                indent + 1,
                'raise EvaluationTrap(f"negative array length {n}")',
            )
            emit(indent, f"{self.reg(dest)} = HeapArray([{ins[5]!r}] * n)")
        elif op in (OP_ARRAY_LOAD, OP_ARRAY_STORE):
            emit(indent, f"a = {self.operand(ins[4])}")
            emit(indent, "if a is None:")
            flush(indent + 1, k, ck)
            emit(indent + 1, "raise EvaluationTrap('null array access')")
            emit(indent, f"i = {self.operand(ins[5])}")
            emit(indent, "vs = a.values")
            emit(indent, "if not 0 <= i < len(vs):")
            flush(indent + 1, k, ck)
            emit(
                indent + 1,
                'raise EvaluationTrap(f"array index {i} out of bounds")',
            )
            if op == OP_ARRAY_LOAD:
                emit(indent, f"{self.reg(dest)} = vs[i]")
            else:
                emit(indent, f"vs[i] = {self.operand(ins[6])}")
                emit(indent, f"{self.reg(dest)} = None")
        elif op == OP_ARRAY_LENGTH:
            emit(indent, f"a = {self.operand(ins[4])}")
            emit(indent, "if a is None:")
            flush(indent + 1, k, ck)
            emit(
                indent + 1,
                "raise EvaluationTrap('null dereference in len()')",
            )
            emit(indent, f"{self.reg(dest)} = len(a.values)")
        else:  # pragma: no cover - translate emits no other opcodes
            raise AssertionError(f"cannot closure-compile opcode {op}")

    def gen_edge(self, indent: int, edge: tuple) -> None:
        for d, s in edge[1]:
            self.emit(indent, f"{self.reg(d)} = {self.reg(s)}")
        self.emit(indent, f"return _blk_{edge[0]}")

    def gen_terminator(self, indent: int, ins: tuple) -> None:
        op = ins[0]
        if op == OP_RETURN:
            value = self.operand(ins[4]) if ins[4] >= 0 else "None"
            self.emit(indent, f"_ret[0] = {value}")
            self.emit(indent, "return None")
        elif op == OP_GOTO:
            self.gen_edge(indent, ins[4])
        elif op == OP_IF:
            self.emit(indent, f"if {self.operand(ins[4])}:")
            self.gen_edge(indent + 1, ins[5])
            self.gen_edge(indent, ins[6])
        else:  # pragma: no cover
            raise AssertionError(f"unknown terminator opcode {op}")

    # -- per-block codegen ----------------------------------------------
    def gen_block(self, start: int, count: int) -> None:
        code = self.fn.code
        self.emit(0, f"def _blk_{start}(vm, r, m, state):")
        pc = start
        end = start + count
        while pc < end:
            if code[pc][0] == OP_CALL:
                self.gen_call(1, code[pc], pc)
                pc += 1
                continue
            seg_end = pc
            while seg_end < end and code[seg_end][0] != OP_CALL:
                seg_end += 1
            self.gen_segment(1, pc, seg_end)
            pc = seg_end
        self.emit(0, "")

    def meter_guard(self, indent: int, w: int, pc: int) -> None:
        """Segment-entry budget guard routing to the ``_finish`` replay.

        The megaunit compiler overrides this (and :meth:`meter_charge`)
        to keep the meters in Python locals.
        """
        self.emit(indent, f"if m[0] + {w} > {self.max_steps}:")
        self.emit(
            indent + 1,
            f"_finish(vm, {self.fn_ref()}, {self.finish_regs()}, m, {pc})",
        )

    def meter_charge(self, indent: int, w: int, acc) -> None:
        """Segment-exit meter charge: ``w`` steps, ``acc`` cycles."""
        self.emit(indent, f"m[0] += {w}")
        if self.metered and acc:
            self.emit(indent, f"m[1] += {acc!r}")

    def gen_segment(self, indent: int, start: int, end: int) -> None:
        """A maximal call-free run; the last pc may be the terminator."""
        code = self.fn.code
        w = end - start
        self.meter_guard(indent, w, start)
        has_term = code[end - 1][0] in (OP_GOTO, OP_IF, OP_RETURN)
        body_end = end - 1 if has_term else end
        acc = 0  # left-to-right partial cycle sum, exact for int costs
        k = 0
        for pc in range(start, body_end):
            self.gen_ins(indent, code[pc], k + 1, acc)
            acc = acc + code[pc][1]
            k += 1
        if has_term:
            acc = acc + code[end - 1][1]
        self.meter_charge(indent, w, acc)
        if has_term:
            self.gen_terminator(indent, code[end - 1])

    def gen_call(self, indent: int, ins: tuple, pc: int) -> None:
        """One call site: flush, dispatch, reload, charge the cost."""
        self.emit(indent, f"if m[0] + 1 > {self.max_steps}:")
        self.emit(
            indent + 1,
            f"_finish(vm, {self.fn_ref()}, {self.finish_regs()}, m, {pc})",
        )
        self.emit(indent, "m[0] += 1")
        self.emit(indent, "state.steps = m[0]")
        self.emit(indent, "state.cycles = m[1]")
        args = ", ".join(self.reg(a) for a in ins[5])
        self.emit(
            indent,
            f"{self.reg(ins[3])} = vm._call({self.callee(ins[4])}, [{args}])",
        )
        self.emit(indent, "m[0] = state.steps")
        self.emit(indent, "m[1] = state.cycles")
        if self.metered and ins[1]:
            self.emit(indent, f"m[1] += {ins[1]!r}")

    def gen_drive(self) -> None:
        emit = self.emit
        emit(0, "def _drive(vm, args):")
        emit(1, f"if vm._call_depth > {self.max_call_depth}:")
        emit(2, "raise EvaluationTrap('stack overflow')")
        emit(1, "r = _tmpl[:]")
        emit(1, "if args:")
        emit(2, "r[:len(args)] = args")
        emit(1, "state = vm.state")
        emit(1, "m = [state.steps, state.cycles]")
        emit(1, "b = _blk_0")
        emit(1, "while b is not None:")
        emit(2, "b = b(vm, r, m, state)")
        emit(1, "state.steps = m[0]")
        emit(1, "state.cycles = m[1]")
        emit(1, "return _ret[0]")

    def source(self) -> str:
        """Generate the function's full Python source without executing
        it — the codegen lint verifies this text statically."""
        for start, count, _name in self.fn.blocks:
            self.gen_block(start, count)
        self.gen_drive()
        return "\n".join(self.lines) + "\n"

    def compile(self) -> Callable:
        source = self.source()
        exec(  # noqa: S102 - the source is generated from trusted IR
            compile(source, f"<closure:{self.fn.name}>", "exec"),
            self.namespace,
        )
        drive = self.namespace["_drive"]
        drive._source = source  # debugging / tests
        return drive


def compile_function(
    fn: BytecodeFunction,
    metered: bool,
    max_steps: int,
    max_call_depth: int,
) -> Optional[Callable]:
    """Closure-compile one function, or None when it cannot be.

    Functions without block spans (legacy schema-v2 cache artifacts)
    are not compilable and run through the machine loops instead.
    """
    if not fn.blocks:
        return None
    return _FunctionCompiler(fn, metered, max_steps, max_call_depth).compile()


def exec_function_source(
    fn: BytecodeFunction,
    bytecode: BytecodeProgram,
    source: str,
    callees: Sequence[str],
) -> Callable:
    """Execute cached generated source for ``fn`` without regenerating.

    ``callees`` is the callee-name order the compiler assigned its
    ``_f<N>`` cells in — the namespace is rebuilt against the *current*
    program's function table, so a cached driver can never capture
    functions of another program.  Raises :class:`KeyError` when a
    callee is missing (the caller regenerates from scratch then).
    """
    namespace: dict[str, Any] = {
        "EvaluationTrap": EvaluationTrap,
        "HeapObject": HeapObject,
        "HeapArray": HeapArray,
        "_is_ref": _is_ref,
        "_finish": _finish_budget,
        "_fn": fn,
        "_tmpl": fn.template,
        "_ret": [None],
    }
    for i, name in enumerate(callees):
        namespace[f"_f{i}"] = bytecode.functions[name]
    exec(  # noqa: S102 - cached text was generated from trusted IR
        compile(source, f"<closure:{fn.name}>", "exec"),
        namespace,
    )
    drive = namespace["_drive"]
    drive._source = source
    return drive


def generate_source(
    fn: BytecodeFunction,
    metered: bool = True,
    max_steps: int = 50_000_000,
    max_call_depth: int = 200,
) -> str:
    """The Python source ``compile_function`` would exec, *without*
    executing it — the static codegen lint works on this text."""
    return _FunctionCompiler(fn, metered, max_steps, max_call_depth).source()


def function_source(fn: BytecodeFunction, metered: bool = True) -> str:
    """The generated Python source for ``fn`` (docs and debugging)."""
    return generate_source(fn, metered)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ClosureVirtualMachine(VirtualMachine):
    """A :class:`VirtualMachine` whose frames run compiled closures.

    Drop-in: same constructor, ``run``/``reset``/``state`` API and
    observable semantics.  Drivers compile lazily on a function's
    first frame (so construction stays cheap and recursion works) and
    are cached per ``(max_steps, metered)`` — changing either on a
    live machine transparently recompiles.  Hooked runs (profile
    collector or observer) fall back to the machine's flat-tuple
    loops, as do functions without block metadata.

    ``codegen_cache`` (an :class:`~repro.pipeline.cache.ArtifactCache`
    or anything with its aux-store API) persists the generated text:
    warm runs re-``exec`` the cached source instead of regenerating it
    (see :mod:`repro.vm.codegen_cache` for the key discipline).
    """

    def __init__(
        self,
        bytecode: BytecodeProgram,
        codegen_cache: Optional[Any] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(bytecode, **kwargs)
        self.codegen_cache = codegen_cache
        self._drivers: dict[str, Any] = {}
        self._compiled_for = (self.max_steps, self.metered)

    def _compile_driver(self, fn: BytecodeFunction) -> Optional[Callable]:
        """Compile one driver, through the codegen cache when present."""
        if not fn.blocks:
            return None
        cache = self.codegen_cache
        if cache is None:
            return compile_function(
                fn, self.metered, self.max_steps, self.max_call_depth
            )
        from .codegen_cache import codegen_key, load_source, store_source

        key = codegen_key(
            "closure", (fn,), self.metered, self.max_steps,
            self.max_call_depth,
        )
        payload = load_source(cache, key, "closure")
        if payload is not None and payload.get("function") == fn.name:
            try:
                return exec_function_source(
                    fn, self.bytecode, payload["source"], payload["callees"]
                )
            except KeyError:
                pass  # callee vanished from the table: regenerate
        compiler = _FunctionCompiler(
            fn, self.metered, self.max_steps, self.max_call_depth
        )
        drive = compiler.compile()
        callees = [
            compiler.namespace[f"_f{i}"].name
            for i in range(len(compiler._callees))
        ]
        store_source(
            cache, key,
            {
                "engine": "closure",
                "function": fn.name,
                "callees": callees,
                "source": drive._source,
            },
        )
        return drive

    def _run_frame(self, fn: BytecodeFunction, args: list[Any]) -> Any:
        if self.profile is not None or self.observer is not None:
            return super()._run_frame(fn, args)
        key = (self.max_steps, self.metered)
        if key != self._compiled_for:
            self._drivers.clear()
            self._compiled_for = key
        drive = self._drivers.get(fn.name)
        if drive is None:
            drive = self._compile_driver(fn) or _FALLBACK
            self._drivers[fn.name] = drive
        if drive is _FALLBACK:
            return super()._run_frame(fn, args)
        return drive(self, args)


__all__ = [
    "CLOSURE_BUILTINS",
    "CLOSURE_COVERED",
    "CLOSURE_NAMESPACE",
    "ClosureVirtualMachine",
    "compile_function",
    "exec_function_source",
    "function_source",
    "generate_source",
]
