"""CFG traversals and structural surgery.

Includes the maintenance passes that keep the two structural invariants
of the IR alive across transformations: critical edges stay split, and
``If`` terminators keep distinct targets.
"""

from __future__ import annotations

from .block import Block
from .graph import Graph
from .nodes import Goto, If, Phi


def reverse_post_order(graph: Graph) -> list[Block]:
    """Reachable blocks in reverse post order (defs before uses for
    acyclic paths; loop headers before their bodies)."""
    visited: set[int] = set()
    order: list[Block] = []

    def visit(block: Block) -> None:
        stack = [(block, iter(block.successors))]
        visited.add(block.id)
        while stack:
            blk, it = stack[-1]
            advanced = False
            for succ in it:
                if succ.id not in visited:
                    visited.add(succ.id)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(blk)
                stack.pop()

    visit(graph.entry)
    order.reverse()
    return order


def reachable_blocks(graph: Graph) -> set[Block]:
    return set(reverse_post_order(graph))


def remove_unreachable_blocks(graph: Graph) -> int:
    """Delete blocks not reachable from entry. Returns how many died."""
    reachable = reachable_blocks(graph)
    dead = [b for b in graph.blocks if b not in reachable]
    # First sever all edges leaving dead blocks so reachable phi inputs
    # for those edges disappear.
    for b in dead:
        b.clear_terminator()
    for b in dead:
        graph.remove_block(b)
    return len(dead)


def insert_block_on_edge(graph: Graph, pred: Block, succ: Block) -> Block:
    """Split the edge ``pred -> succ`` with a fresh empty Goto block.

    Phi inputs of ``succ`` are preserved positionally: the new block
    replaces ``pred`` at the same predecessor index.
    """
    edge_block = graph.new_block()
    term = pred.terminator
    slot = list(term.targets).index(succ)
    # Low-level retarget: edge identity (position in succ.predecessors
    # and phi input order) must be preserved, so bypass set_target.
    term._targets[slot] = edge_block
    edge_block.add_predecessor(pred)
    index = succ.predecessor_index(pred)
    succ.predecessors[index] = edge_block
    goto = Goto(succ)
    goto.block = edge_block
    edge_block.terminator = goto
    graph.invalidate_analyses()  # low-level edits above bypass the hooks
    return edge_block


def split_critical_edges(graph: Graph) -> int:
    """Split every edge from a multi-successor block to a multi-
    predecessor block. Returns the number of edges split."""
    count = 0
    for block in list(graph.blocks):
        if len(block.successors) < 2:
            continue
        for succ in list(block.successors):
            if len(succ.predecessors) >= 2:
                insert_block_on_edge(graph, block, succ)
                count += 1
    return count


def fold_redundant_ifs(graph: Graph) -> int:
    """Replace ``If c ? t : t`` with ``Goto t`` (keeps targets distinct)."""
    count = 0
    for block in list(graph.blocks):
        term = block.terminator
        if isinstance(term, If) and term.true_target is term.false_target:
            target = term.true_target
            # The second incoming edge disappears; drop its phi input.
            block.set_terminator(Goto(target))
            count += 1
    return count


def simplify_degenerate_phis(graph: Graph) -> int:
    """Replace phis of single-predecessor blocks (and phis whose inputs
    are all identical) by their unique input."""
    count = 0
    changed = True
    while changed:
        changed = False
        for block in graph.blocks:
            for phi in list(block.phis):
                distinct = {v for v in phi.inputs if v is not phi}
                if len(distinct) == 1:
                    (replacement,) = distinct
                    phi.replace_all_uses(replacement)
                    block.remove_instruction(phi)
                    count += 1
                    changed = True
    return count


def merge_straightline_blocks(graph: Graph) -> int:
    """Fuse ``b -> Goto -> s`` pairs where ``s`` has no other
    predecessors and no phis. Returns number of fusions."""
    count = 0
    changed = True
    while changed:
        changed = False
        for block in list(graph.blocks):
            term = block.terminator
            if not isinstance(term, Goto):
                continue
            succ = term.target
            if succ is block or len(succ.predecessors) != 1 or succ.phis:
                continue
            if succ is graph.entry:
                continue
            # Move instructions and adopt the successor's terminator.
            for ins in list(succ.instructions):
                succ.instructions.remove(ins)
                ins.block = block
                block.instructions.append(ins)
            succ_term = succ.terminator
            # Detach succ_term from succ without dropping its edges,
            # then rebind those edges to `block`.
            succ.terminator = None
            block.terminator.drop_inputs()
            block.terminator = succ_term
            succ_term.block = block
            for t in succ_term.targets:
                i = t.predecessor_index(succ)
                t.predecessors[i] = block
            graph.blocks.remove(succ)
            graph.invalidate_analyses()  # direct edge rewrite above
            count += 1
            changed = True
    return count


def canonical_cfg_cleanup(graph: Graph) -> None:
    """Run the structural cleanups in a safe order, restoring all
    invariants: distinct If targets, no unreachable code, no degenerate
    phis, split critical edges."""
    fold_redundant_ifs(graph)
    remove_unreachable_blocks(graph)
    simplify_degenerate_phis(graph)
    merge_straightline_blocks(graph)
    split_critical_edges(graph)


def predecessor_pairs(graph: Graph) -> list[tuple[Block, Block]]:
    """All (predecessor, merge) pairs of the CFG — the candidate space of
    the DBDS simulation tier (Algorithm 2)."""
    pairs = []
    for merge in graph.merge_blocks():
        for pred in merge.predecessors:
            pairs.append((pred, merge))
    return pairs


def block_of_use(user, slot: int) -> Block:
    """The block in which operand ``slot`` of ``user`` is *consumed*.

    For a phi this is the predecessor matching the input position — the
    classic SSA rule — otherwise the user's own block.
    """
    if isinstance(user, Phi):
        return user.block.predecessors[slot]
    return user.block
