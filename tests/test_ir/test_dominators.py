"""Tests for dominator computation, queries and frontiers.

Includes a hypothesis property comparing the fast algorithm against a
brute-force dominance definition on random structured CFGs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import CmpOp, Compare, Goto, Graph, If, INT, Return
from repro.ir.dominators import DominatorTree


def linear_graph(n: int) -> Graph:
    g = Graph("lin", [("x", INT)], INT)
    blocks = [g.entry] + [g.new_block() for _ in range(n)]
    for a, b in zip(blocks, blocks[1:]):
        a.set_terminator(Goto(b))
    blocks[-1].set_terminator(Return(g.const_int(0)))
    return g


def random_structured_graph(seed: int, depth: int = 3) -> Graph:
    """Random nest of diamonds and straight-line blocks (reducible)."""
    rng = random.Random(seed)
    g = Graph("rand", [("x", INT)], INT)
    x = g.parameters[0]

    def build(block, remaining):
        """Build a region starting at `block`; return its exit block."""
        if remaining == 0 or rng.random() < 0.3:
            return block
        if rng.random() < 0.5:
            nxt = g.new_block()
            block.set_terminator(Goto(nxt))
            return build(nxt, remaining - 1)
        t, f, m = g.new_block(), g.new_block(), g.new_block()
        cond = block.append(Compare(CmpOp.GT, x, g.const_int(rng.randint(0, 9))))
        block.set_terminator(If(cond, t, f))
        t_exit = build(t, remaining - 1)
        f_exit = build(f, remaining - 1)
        t_exit.set_terminator(Goto(m))
        f_exit.set_terminator(Goto(m))
        return build(m, remaining - 1)

    exit_block = build(g.entry, depth)
    exit_block.set_terminator(Return(x))
    return g


def brute_force_dominates(graph: Graph, a, b) -> bool:
    """a dominates b iff removing a makes b unreachable from entry."""
    if a is b:
        return True
    seen = set()
    stack = [graph.entry]
    while stack:
        block = stack.pop()
        if block is a or block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors)
    return b not in seen


class TestDiamond:
    def test_idoms(self, diamond):
        dom = DominatorTree(diamond["graph"])
        entry = diamond["graph"].entry
        assert dom.immediate_dominator(diamond["true_block"]) is entry
        assert dom.immediate_dominator(diamond["false_block"]) is entry
        assert dom.immediate_dominator(diamond["merge"]) is entry
        assert dom.immediate_dominator(entry) is entry

    def test_dominates_queries(self, diamond):
        dom = DominatorTree(diamond["graph"])
        entry = diamond["graph"].entry
        assert dom.dominates(entry, diamond["merge"])
        assert dom.dominates(entry, entry)
        assert not dom.dominates(diamond["true_block"], diamond["merge"])
        assert not dom.strictly_dominates(entry, entry)
        assert dom.strictly_dominates(entry, diamond["merge"])

    def test_children(self, diamond):
        dom = DominatorTree(diamond["graph"])
        kids = set(dom.dominator_tree_children(diamond["graph"].entry))
        assert kids == {
            diamond["true_block"],
            diamond["false_block"],
            diamond["merge"],
        }

    def test_walk_up(self, diamond):
        dom = DominatorTree(diamond["graph"])
        chain = list(dom.walk_up(diamond["merge"]))
        assert chain == [diamond["merge"], diamond["graph"].entry]

    def test_depth_first_preorder(self, diamond):
        dom = DominatorTree(diamond["graph"])
        order = list(dom.depth_first())
        assert order[0] is diamond["graph"].entry
        assert set(order) == set(diamond["graph"].blocks)

    def test_frontiers(self, diamond):
        dom = DominatorTree(diamond["graph"])
        df = dom.dominance_frontiers()
        assert df[diamond["true_block"]] == {diamond["merge"]}
        assert df[diamond["false_block"]] == {diamond["merge"]}
        assert df[diamond["graph"].entry] == set()

    def test_iterated_frontier(self, diamond):
        dom = DominatorTree(diamond["graph"])
        idf = dom.iterated_dominance_frontier(
            {diamond["true_block"], diamond["false_block"]}
        )
        assert idf == {diamond["merge"]}


class TestLinear:
    def test_chain_idoms(self):
        g = linear_graph(5)
        dom = DominatorTree(g)
        order = dom.rpo
        for prev, cur in zip(order, order[1:]):
            assert dom.immediate_dominator(cur) is prev

    def test_all_frontiers_empty(self):
        dom = DominatorTree(linear_graph(4))
        assert all(not f for f in dom.dominance_frontiers().values())


class TestLoops:
    def test_loop_header_dominates_body(self):
        g = Graph("loop", [("n", INT)], INT)
        header, body, exit_ = g.new_block("h"), g.new_block("b"), g.new_block("e")
        g.entry.set_terminator(Goto(header))
        cond = header.append(Compare(CmpOp.LT, g.const_int(0), g.parameters[0]))
        header.set_terminator(If(cond, body, exit_))
        body.set_terminator(Goto(header))
        exit_.set_terminator(Return(g.const_int(0)))
        dom = DominatorTree(g)
        assert dom.dominates(header, body)
        assert dom.dominates(header, exit_)
        assert not dom.dominates(body, header)
        # header's frontier includes itself (the back edge).
        assert header in dom.dominance_frontiers()[body]


class TestAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force(self, seed):
        g = random_structured_graph(seed, depth=4)
        dom = DominatorTree(g)
        blocks = dom.rpo
        for a in blocks:
            for b in blocks:
                assert dom.dominates(a, b) == brute_force_dominates(g, a, b), (
                    f"disagree on {a.name} dom {b.name} (seed {seed})"
                )
