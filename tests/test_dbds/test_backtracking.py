"""Tests for the Algorithm 1 backtracking baseline."""

import pytest

from repro.dbds.backtracking import BacktrackingDuplication
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import verify_graph


OPPORTUNITY = """
fn f(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 0; }
  return 2 + p;
}
"""

NEUTRAL = """
fn f(x: int, y: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = y; }
  return p + y;
}
"""


class TestBacktracking:
    def test_keeps_beneficial_duplication(self):
        program = compile_source(OPPORTUNITY)
        graph = program.function("f")
        backtracker = BacktrackingDuplication(program)
        result = backtracker.run(graph)
        program.functions["f"] = result
        verify_graph(result)
        assert backtracker.stats.kept >= 1
        assert backtracker.stats.cfg_copies >= 1

    def test_rolls_back_useless_duplication(self):
        from repro.opts.canonicalize import CanonicalizerPhase

        program = compile_source(NEUTRAL)
        graph = program.function("f")
        CanonicalizerPhase().run(graph)  # reach fixpoint first
        before = graph.describe()
        backtracker = BacktrackingDuplication(program)
        result = backtracker.run(graph)
        assert backtracker.stats.rolled_back >= 1
        # Rolled-back graph is behaviourally the original.
        program.functions["f"] = result
        for x, y in ((1, 2), (-1, 5), (0, 0)):
            assert Interpreter(program).run("f", [x, y]).value == (
                (x if x > 0 else y) + y
            )

    def test_semantics_preserved(self):
        program = compile_source(OPPORTUNITY)
        expected = [Interpreter(program).run("f", [k]).value for k in range(-4, 5)]
        graph = program.function("f")
        result = BacktrackingDuplication(program).run(graph)
        program.functions["f"] = result
        actual = [Interpreter(program).run("f", [k]).value for k in range(-4, 5)]
        assert actual == expected

    def test_respects_duplication_cap(self):
        source = "fn f(x: int) -> int {\n  var acc: int = 0;\n"
        for i in range(6):
            source += (
                f"  var p{i}: int;\n"
                f"  if (x > {i}) {{ p{i} = x; }} else {{ p{i} = {i}; }}\n"
                f"  acc = acc + p{i} * 2;\n"
            )
        source += "  return acc;\n}\n"
        program = compile_source(source)
        graph = program.function("f")
        backtracker = BacktrackingDuplication(program, max_duplications=2)
        result = backtracker.run(graph)
        assert backtracker.stats.kept <= 2

    def test_copy_count_tracks_attempts(self):
        program = compile_source(OPPORTUNITY)
        graph = program.function("f")
        backtracker = BacktrackingDuplication(program)
        backtracker.run(graph)
        assert backtracker.stats.cfg_copies == backtracker.stats.attempts

    def test_size_budget_stops_expansion(self):
        program = compile_source(OPPORTUNITY)
        graph = program.function("f")
        backtracker = BacktrackingDuplication(program, size_budget_factor=1.0)
        result = backtracker.run(graph)
        assert backtracker.stats.kept == 0
