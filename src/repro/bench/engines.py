"""Reference-interpreter vs bytecode-VM comparison.

The VM exists to make the evaluation harness fast, so this module
answers the two questions that justify it: *how much faster is it* on
the headline (micro) suite, and *does it compute the same thing*.  Each
workload is compiled once, then the measured argument sets run on both
engines under identical metering; the report carries per-workload wall
times, the speedup ratio, and an outcome-equality bit (value, trap,
globals, steps and cycles all have to agree).

``python -m repro bench --engine-report FILE`` writes :func:`to_json`
output — CI archives it as the ``BENCH_headline.json`` artifact and
fails the build when the median speedup degrades below its floor.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..costmodel.model import cycles_of
from ..interp.interpreter import Interpreter, observable_outcome
from ..obs.tracer import Tracer
from ..pipeline.cache import ArtifactCache, cache_key, make_entry
from ..pipeline.compiler import compile_and_profile
from ..pipeline.config import CompilerConfig, DBDS
from ..vm import translate_program
from ..vm.machine import VirtualMachine
from .workloads.suites import MICRO, SuiteProfile, Workload, generate_suite


@dataclass
class EngineRow:
    """One workload, both engines."""

    workload: str
    ref_seconds: float
    vm_seconds: float
    cycles: float
    steps: int
    outcomes_match: bool

    @property
    def speedup(self) -> float:
        return self.ref_seconds / max(self.vm_seconds, 1e-12)


@dataclass
class EngineComparisonReport:
    """Per-workload engine timings plus the headline median speedup."""

    suite: str
    config: str
    rows: list[EngineRow] = field(default_factory=list)

    @property
    def median_speedup(self) -> float:
        return statistics.median(r.speedup for r in self.rows) if self.rows else 0.0

    @property
    def all_match(self) -> bool:
        return all(r.outcomes_match for r in self.rows)

    def format(self) -> str:
        lines = [f"=== engine comparison: {self.suite} / {self.config} ==="]
        lines.append(
            f"{'benchmark':<14s}{'reference s':>14s}{'vm s':>12s}"
            f"{'speedup':>10s}{'match':>8s}"
        )
        for row in self.rows:
            lines.append(
                f"{row.workload:<14s}{row.ref_seconds:>14.4f}"
                f"{row.vm_seconds:>12.4f}{row.speedup:>9.2f}x"
                f"{'yes' if row.outcomes_match else 'NO':>8s}"
            )
        lines.append(
            f"median speedup: {self.median_speedup:.2f}x, "
            f"outcomes {'all match' if self.all_match else 'DIVERGE'}"
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "suite": self.suite,
            "config": self.config,
            "median_speedup": self.median_speedup,
            "all_match": self.all_match,
            "rows": [
                {
                    "workload": r.workload,
                    "ref_seconds": r.ref_seconds,
                    "vm_seconds": r.vm_seconds,
                    "speedup": r.speedup,
                    "cycles": r.cycles,
                    "steps": r.steps,
                    "outcomes_match": r.outcomes_match,
                }
                for r in self.rows
            ],
        }


def _timed_runs(runner, entry: str, arg_sets) -> tuple[float, list, list]:
    """Wall-time the measured runs; returns (seconds, results, outcomes)."""
    results = []
    outcomes = []
    start = time.perf_counter()
    for args in arg_sets:
        runner.reset()
        results.append(runner.run(entry, list(args)))
    elapsed = time.perf_counter() - start
    # Outcome extraction outside the timed region (deep_value walks heaps).
    for result in results:
        outcomes.append(
            (observable_outcome(result, runner.state), result.steps, result.cycles)
        )
    return elapsed, results, outcomes


def compare_engines_on(
    workload: Workload,
    config: CompilerConfig = DBDS,
    cache: Optional[ArtifactCache] = None,
) -> EngineRow:
    """Compile one workload, run its measured args on both engines."""
    key = None
    cached = cache.get(
        key := cache_key(
            workload.source, config,
            entry=workload.entry, profile_args=workload.profile_args,
        )
    ) if cache is not None else None
    if cached is not None:
        program = cached.program()
        bytecode = cached.bytecode() or translate_program(program)
    else:
        tracer = Tracer() if cache is not None else None
        program, report = compile_and_profile(
            workload.source, workload.entry, workload.profile_args, config,
            tracer=tracer,
        )
        bytecode = translate_program(program)
        if cache is not None:
            cache.put(
                make_entry(
                    key, program, report,
                    events=tracer.events, counters=tracer.counters,
                    bytecode=bytecode,
                )
            )
    reference = Interpreter(
        program, cycle_cost=cycles_of, terminator_cost=cycles_of
    )
    vm = VirtualMachine(bytecode, metered=True)
    ref_seconds, ref_results, ref_outcomes = _timed_runs(
        reference, workload.entry, workload.measure_args
    )
    vm_seconds, vm_results, vm_outcomes = _timed_runs(
        vm, workload.entry, workload.measure_args
    )
    return EngineRow(
        workload=workload.name,
        ref_seconds=ref_seconds,
        vm_seconds=vm_seconds,
        cycles=sum(r.cycles for r in vm_results),
        steps=sum(r.steps for r in vm_results),
        outcomes_match=ref_outcomes == vm_outcomes,
    )


def compare_engines(
    profile: SuiteProfile = MICRO,
    config: CompilerConfig = DBDS,
    seed: int = 0,
    workloads: Optional[list[Workload]] = None,
    cache: Optional[ArtifactCache] = None,
) -> EngineComparisonReport:
    """The headline comparison: every workload of ``profile`` on both
    engines under ``config``."""
    workloads = workloads if workloads is not None else generate_suite(profile, seed)
    report = EngineComparisonReport(suite=profile.suite, config=config.name)
    for workload in workloads:
        report.rows.append(compare_engines_on(workload, config, cache))
    return report
