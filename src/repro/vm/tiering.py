"""Tiered adaptive execution: baseline tier-0 frames, hot-swap tier-up.

The paper assumes a HotSpot-style tiered JIT: code starts life in a
cheap baseline tier that *profiles itself*, and only hot functions pay
for the optimizing tier.  This module closes that loop for the VM.
Every function of a :class:`TieredVirtualMachine` starts in the
**baseline translation** — the flat-tuple stream produced by
``translate_program(program, fuse=False)``: no superinstruction
fusion, no quickening, no fast stream at all — executed by a dispatch
loop that additionally maintains cheap **call / back-edge / branch
counters** plus per-block and per-branch live profile tallies.  The
counters live outside step/cycle accounting: a tier-0 frame reports
steps and cycles bit-identical to the plain machine loops.

When a function's hotness (``calls + backedges``) reaches the
:class:`TieringPolicy` threshold, the :class:`TieringController`
**promotes** it: the live profile is snapshotted and fingerprinted,
a superinstruction plan is mined from it (reusing a fingerprint-keyed
plan from the :class:`~repro.pipeline.cache.ArtifactCache` aux store
when one exists), :func:`~repro.vm.fusion.fuse_function` builds the
optimized fast stream, the stream is optionally verified by the
``bcverify`` rewrite-mode checkers, and ``fn.xcode`` is swapped in
atomically.  Quickening then happens on the first optimized frame
exactly as in the always-fused engine.

Swap-point invariants (see docs/TIERING.md for the state machine):

* the swap is visible **only at call boundaries** — frame dispatch
  reads ``fn.xcode`` once at entry, so a frame that started in tier-0
  finishes in tier-0 even if its function is promoted mid-frame
  (promotion triggered by its own back edges included);
* fused and flat streams are step/cycle identical by construction
  (fusion preserves summed costs and carries step weights), so the
  swap never perturbs accounting — a budget stop lands on the same
  step whether or not a promotion happened first;
* hooked runs (profile collector or observer attached) delegate to
  the base machine loops untouched: hook sequences are bit-identical
  to ``--engine=vm`` and tiering simply pauses for those runs.

Promotion order, the ``tier.promote``/``tier.compile`` event stream
and the promoted stream digests are deterministic functions of
(source, seed, thresholds): counters advance in execution order and
plan mining is tie-broken deterministically.

Telemetry: ``tier.promote`` / ``tier.compile`` tracer events through
the ambient tracer and ``repro_tier_*`` metrics through the ambient
registry (docs/OBSERVABILITY.md lists both schemas).
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..interp.interpreter import BudgetExceeded
from ..ir.ops import EvaluationTrap
from ..obs.metrics import current_registry
from ..obs.tracer import current_tracer
from .bytecode import (
    OP_CALL,
    OP_GOTO,
    OP_IF,
    BytecodeFunction,
    BytecodeProgram,
    disassemble,
)
from .fusion import DEFAULT_TOP_PAIRS, fuse_function, mine_hot_pairs
from .machine import _HANDLERS, VirtualMachine

#: plan-cache payload layout version (part of every aux key)
TIER_PLAN_SCHEMA = 1

#: default hotness threshold (``calls + backedges``) for promotion
DEFAULT_TIER_THRESHOLD = 64

#: default tier-1 invocation count before the optional tier-2
#: whole-program promotion (``--tier2-engine=megaunit``)
DEFAULT_TIER2_THRESHOLD = 4 * DEFAULT_TIER_THRESHOLD

#: sentinel for functions whose tier-2 promotion was declined (no
#: megaunit entry, or insufficient recursion headroom) — they stay in
#: the fused/quickened tier-1 forever
_TIER2_BLOCKED = object()


@dataclass(frozen=True)
class TieringPolicy:
    """The tiering controller's knobs.

    ``threshold`` is the hotness (invocation count plus back-edge
    count) at which a function is promoted; ``top_pairs`` bounds the
    mined superinstruction plan; ``check_bc="rewrite"`` verifies every
    promoted stream with the static bytecode checkers before it can
    reach dispatch (a violation raises
    :class:`~repro.analysis.bcverify.BytecodeVerificationError` and
    the function stays in tier-0).  ``tier2_engine="megaunit"``
    enables the optional second promotion: a function that accumulates
    ``tier2_threshold`` tier-1 invocations dispatches through the
    whole-program megaunit module from then on (docs/TIERING.md).
    """

    threshold: int = DEFAULT_TIER_THRESHOLD
    top_pairs: int = DEFAULT_TOP_PAIRS
    check_bc: str = "off"
    tier2_engine: str = "off"
    tier2_threshold: int = DEFAULT_TIER2_THRESHOLD

    def fingerprint(self) -> str:
        """Deterministic digest of every knob (part of plan-cache keys)."""
        payload = json.dumps(
            {"threshold": self.threshold, "top_pairs": self.top_pairs},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class FunctionTierState:
    """Counters and live profile of one function in tier-0.

    ``blocks`` maps CFG blocks to entry counts and ``branches`` maps
    the pc of each conditional branch to ``[taken, not_taken]`` —
    both keyed by stable per-function identities, so profile
    fingerprints agree across processes.  All counters are maintained
    outside step/cycle accounting.
    """

    __slots__ = (
        "calls", "backedges", "branches_taken", "blocks", "branches",
        "promotable", "tier1_calls",
    )

    def __init__(self) -> None:
        self.calls = 0
        self.backedges = 0
        self.branches_taken = 0
        self.blocks: dict[Any, int] = {}
        self.branches: dict[int, list[int]] = {}
        self.promotable = True
        #: invocations since tier-1 promotion (drives optional tier-2)
        self.tier1_calls = 0

    @property
    def hotness(self) -> int:
        return self.calls + self.backedges


class _LiveVMProfile:
    """Minimal :class:`~repro.vm.profiler.VMProfile` facade over the
    tier-0 counters — exactly the ``_blocks`` attribute that
    :func:`~repro.vm.fusion.mine_hot_pairs` weights pairs by.  Block
    hotness is the live entry count (relative order is all mining
    needs; absolute cycle attribution would require metering the
    baseline tier, defeating its purpose)."""

    def __init__(self, states: dict[str, FunctionTierState]) -> None:
        self._blocks: dict[Any, tuple[str, int, float]] = {}
        for name, state in states.items():
            for block, count in state.blocks.items():
                self._blocks[block] = (name, count, float(count))


class TieringController:
    """Detects hotness, recompiles, and hot-swaps — the tier-up brain.

    One controller serves one :class:`TieredVirtualMachine`; its
    ``promotions`` list records every tier-up in execution order (the
    determinism tests compare it across fresh processes).
    """

    def __init__(
        self,
        program: Any,
        bytecode: BytecodeProgram,
        policy: TieringPolicy,
        plan_cache: Optional[Any] = None,
    ) -> None:
        self.program = program
        self.bytecode = bytecode
        self.policy = policy
        self.plan_cache = plan_cache
        self.states: dict[str, FunctionTierState] = {}
        #: tier-up log in promotion order (deterministic)
        self.promotions: list[dict[str, Any]] = []

    def state_for(self, fn: BytecodeFunction) -> FunctionTierState:
        state = self.states.get(fn.name)
        if state is None:
            state = self.states[fn.name] = FunctionTierState()
            if not fn.blocks:
                # Legacy/partial translation without block spans: no
                # fusion possible, stays in tier-0 forever.
                state.promotable = False
        return state

    # ------------------------------------------------------------------
    # Fingerprints and digests
    # ------------------------------------------------------------------
    def profile_fingerprint(self) -> str:
        """Deterministic digest of the whole live profile snapshot."""
        snapshot = {
            name: {
                "calls": state.calls,
                "backedges": state.backedges,
                "blocks": sorted(
                    (block.name, count)
                    for block, count in state.blocks.items()
                ),
                "branches": sorted(
                    (pc, counts[0], counts[1])
                    for pc, counts in state.branches.items()
                ),
            }
            for name, state in sorted(self.states.items())
        }
        payload = json.dumps(snapshot, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @staticmethod
    def stream_digest(fn: BytecodeFunction) -> str:
        """Digest of a function's current executable stream (the fast
        stream once promoted, the baseline stream before).

        Quickened guard instructions embed IR node objects whose
        default reprs carry ``id()`` addresses; those are scrubbed so
        the digest is a pure function of the stream's structure and
        compares equal across processes.
        """
        text = disassemble(
            fn, stream="xcode" if fn.xcode is not None else "code"
        )
        text = re.sub(r" object at 0x[0-9a-f]+", "", text)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _plan_key(self, fn: BytecodeFunction, profile_fp: str) -> str:
        payload = json.dumps(
            {
                "schema": TIER_PLAN_SCHEMA,
                "function": fn.name,
                "baseline": self.stream_digest(fn),
                "profile": profile_fp,
                "policy": self.policy.fingerprint(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    def promote(
        self, fn: BytecodeFunction, state: FunctionTierState, trigger: str
    ) -> None:
        """Recompile ``fn`` from the live profile and swap its stream in.

        ``trigger`` is ``"entry"`` (threshold crossed at a call
        boundary: the promoting call itself runs optimized) or
        ``"backedge"`` (crossed inside an active frame: that frame
        finishes in tier-0, the swap takes effect at the next call).
        """
        if not state.promotable or fn.xcode is not None:
            return
        tracer = current_tracer()
        registry = current_registry()
        start = time.perf_counter()
        profile_fp = self.profile_fingerprint()
        plan, cached = self._plan_for(fn, profile_fp)
        fused = fuse_function(fn, plan)
        if self.policy.check_bc == "rewrite":
            try:
                self._verify_promoted(fn)
            except Exception:
                # Never swap in a stream that failed verification.
                fn.xcode = None
                fn.quickened = True
                raise
        state.promotable = False
        seconds = time.perf_counter() - start
        digest = self.stream_digest(fn)
        record = {
            "function": fn.name,
            "trigger": trigger,
            "calls": state.calls,
            "backedges": state.backedges,
            "hotness": state.hotness,
            "threshold": self.policy.threshold,
            "profile": profile_fp,
            "plan": [list(pair) for pair in plan],
            "fused_sites": fused,
            "digest": digest,
            "plan_cached": cached,
        }
        self.promotions.append(record)
        tracer.count("tier.promote")
        tracer.event(
            "tier.compile",
            function=fn.name,
            seconds=seconds,
            fused_sites=fused,
            plan_size=len(plan),
            cached=cached,
            profile=profile_fp,
        )
        tracer.event(
            "tier.promote",
            function=fn.name,
            trigger=trigger,
            calls=state.calls,
            backedges=state.backedges,
            hotness=state.hotness,
            threshold=self.policy.threshold,
            digest=digest,
        )
        if registry.enabled:
            registry.inc(
                "repro_tier_promotions_total",
                function=fn.name,
                trigger=trigger,
            )
            registry.observe("repro_tier_compile_seconds", seconds)

    def _plan_for(
        self, fn: BytecodeFunction, profile_fp: str
    ) -> tuple[tuple, bool]:
        """The superinstruction plan for this promotion, reusing a
        profile-fingerprint-keyed cached plan when one exists."""
        registry = current_registry()
        if self.plan_cache is None:
            return self._mine(), False
        key = self._plan_key(fn, profile_fp)
        payload = self.plan_cache.get_aux(key)
        if (
            isinstance(payload, dict)
            and payload.get("schema") == TIER_PLAN_SCHEMA
        ):
            if registry.enabled:
                registry.inc("repro_tier_plan_cache_total", result="hit")
            return tuple(tuple(pair) for pair in payload["plan"]), True
        plan = self._mine()
        self.plan_cache.put_aux(
            key,
            {
                "schema": TIER_PLAN_SCHEMA,
                "function": fn.name,
                "plan": [list(pair) for pair in plan],
            },
        )
        if registry.enabled:
            registry.inc("repro_tier_plan_cache_total", result="miss")
        return plan, False

    def _mine(self) -> tuple:
        return mine_hot_pairs(
            self.program,
            self.bytecode,
            vmprofile=_LiveVMProfile(self.states),
            top=self.policy.top_pairs,
        )

    def _verify_promoted(self, fn: BytecodeFunction) -> None:
        """Run the rewrite-mode bytecode checkers on the promoted stream
        (and on a quickened clone of it, mirroring what the first fast
        frame will execute); raise on any violation."""
        from ..analysis.bcverify import (
            BcVerifyReport,
            BytecodeVerificationError,
            _quickened_clone,
            run_bc_checkers,
        )

        result = BcVerifyReport()
        result.reports.append(
            run_bc_checkers(fn, self.bytecode, label=f"{fn.name} [tier-1]")
        )
        if fn.xcode is not None and fn.blocks:
            result.reports.append(
                run_bc_checkers(
                    _quickened_clone(fn),
                    self.bytecode,
                    label=f"{fn.name} [tier-1 quickened]",
                    disable=("bc-codegen-lint", "bc-retranslate"),
                )
            )
        if not result.ok:
            raise BytecodeVerificationError(result)

    def report(self) -> dict[str, Any]:
        """Deterministic summary for tests and tooling: promotion order
        and the current stream digest of every function."""
        return {
            "promotions": [dict(p) for p in self.promotions],
            "digests": {
                name: self.stream_digest(fn)
                for name, fn in sorted(self.bytecode.functions.items())
            },
        }


class TieredVirtualMachine(VirtualMachine):
    """A :class:`VirtualMachine` that starts cold and tiers itself up.

    Construct it from the optimized IR ``program``; the baseline
    bytecode is translated here with ``fuse=False`` (a supplied
    ``bytecode`` must itself be an unfused baseline translation —
    cached fused artifacts are never reused directly, because tiering
    must observe every function going hot).  ``reset()`` keeps the
    tiering state: like a long-running VM, hotness and promotions
    survive run-to-run isolation of globals and meters.
    """

    def __init__(
        self,
        program: Any,
        bytecode: Optional[BytecodeProgram] = None,
        max_steps: int = 50_000_000,
        metered: bool = False,
        profile: Optional[Any] = None,
        max_call_depth: int = 200,
        observer: Optional[Any] = None,
        policy: Optional[TieringPolicy] = None,
        plan_cache: Optional[Any] = None,
    ) -> None:
        if bytecode is None:
            from .translate import translate_program

            bytecode = translate_program(program, fuse=False)
        super().__init__(
            bytecode,
            max_steps=max_steps,
            metered=metered,
            profile=profile,
            max_call_depth=max_call_depth,
            observer=observer,
            fused=True,
        )
        self.program = program
        self.policy = policy if policy is not None else TieringPolicy()
        self.controller = TieringController(
            program, bytecode, self.policy, plan_cache=plan_cache
        )
        #: tier-2 state: the shared megaunit module (compiled lazily on
        #: the first tier-2 promotion) and per-function entries —
        #: a generated function, or _TIER2_BLOCKED for declined ones
        self._tier2_module: Optional[Any] = None
        self._tier2_ready = False
        self._tier2_entries: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _run_frame(self, fn: BytecodeFunction, args: list[Any]) -> Any:
        if self.profile is not None or self.observer is not None:
            # Hooked runs: identical hook semantics to the base machine
            # (which itself pins hooked frames to the flat loops).
            # Tiering pauses — no counters, no promotions — so hook
            # sequences can never diverge from --engine=vm.
            return VirtualMachine._run_frame(self, fn, args)
        if fn.xcode is not None:
            if self.policy.tier2_engine == "megaunit":
                return self._run_frame_tier1(fn, args)
            return self._run_frame_fast(fn, args)
        controller = self.controller
        state = controller.states.get(fn.name)
        if state is None:
            state = controller.state_for(fn)
        state.calls += 1
        if (
            state.promotable
            and state.calls + state.backedges >= self.policy.threshold
        ):
            # Threshold crossed at a call boundary: promote now and run
            # this very frame in the optimized tier.
            controller.promote(fn, state, "entry")
            return self._run_frame_fast(fn, args)
        return self._run_frame_tier0(fn, state, args)

    # ------------------------------------------------------------------
    # Optional tier-2: whole-program megaunit promotion.  A tier-1
    # function that accumulates ``tier2_threshold`` invocations swaps
    # its dispatch to the shared megaunit module — registers in Python
    # locals, direct calls, no per-frame allocation.  Step/cycle
    # accounting is unchanged by construction (megaunit compiles the
    # same baseline streams), so the swap is invisible to outcomes.
    # ------------------------------------------------------------------
    def _run_frame_tier1(self, fn: BytecodeFunction, args: list[Any]) -> Any:
        entry = self._tier2_entries.get(fn.name)
        if entry is None:
            state = self.controller.state_for(fn)
            state.tier1_calls += 1
            if state.tier1_calls < self.policy.tier2_threshold:
                return self._run_frame_fast(fn, args)
            entry = self._promote_tier2(fn, state)
        if entry is _TIER2_BLOCKED:
            return self._run_frame_fast(fn, args)
        state = self.state
        m = [state.steps, state.cycles]
        # Raising paths flush state at their raise site (megaunit's
        # meter protocol); only the normal return path flushes here.
        value = entry(self, m, *args, self._call_depth)
        state.steps = m[0]
        state.cycles = m[1]
        return value

    def _promote_tier2(self, fn: BytecodeFunction, state: Any) -> Any:
        """Compile (once) the shared megaunit module and activate this
        function's entry, with the same paired ``tier.promote`` /
        ``tier.compile`` telemetry as a tier-1 promotion."""
        from .megaunit import compile_module, stack_headroom_ok

        tracer = current_tracer()
        registry = current_registry()
        start = time.perf_counter()
        module_was_ready = self._tier2_ready
        if not self._tier2_ready:
            self._tier2_ready = True
            self._tier2_module = compile_module(
                self.bytecode, self.metered, self.max_steps,
                self.max_call_depth,
                codegen_cache=self.controller.plan_cache,
            )
        module = self._tier2_module
        entry = module.entries.get(fn.name) if module is not None else None
        if entry is None:
            entry = _TIER2_BLOCKED
            reason = "no-block-spans"
        elif not stack_headroom_ok(self._call_depth, self.max_call_depth):
            entry = _TIER2_BLOCKED
            reason = "recursion-headroom"
        else:
            reason = None
        self._tier2_entries[fn.name] = entry
        if reason is not None:
            tracer.event(
                "vm.fallback", engine="megaunit", fallback="tier1",
                reason=reason,
            )
            if registry.enabled:
                registry.inc(
                    "repro_vm_fallback_total", engine="megaunit",
                    reason=reason,
                )
            return entry
        seconds = time.perf_counter() - start
        profile_fp = self.controller.profile_fingerprint()
        tracer.count("tier.promote")
        tracer.event(
            "tier.compile",
            function=fn.name,
            seconds=seconds,
            fused_sites=0,
            plan_size=0,
            cached=module_was_ready,
            profile=profile_fp,
        )
        tracer.event(
            "tier.promote",
            function=fn.name,
            trigger="tier2",
            calls=state.calls,
            backedges=state.backedges,
            hotness=state.tier1_calls,
            threshold=self.policy.tier2_threshold,
            digest=self.controller.stream_digest(fn),
        )
        if registry.enabled:
            registry.inc(
                "repro_tier_promotions_total",
                function=fn.name,
                trigger="tier2",
            )
            registry.observe("repro_tier_compile_seconds", seconds)
        return entry

    # ------------------------------------------------------------------
    # The baseline (tier-0) frame loop: the machine's flat-tuple loop
    # plus hotness counters and live profile tallies.  Branches are
    # dispatched inline (counting needs the edge), everything else
    # through the base handler table.  Step/cycle accounting is
    # line-identical to VirtualMachine._run_frame — the counters cost
    # zero steps and zero cycles by construction.
    # ------------------------------------------------------------------
    def _run_frame_tier0(
        self, fn: BytecodeFunction, state_rec: FunctionTierState, args: list[Any]
    ) -> Any:
        if self._call_depth > self.max_call_depth:
            raise EvaluationTrap("stack overflow")
        regs = fn.template[:]
        if args:
            regs[: len(args)] = args
        state = self.state
        max_steps = self.max_steps
        metered = self.metered
        handlers = _HANDLERS
        code = fn.code
        threshold = self.policy.threshold
        blocks = state_rec.blocks
        branches = state_rec.branches
        blocks[fn.entry_block] = blocks.get(fn.entry_block, 0) + 1
        # Promotability is read through state_rec (not a frame-local):
        # with recursion, several tier-0 frames of one function are
        # live at once, and a promotion from any of them must stop the
        # others from promoting again.
        steps = state.steps
        cycles = state.cycles
        pc = 0
        try:
            if metered:
                while True:
                    ins = code[pc]
                    steps += 1
                    if steps > max_steps:
                        state.steps = steps
                        state.cycles = cycles
                        raise BudgetExceeded(
                            f"exceeded {max_steps} interpreter steps"
                        )
                    op = ins[0]
                    if op == OP_IF:
                        if regs[ins[4]]:
                            edge = ins[5]
                            state_rec.branches_taken += 1
                            slot = 0
                        else:
                            edge = ins[6]
                            slot = 1
                        counts = branches.get(pc)
                        if counts is None:
                            counts = branches[pc] = [0, 0]
                        counts[slot] += 1
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        npc = edge[0]
                        blocks[edge[3]] = blocks.get(edge[3], 0) + 1
                        if npc <= pc:
                            state_rec.backedges += 1
                            if (
                                state_rec.promotable
                                and state_rec.calls + state_rec.backedges
                                >= threshold
                            ):
                                self.controller.promote(
                                    fn, state_rec, "backedge"
                                )
                        pc = npc
                    elif op == OP_GOTO:
                        edge = ins[4]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        npc = edge[0]
                        blocks[edge[3]] = blocks.get(edge[3], 0) + 1
                        if npc <= pc:
                            state_rec.backedges += 1
                            if (
                                state_rec.promotable
                                and state_rec.calls + state_rec.backedges
                                >= threshold
                            ):
                                self.controller.promote(
                                    fn, state_rec, "backedge"
                                )
                        pc = npc
                    elif op != OP_CALL:
                        pc = handlers[op](self, ins, regs, pc)
                        if pc < 0:
                            state.steps = steps
                            state.cycles = cycles + ins[1]
                            return self._retval
                    else:
                        state.steps = steps
                        state.cycles = cycles
                        regs[ins[3]] = self._call(
                            ins[4], [regs[r] for r in ins[5]]
                        )
                        steps = state.steps
                        cycles = state.cycles
                        pc += 1
                    cycles += ins[1]
            else:
                while True:
                    ins = code[pc]
                    steps += 1
                    if steps > max_steps:
                        state.steps = steps
                        state.cycles = cycles
                        raise BudgetExceeded(
                            f"exceeded {max_steps} interpreter steps"
                        )
                    op = ins[0]
                    if op == OP_IF:
                        if regs[ins[4]]:
                            edge = ins[5]
                            state_rec.branches_taken += 1
                            slot = 0
                        else:
                            edge = ins[6]
                            slot = 1
                        counts = branches.get(pc)
                        if counts is None:
                            counts = branches[pc] = [0, 0]
                        counts[slot] += 1
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        npc = edge[0]
                        blocks[edge[3]] = blocks.get(edge[3], 0) + 1
                        if npc <= pc:
                            state_rec.backedges += 1
                            if (
                                state_rec.promotable
                                and state_rec.calls + state_rec.backedges
                                >= threshold
                            ):
                                self.controller.promote(
                                    fn, state_rec, "backedge"
                                )
                        pc = npc
                    elif op == OP_GOTO:
                        edge = ins[4]
                        if edge[1]:
                            for d, s in edge[1]:
                                regs[d] = regs[s]
                        npc = edge[0]
                        blocks[edge[3]] = blocks.get(edge[3], 0) + 1
                        if npc <= pc:
                            state_rec.backedges += 1
                            if (
                                state_rec.promotable
                                and state_rec.calls + state_rec.backedges
                                >= threshold
                            ):
                                self.controller.promote(
                                    fn, state_rec, "backedge"
                                )
                        pc = npc
                    elif op != OP_CALL:
                        pc = handlers[op](self, ins, regs, pc)
                        if pc < 0:
                            state.steps = steps
                            state.cycles = cycles
                            return self._retval
                    else:
                        state.steps = steps
                        state.cycles = cycles
                        regs[ins[3]] = self._call(
                            ins[4], [regs[r] for r in ins[5]]
                        )
                        steps = state.steps
                        cycles = state.cycles
                        pc += 1
        except EvaluationTrap:
            # A trap from a nested call already flushed fresher values.
            if steps > state.steps:
                state.steps = steps
                state.cycles = cycles
            raise


__all__ = [
    "DEFAULT_TIER2_THRESHOLD",
    "DEFAULT_TIER_THRESHOLD",
    "TIER_PLAN_SCHEMA",
    "FunctionTierState",
    "TieredVirtualMachine",
    "TieringController",
    "TieringPolicy",
]
