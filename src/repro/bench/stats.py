"""Statistics helpers for the evaluation harness."""

from __future__ import annotations

import math
from typing import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper reports geomeans)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_change(ratio: float) -> float:
    """Normalized-ratio → percent change (1.05 → +5.0)."""
    return (ratio - 1.0) * 100.0


def speedup_percent(baseline_cycles: float, config_cycles: float) -> float:
    """Peak-performance improvement in percent (higher is better)."""
    if config_cycles == 0:
        return 0.0
    return (baseline_cycles / config_cycles - 1.0) * 100.0


def format_percent(value: float) -> str:
    return f"{value:+.2f}%"
