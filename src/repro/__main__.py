"""Command-line interface: compile and run MiniLang programs.

Usage::

    python -m repro run program.mini --entry main --args 10 --config dbds
    python -m repro compile program.mini --config dupalot --dump
    python -m repro bench --suite micro

``run`` JIT-compiles (profile run + optimization) and executes, printing
the result and the simulated cycle count.  ``compile`` prints per-unit
metrics and optionally the optimized IR.  ``bench`` regenerates one of
the paper's evaluation figures.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .bench.harness import format_suite_report, run_suite
from .bench.workloads.suites import ALL_SUITES
from .frontend.irbuilder import compile_source
from .interp.interpreter import Interpreter
from .pipeline.compiler import Compiler, compile_and_profile, measure_performance
from .pipeline.config import CONFIGURATIONS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", type=pathlib.Path, help="MiniLang source file")
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--config",
        default="dbds",
        choices=sorted(CONFIGURATIONS),
        help="compiler configuration",
    )
    parser.add_argument(
        "--args",
        nargs="*",
        type=int,
        default=[10],
        help="integer arguments for the entry function",
    )


def cmd_run(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    program, report = compile_and_profile(
        source, args.entry, [args.args], config
    )
    cycles, results = measure_performance(program, args.entry, [args.args])
    result = results[0]
    if result.trapped:
        print(f"trap: {result.trap}", file=sys.stderr)
        return 1
    print(f"result          : {result.value}")
    print(f"simulated cycles: {cycles:.0f}")
    print(f"compile time    : {report.total_compile_time * 1e3:.2f} ms")
    print(f"code size       : {report.total_code_size:.0f}")
    print(f"duplications    : {report.total_duplications}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    program = compile_source(source)
    report = Compiler(config).compile_program(program)
    print(f"{'function':<20s}{'size':>8s}{'ctime ms':>10s}{'dups':>6s}")
    for unit in report.units:
        print(
            f"{unit.function:<20s}{unit.code_size:>8.0f}"
            f"{unit.compile_time * 1e3:>10.2f}{unit.duplications:>6d}"
        )
    if args.dump:
        print()
        print(program.describe())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    profile = ALL_SUITES[args.suite]
    report = run_suite(profile, seed=args.seed)
    print(format_suite_report(report))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from .bench.report import render_markdown, run_evaluation

    result = run_evaluation(suites=args.suites, seed=args.seed)
    markdown = render_markdown(result)
    args.out.write_text(markdown)
    headline = result.headline()
    print(f"report written to {args.out}")
    print(
        f"mean speedup {headline['mean_speedup']:+.2f}%  "
        f"(max {headline['max_speedup']:+.2f}% on "
        f"{headline['max_speedup_benchmark']})"
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .dbds.explain import explain_graph
    from .interp.profile import apply_profile, profile_program
    from .opts.canonicalize import CanonicalizerPhase
    from .opts.inline import InliningPhase

    program = compile_source(args.source.read_text())
    if args.profile_args is not None:
        collector = profile_program(program, args.entry, [args.profile_args])
        apply_profile(program, collector)
    names = [args.function] if args.function else list(program.functions)
    for name in names:
        graph = program.function(name)
        InliningPhase(program).run(graph)
        CanonicalizerPhase().run(graph)
        print(explain_graph(graph, program))
        print()
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from .bench.workloads.suites import generate_workload

    profile = ALL_SUITES[args.suite]
    name = args.name or profile.benchmark_names[0]
    if name not in profile.benchmark_names:
        print(
            f"unknown benchmark {name!r}; choose from "
            f"{', '.join(profile.benchmark_names)}",
            file=sys.stderr,
        )
        return 1
    workload = generate_workload(profile, name, args.seed)
    print(workload.source)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DBDS reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="JIT-compile and execute")
    _add_common(run_parser)
    run_parser.set_defaults(func=cmd_run)

    compile_parser = sub.add_parser("compile", help="compile and show metrics")
    _add_common(compile_parser)
    compile_parser.add_argument(
        "--dump", action="store_true", help="print the optimized IR"
    )
    compile_parser.set_defaults(func=cmd_compile)

    bench_parser = sub.add_parser("bench", help="run one evaluation suite")
    bench_parser.add_argument("--suite", default="micro", choices=sorted(ALL_SUITES))
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.set_defaults(func=cmd_bench)

    evaluate_parser = sub.add_parser(
        "evaluate", help="run the full evaluation, write a markdown report"
    )
    evaluate_parser.add_argument(
        "--suites",
        nargs="*",
        choices=sorted(ALL_SUITES),
        default=None,
        help="suites to run (default: all four)",
    )
    evaluate_parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("evaluation_report.md")
    )
    evaluate_parser.add_argument("--seed", type=int, default=0)
    evaluate_parser.set_defaults(func=cmd_evaluate)

    explain_parser = sub.add_parser(
        "explain", help="report every duplication candidate and decision"
    )
    explain_parser.add_argument("source", type=pathlib.Path)
    explain_parser.add_argument(
        "--function", default=None, help="only this function (default: all)"
    )
    explain_parser.add_argument(
        "--profile-args",
        nargs="*",
        type=int,
        default=None,
        help="profile with these entry args before explaining",
    )
    explain_parser.add_argument("--entry", default="main")
    explain_parser.set_defaults(func=cmd_explain)

    workload_parser = sub.add_parser(
        "workload", help="print a generated benchmark's MiniLang source"
    )
    workload_parser.add_argument("--suite", default="micro", choices=sorted(ALL_SUITES))
    workload_parser.add_argument("--name", default=None, help="benchmark name")
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.set_defaults(func=cmd_workload)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
