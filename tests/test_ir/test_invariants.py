"""Cross-cutting IR invariant properties."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend.irbuilder import compile_source
from repro.ir import ArithOp, BinOp, verify_graph
from repro.ir.cfgutils import canonical_cfg_cleanup, reverse_post_order
from repro.ir.verifier import VerificationError
from tests.generators import random_program


class TestUseCountIntegrity:
    def test_corrupted_use_count_detected(self, diamond):
        add = diamond["add"]
        operand = add.inputs[1]
        # Sabotage the bookkeeping directly.
        operand.uses[add] = 5
        with pytest.raises(VerificationError, match="bookkeeping"):
            verify_graph(diamond["graph"])

    def test_dangling_use_detected(self, diamond):
        g = diamond["graph"]
        x = diamond["x"]
        # An instruction that was never inserted into a block but uses x
        # is invisible; but an inserted instruction whose operand's use
        # map was cleared is caught.
        add = diamond["add"]
        phi = diamond["phi"]
        phi.uses.clear()
        with pytest.raises(VerificationError, match="bookkeeping"):
            verify_graph(g)


class TestCleanupIdempotence:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_canonical_cleanup_idempotent(self, seed):
        program = compile_source(random_program(seed))
        for graph in program.functions.values():
            canonical_cfg_cleanup(graph)
            verify_graph(graph)
            blocks_after_first = len(graph.blocks)
            instructions_after_first = graph.instruction_count()
            canonical_cfg_cleanup(graph)
            assert len(graph.blocks) == blocks_after_first
            assert graph.instruction_count() == instructions_after_first

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_rpo_covers_exactly_reachable_blocks(self, seed):
        program = compile_source(random_program(seed))
        for graph in program.functions.values():
            order = reverse_post_order(graph)
            assert len(order) == len(set(order))
            assert set(order) <= set(graph.blocks)
            assert order[0] is graph.entry


class TestPhaseIdempotence:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_canonicalizer_fixpoint_is_stable(self, seed):
        from repro.opts.canonicalize import CanonicalizerPhase

        program = compile_source(random_program(seed))
        for graph in program.functions.values():
            CanonicalizerPhase().run(graph)
            # A second run finds nothing left to do.
            assert CanonicalizerPhase().run(graph) == 0

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_gvn_fixpoint_is_stable(self, seed):
        from repro.opts.canonicalize import CanonicalizerPhase
        from repro.opts.gvn import GlobalValueNumberingPhase

        program = compile_source(random_program(seed))
        for graph in program.functions.values():
            CanonicalizerPhase().run(graph)
            GlobalValueNumberingPhase().run(graph)
            assert GlobalValueNumberingPhase().run(graph) == 0
