"""Tests for the stamp lattice, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.stamps import (
    ANY_BOOL,
    ANY_INT,
    BoolStamp,
    FALSE_STAMP,
    INT_MAX,
    INT_MIN,
    IntStamp,
    ObjectStamp,
    TRUE_STAMP,
    VOID_STAMP,
    join,
    meet,
    stamp_for_constant,
    stamp_for_type,
)
from repro.ir.types import BOOL, INT, ArrayType, NullType, ObjectType, VOID

ints = st.integers(min_value=INT_MIN, max_value=INT_MAX)


@st.composite
def int_stamps(draw):
    a = draw(ints)
    b = draw(ints)
    return IntStamp(min(a, b), max(a, b))


class TestIntStamp:
    def test_constant_detection(self):
        assert IntStamp(5, 5).as_constant() == (5,)
        assert IntStamp(4, 5).as_constant() is None

    def test_empty(self):
        assert IntStamp(1, 0).is_empty()
        assert not ANY_INT.is_empty()

    def test_contains(self):
        s = IntStamp(-2, 7)
        assert s.contains(-2) and s.contains(7) and s.contains(0)
        assert not s.contains(8)

    @given(int_stamps(), int_stamps())
    def test_meet_is_upper_bound(self, a, b):
        m = a.meet(b)
        assert m.lo <= a.lo and m.hi >= a.hi
        assert m.lo <= b.lo and m.hi >= b.hi

    @given(int_stamps(), int_stamps())
    def test_join_is_intersection(self, a, b):
        j = a.join(b)
        if not j.is_empty():
            assert j.lo >= a.lo and j.hi <= a.hi
            assert j.lo >= b.lo and j.hi <= b.hi

    @given(int_stamps())
    def test_meet_join_idempotent(self, a):
        assert a.meet(a) == a
        assert a.join(a) == a

    @given(int_stamps(), int_stamps())
    def test_meet_commutative(self, a, b):
        assert a.meet(b) == b.meet(a)
        assert a.join(b) == b.join(a)

    @given(int_stamps(), int_stamps(), ints)
    def test_meet_soundness(self, a, b, v):
        # Any value in either input stamp is in the meet.
        if a.contains(v) or b.contains(v):
            assert a.meet(b).contains(v)

    @given(int_stamps(), int_stamps(), ints)
    def test_join_soundness(self, a, b, v):
        # Any value in both inputs is in the join.
        if a.contains(v) and b.contains(v):
            assert a.join(b).contains(v)

    def test_repr(self):
        assert repr(IntStamp(3, 3)) == "i64[3]"
        assert repr(ANY_INT) == "i64"
        assert "empty" in repr(IntStamp(2, 1))


class TestBoolStamp:
    def test_constants(self):
        assert TRUE_STAMP.as_constant() == (True,)
        assert FALSE_STAMP.as_constant() == (False,)
        assert ANY_BOOL.as_constant() is None

    def test_join(self):
        assert TRUE_STAMP.join(ANY_BOOL) == TRUE_STAMP
        assert TRUE_STAMP.join(FALSE_STAMP).is_empty()

    def test_meet(self):
        assert TRUE_STAMP.meet(FALSE_STAMP) == ANY_BOOL
        assert TRUE_STAMP.meet(TRUE_STAMP) == TRUE_STAMP


class TestObjectStamp:
    def test_nullness(self):
        ty = ObjectType("A")
        assert ObjectStamp(ty, always_null=True).as_constant() == (None,)
        assert ObjectStamp(ty, non_null=True).as_constant() is None
        assert ObjectStamp(ty, non_null=True, always_null=True).is_empty()

    def test_join_accumulates_facts(self):
        ty = ObjectType("A")
        s = ObjectStamp(ty).join(ObjectStamp(ty, non_null=True))
        assert s.non_null

    def test_meet_loses_facts(self):
        ty = ObjectType("A")
        s = ObjectStamp(ty, non_null=True).meet(ObjectStamp(ty, always_null=True))
        assert not s.non_null and not s.always_null


class TestConstructors:
    def test_stamp_for_type(self):
        assert stamp_for_type(INT) == ANY_INT
        assert stamp_for_type(BOOL) == ANY_BOOL
        assert stamp_for_type(VOID) == VOID_STAMP
        s = stamp_for_type(ObjectType("A"))
        assert isinstance(s, ObjectStamp) and not s.non_null
        null_stamp = stamp_for_type(NullType())
        assert null_stamp.always_null
        arr = stamp_for_type(ArrayType(INT))
        assert isinstance(arr, ObjectStamp)

    def test_stamp_for_constant(self):
        assert stamp_for_constant(7, INT) == IntStamp(7, 7)
        assert stamp_for_constant(True, BOOL) == TRUE_STAMP
        assert stamp_for_constant(None, ObjectType("A")).always_null

    def test_mismatched_kinds_raise(self):
        with pytest.raises(TypeError):
            meet(ANY_INT, ANY_BOOL)
        with pytest.raises(TypeError):
            join(ANY_INT, TRUE_STAMP)

    def test_module_level_meet_join_dispatch(self):
        assert meet(IntStamp(0, 1), IntStamp(5, 6)) == IntStamp(0, 6)
        assert join(IntStamp(0, 10), IntStamp(5, 20)) == IntStamp(5, 10)
        assert meet(VOID_STAMP, VOID_STAMP) == VOID_STAMP
        assert join(TRUE_STAMP, ANY_BOOL) == TRUE_STAMP
