"""Tests for the reference interpreter."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import (
    BudgetExceeded,
    HeapArray,
    HeapObject,
    Interpreter,
    deep_value,
    observable_outcome,
)
from repro.costmodel.model import cycles_of


def run(source: str, entry: str, args: list):
    program = compile_source(source)
    interp = Interpreter(program)
    return interp.run(entry, args), interp


class TestArithmetic:
    def test_basic(self):
        result, _ = run("fn f(a: int, b: int) -> int { return a * b + 1; }", "f", [6, 7])
        assert result.value == 43

    def test_division_truncates(self):
        result, _ = run("fn f() -> int { return -7 / 2; }", "f", [])
        assert result.value == -3

    def test_division_by_zero_traps(self):
        result, _ = run("fn f(x: int) -> int { return 10 / x; }", "f", [0])
        assert result.trapped
        assert "zero" in result.trap

    def test_wrapping(self):
        result, _ = run(
            "fn f() -> int { return 9223372036854775807 + 1; }", "f", []
        )
        assert result.value == -(2**63)

    def test_shifts(self):
        result, _ = run("fn f(x: int) -> int { return x << 3 >> 1; }", "f", [5])
        assert result.value == 20

    def test_comparisons_and_booleans(self):
        src = "fn f(a: int, b: int) -> bool { return a < b && !(a == b); }"
        assert run(src, "f", [1, 2])[0].value is True
        assert run(src, "f", [2, 1])[0].value is False

    def test_short_circuit_skips_rhs(self):
        # RHS would trap; && must skip it when LHS is false.
        src = "fn f(x: int) -> bool { return x != 0 && 10 / x > 1; }"
        result, _ = run(src, "f", [0])
        assert not result.trapped
        assert result.value is False


class TestControlFlow:
    def test_if_else(self):
        src = "fn f(x: int) -> int { if (x > 0) { return 1; } else { return 2; } }"
        assert run(src, "f", [5])[0].value == 1
        assert run(src, "f", [-5])[0].value == 2

    def test_while_loop(self):
        src = """
fn f(n: int) -> int {
  var s: int = 0; var i: int = 0;
  while (i < n) { s = s + i; i = i + 1; }
  return s;
}
"""
        assert run(src, "f", [10])[0].value == 45
        assert run(src, "f", [0])[0].value == 0

    def test_nested_loops(self):
        src = """
fn f(n: int) -> int {
  var t: int = 0; var i: int = 0;
  while (i < n) {
    var j: int = 0;
    while (j < n) { t = t + 1; j = j + 1; }
    i = i + 1;
  }
  return t;
}
"""
        assert run(src, "f", [7])[0].value == 49

    def test_step_budget(self):
        program = compile_source(
            "fn f() -> int { var i: int = 0; while (i >= 0) { i = 0; } return i; }"
        )
        interp = Interpreter(program, max_steps=1000)
        with pytest.raises(BudgetExceeded):
            interp.run("f", [])


class TestObjects:
    SRC = """
class Point { x: int; y: int; }
fn make(a: int, b: int) -> Point { return new Point { x = a, y = b }; }
fn dist2(p: Point) -> int { return p.x * p.x + p.y * p.y; }
fn f(a: int, b: int) -> int { return dist2(make(a, b)); }
fn default_fields() -> int { var p: Point = new Point; return p.x + p.y; }
fn null_deref() -> int { var p: Point = null; return p.x; }
fn store(p: Point, v: int) { p.x = v; }
"""

    def test_object_round_trip(self):
        assert run(self.SRC, "f", [3, 4])[0].value == 25

    def test_fields_default_initialized(self):
        assert run(self.SRC, "default_fields", [])[0].value == 0

    def test_null_dereference_traps(self):
        result, _ = run(self.SRC, "null_deref", [])
        assert result.trapped and "null" in result.trap

    def test_mutation_visible_to_caller(self):
        program = compile_source(self.SRC)
        interp = Interpreter(program)
        obj = HeapObject("Point", {"x": 1, "y": 2})
        interp.run("store", [obj, 42])
        assert obj.fields["x"] == 42


class TestArrays:
    SRC = """
fn sum(n: int) -> int {
  var xs: int[] = new int[n];
  var i: int = 0;
  while (i < len(xs)) { xs[i] = i * i; i = i + 1; }
  var s: int = 0; i = 0;
  while (i < n) { s = s + xs[i]; i = i + 1; }
  return s;
}
fn oob(n: int) -> int { var xs: int[] = new int[2]; return xs[n]; }
fn neg() -> int { var xs: int[] = new int[0 - 1]; return 0; }
"""

    def test_fill_and_sum(self):
        assert run(self.SRC, "sum", [5])[0].value == 30

    def test_out_of_bounds_traps(self):
        assert run(self.SRC, "oob", [5])[0].trapped
        assert run(self.SRC, "oob", [-1])[0].trapped
        assert not run(self.SRC, "oob", [1])[0].trapped

    def test_negative_length_traps(self):
        result, _ = run(self.SRC, "neg", [])
        assert result.trapped and "negative" in result.trap


class TestGlobals:
    SRC = """
global counter: int;
fn bump() -> int { counter = counter + 1; return counter; }
"""

    def test_globals_persist_across_calls(self):
        program = compile_source(self.SRC)
        interp = Interpreter(program)
        assert interp.run("bump", []).value == 1
        assert interp.run("bump", []).value == 2

    def test_reset_clears_globals(self):
        program = compile_source(self.SRC)
        interp = Interpreter(program)
        interp.run("bump", [])
        interp.reset()
        assert interp.run("bump", []).value == 1


class TestRecursion:
    def test_factorial(self):
        src = """
fn fact(n: int) -> int {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
"""
        assert run(src, "fact", [10])[0].value == 3628800

    def test_mutual_recursion(self):
        src = """
fn is_even(n: int) -> bool { if (n == 0) { return true; } return is_odd(n - 1); }
fn is_odd(n: int) -> bool { if (n == 0) { return false; } return is_even(n - 1); }
"""
        assert run(src, "is_even", [10])[0].value is True
        assert run(src, "is_even", [7])[0].value is False


class TestCycleCharging:
    def test_cycles_accumulate(self):
        program = compile_source("fn f(a: int, b: int) -> int { return a + b; }")
        interp = Interpreter(program, cycle_cost=cycles_of, terminator_cost=cycles_of)
        result = interp.run("f", [1, 2])
        # Add (1 cycle) + Return (2 cycles)
        assert result.cycles == pytest.approx(3.0)

    def test_no_charging_by_default(self):
        result, _ = run("fn f() -> int { return 1 + 2; }", "f", [])
        assert result.cycles == 0.0


class TestDeepValue:
    def test_scalars_pass_through(self):
        assert deep_value(5) == 5
        assert deep_value(None) is None
        assert deep_value(True) is True

    def test_objects_structural(self):
        a = HeapObject("A", {"x": 1})
        b = HeapObject("A", {"x": 1})
        assert deep_value(a) == deep_value(b)
        b.fields["x"] = 2
        assert deep_value(a) != deep_value(b)

    def test_arrays_structural(self):
        assert deep_value(HeapArray([1, 2])) == deep_value(HeapArray([1, 2]))
        assert deep_value(HeapArray([1])) != deep_value(HeapArray([2]))

    def test_cyclic_heap_terminates(self):
        a = HeapObject("A", {"next": None})
        a.fields["next"] = a
        b = HeapObject("A", {"next": None})
        b.fields["next"] = b
        assert deep_value(a) == deep_value(b)

    def test_observable_outcome_includes_globals(self):
        program = compile_source(
            "global g: int;\nfn f() -> int { g = 7; return 1; }"
        )
        interp = Interpreter(program)
        result = interp.run("f", [])
        outcome = observable_outcome(result, interp.state)
        assert ("g", 7) in outcome[2]


class TestStackOverflow:
    SRC = """
fn rec(n: int) -> int {
  if (n <= 0) { return 0; }
  return 1 + rec(n - 1);
}
"""

    def test_deep_recursion_traps_cleanly(self):
        result, _ = run(self.SRC, "rec", [100_000])
        assert result.trapped and "stack overflow" in result.trap

    def test_shallow_recursion_fine(self):
        result, _ = run(self.SRC, "rec", [150])
        assert result.value == 150

    def test_depth_configurable(self):
        program = compile_source(self.SRC)
        interp = Interpreter(program, max_call_depth=10)
        assert interp.run("rec", [5]).value == 5
        assert interp.run("rec", [50]).trapped
