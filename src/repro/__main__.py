"""Command-line interface: compile and run MiniLang programs.

Usage::

    python -m repro run program.mini --entry main --args 10 --config dbds
    python -m repro compile program.mini --config dupalot --dump --json
    python -m repro trace program.mini --config dbds --out trace.jsonl
    python -m repro bench --suite micro --profile-compile
    python -m repro check examples/ --check-ir=each-phase --fuzz 20
    python -m repro profile program.mini --top 5 --collapsed out.folded

``run`` JIT-compiles (profile run + optimization) and executes, printing
the result and the simulated cycle count.  ``compile`` prints per-unit
metrics and optionally the optimized IR.  ``trace`` compiles under a
recording tracer and prints the aggregated compile profile.  ``bench``
regenerates one of the paper's evaluation figures.  ``check`` runs the
IR sanitizers (docs/ANALYSIS.md) over source files: checked compiles
with phase-blame diagnostics, optional LIR checks, dynamic stamp
checking, and translation-validation fuzzing.  ``run``,
``compile`` and ``bench`` all accept ``--trace-out FILE`` (write the
JSONL event trace) and ``--profile-compile`` (print the per-phase
profile); see docs/OBSERVABILITY.md.  ``run`` and ``compile`` accept
``--check-ir={off,boundaries,each-phase}`` plus
``--fail-fast``/``--keep-going``.  ``run``, ``bench`` and ``check``
accept ``--engine={reference,vm,closure,megaunit,tiered}`` to pick the
executor (``megaunit`` compiles the whole program into one exec unit
with direct calls, docs/VM.md; ``tiered`` starts cold and promotes hot
functions at the ``--tier-threshold`` hotness, and with
``--tier2-engine=megaunit`` re-promotes the hottest into the
whole-program unit at ``--tier2-threshold``; docs/TIERING.md);
``bench --engine-report FILE`` writes the engine comparison matrix and
``check --diff-engines``/``--fuzz-engines N`` differentially validate
every engine against the reference
(docs/VM.md).  ``profile`` (and ``run``/``bench --profile-run``)
executes under the profiling VM and prints per-opcode/function/block
hot-path tables; ``run``, ``batch``, ``bench`` and ``check`` accept
``--metrics-out FILE``/``--metrics-prom FILE`` to export the unified
metrics snapshot; ``bench --append-trajectory``/``--check-regression``
maintain the committed perf trajectory (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import functools
import json
import pathlib
import sys

from .analysis.bcverify import BytecodeVerificationError
from .analysis.blame import CHECK_EACH_PHASE, CHECK_MODES, CHECK_OFF, PhaseBlameError
from .bench.harness import format_suite_report, run_suite, suite_report_json
from .bench.trajectory import (
    DEFAULT_REGRESSION_THRESHOLD,
    DEFAULT_TRAJECTORY_PATH,
)
from .bench.workloads.suites import ALL_SUITES
from .frontend.irbuilder import compile_source
from .interp.interpreter import Interpreter
from .interp.profile import apply_profile, profile_program
from .obs import (
    NULL_REGISTRY,
    CompileProfile,
    MetricsRegistry,
    Tracer,
    use_registry,
    write_jsonl,
)
from .pipeline.batch import BatchOptions, compile_batch
from .pipeline.cache import ArtifactCache, cache_key, make_entry
from .obs.tracer import use_tracer
from .pipeline.compiler import Compiler, ENGINES, measure_performance
from .pipeline.config import CONFIGURATIONS
from .vm import (
    DEFAULT_TIER2_THRESHOLD,
    DEFAULT_TIER_THRESHOLD,
    TieringPolicy,
    VMProfile,
    profile_run,
    translate_program,
)

#: default on-disk cache location of the ``batch`` verb
DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", type=pathlib.Path, help="MiniLang source file")
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--config",
        default="dbds",
        choices=sorted(CONFIGURATIONS),
        help="compiler configuration",
    )
    parser.add_argument(
        "--args",
        nargs="*",
        type=int,
        default=[10],
        help="integer arguments for the entry function",
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default="reference",
        choices=ENGINES,
        help="execution engine for program runs (see docs/VM.md)",
    )
    parser.add_argument(
        "--tier-threshold",
        type=int,
        default=None,
        metavar="N",
        help="hotness (calls + back edges) at which --engine=tiered "
        f"promotes a function (default: {DEFAULT_TIER_THRESHOLD}; "
        "see docs/TIERING.md)",
    )
    parser.add_argument(
        "--tier2-engine",
        default=None,
        choices=("off", "megaunit"),
        help="tier-2 backend for --engine=tiered: 'megaunit' re-promotes "
        "functions that stay hot in tier 1 into the whole-program exec "
        "unit (default: off; see docs/TIERING.md)",
    )
    parser.add_argument(
        "--tier2-threshold",
        type=int,
        default=None,
        metavar="N",
        help="tier-1 calls at which a promoted function re-promotes to "
        f"the tier-2 engine (default: {DEFAULT_TIER2_THRESHOLD})",
    )


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        help="write the JSONL event trace to this file",
    )
    parser.add_argument(
        "--profile-compile",
        action="store_true",
        help="print the aggregated per-phase compile profile",
    )


def _add_check_flags(parser: argparse.ArgumentParser, default: str = CHECK_OFF) -> None:
    parser.add_argument(
        "--check-ir",
        default=default,
        choices=CHECK_MODES,
        help="run the IR sanitizers while compiling (see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "--check-bc",
        default="off",
        choices=("off", "load", "rewrite"),
        help="statically verify VM bytecode: 'load' checks every cache "
        "artifact before it runs (reject -> evict + recompile), "
        "'rewrite' additionally checks freshly fused/quickened streams "
        "(see docs/ANALYSIS.md)",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        default=True,
        help="stop at the first IR violation (default)",
    )
    group.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="collect every IR violation in one pass instead of stopping",
    )


def _add_cache_flags(
    parser: argparse.ArgumentParser, default_dir: pathlib.Path | None = None
) -> None:
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=default_dir,
        help="persistent artifact-cache directory"
        + (" (default: %(default)s)" if default_dir else " (default: no cache)"),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="compile from scratch, ignore and do not write the cache",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print hit/miss/store/evict tallies after the command",
    )


def _make_cache(args: argparse.Namespace) -> ArtifactCache | None:
    if args.no_cache or args.cache_dir is None:
        return None
    check_bc = getattr(args, "check_bc", "off")
    return ArtifactCache(
        args.cache_dir,
        verify_bytecode="load" if check_bc != "off" else "off",
    )


def _emit_cache_stats(args: argparse.Namespace, cache: ArtifactCache | None) -> None:
    if cache is not None and args.cache_stats:
        print(cache.stats.format(), file=sys.stderr)


def _jit_compile(
    source: str,
    entry: str,
    profile_args: list[list[int]],
    config,
    tracer: Tracer | None,
    check_ir: str,
    fail_fast: bool,
):
    """The ``compile_and_profile`` flow, keeping the compiler visible so
    keep-going guard failures can be reported after the fact."""
    program = compile_source(source)
    collector = profile_program(program, entry, profile_args)
    apply_profile(program, collector)
    compiler = Compiler(config, tracer=tracer, check_ir=check_ir, fail_fast=fail_fast)
    report = compiler.compile_program(program)
    return program, report, compiler.guard


def _report_guard_failures(guard) -> int:
    """Print collected phase-blame diagnostics; returns how many."""
    if guard is None:
        return 0
    for failure in guard.failures:
        print(failure.format_blame(), file=sys.stderr)
    return len(guard.failures)


def _make_tracer(args: argparse.Namespace) -> Tracer | None:
    """An event-recording tracer when any telemetry output was asked."""
    if args.trace_out is not None or args.profile_compile:
        return Tracer()
    return None


def _make_tiering(args: argparse.Namespace) -> TieringPolicy | None:
    """The :class:`TieringPolicy` encoded by the CLI flags, or None for
    defaults.  ``--check-bc=rewrite`` makes the tiering controller
    verify every promoted stream before it can reach dispatch."""
    threshold = getattr(args, "tier_threshold", None)
    check_bc = getattr(args, "check_bc", "off")
    tier2_engine = getattr(args, "tier2_engine", None)
    tier2_threshold = getattr(args, "tier2_threshold", None)
    if (
        threshold is None
        and check_bc != "rewrite"
        and tier2_engine is None
        and tier2_threshold is None
    ):
        return None
    return TieringPolicy(
        threshold=threshold if threshold is not None else DEFAULT_TIER_THRESHOLD,
        check_bc="rewrite" if check_bc == "rewrite" else "off",
        tier2_engine=tier2_engine if tier2_engine is not None else "off",
        tier2_threshold=(
            tier2_threshold
            if tier2_threshold is not None
            else DEFAULT_TIER2_THRESHOLD
        ),
    )


def _emit_observability(args: argparse.Namespace, tracer: Tracer | None) -> None:
    if tracer is None:
        return
    if args.trace_out is not None:
        records = write_jsonl(tracer, args.trace_out)
        print(f"trace: {records} records -> {args.trace_out}", file=sys.stderr)
    if args.profile_compile:
        print(CompileProfile.from_tracer(tracer).format())


def _add_metrics_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the metrics snapshot as JSON (docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--metrics-prom",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the metrics snapshot in Prometheus text format",
    )


def _make_registry(args: argparse.Namespace) -> MetricsRegistry:
    """A recording registry when any metrics output was asked, else the
    ambient null registry (instrumentation stays free)."""
    if args.metrics_out is not None or args.metrics_prom is not None:
        return MetricsRegistry()
    return NULL_REGISTRY


def _emit_metrics(args: argparse.Namespace, registry: MetricsRegistry) -> None:
    if not registry.enabled:
        return
    snapshot = registry.snapshot()
    if args.metrics_out is not None:
        args.metrics_out.write_text(
            json.dumps(snapshot.to_json(), indent=2, sort_keys=True) + "\n"
        )
        print(f"metrics: -> {args.metrics_out}", file=sys.stderr)
    if args.metrics_prom is not None:
        args.metrics_prom.write_text(snapshot.render_prometheus())
        print(f"metrics: -> {args.metrics_prom}", file=sys.stderr)


def _with_metrics(impl):
    """Run a command under its own metrics registry and export on exit.

    Every verb decorated here gains ``--metrics-out``/``--metrics-prom``
    (added by :func:`_add_metrics_flags`); instrumented layers find the
    registry through the ambient ``current_registry()`` exactly like
    they find the tracer.
    """

    @functools.wraps(impl)
    def wrapper(args: argparse.Namespace) -> int:
        registry = _make_registry(args)
        with use_registry(registry):
            code = impl(args)
        _emit_metrics(args, registry)
        return code

    return wrapper


def _emit_vm_profile(
    vmprofile: VMProfile, cycles: float, top: int = 10
) -> bool:
    """Print the profile tables plus the cycle-reconciliation line;
    returns whether the per-opcode cycle sum matches the metered total."""
    print()
    print(vmprofile.format(top=top))
    ok = vmprofile.reconciles(cycles)
    verdict = "exact" if ok else "MISMATCH"
    print()
    print(
        f"reconciliation  : per-opcode cycles {vmprofile.total_cycles:.0f} "
        f"vs metered total {cycles:.0f} -> {verdict}"
    )
    return ok


@_with_metrics
def cmd_run(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    tracer = _make_tracer(args)
    cache = _make_cache(args)
    cached = None
    key = None
    if cache is not None:
        key = cache_key(
            source, config, entry=args.entry,
            profile_args=[args.args], check_ir=args.check_ir,
        )
        cached = cache.get(key, tracer)
    bytecode = None
    if cached is not None:
        program, report = cached.program(), cached.report
        bytecode = cached.bytecode()
    else:
        # Compile under a recording tracer even without telemetry flags
        # when caching: the stored artifact keeps its decision trace.
        compile_tracer = tracer if tracer is not None else (
            Tracer() if cache is not None else None
        )
        try:
            program, report, guard = _jit_compile(
                source, args.entry, [args.args], config, compile_tracer,
                args.check_ir, args.fail_fast,
            )
        except PhaseBlameError as exc:
            print(exc.format_blame(), file=sys.stderr)
            return 1
        if _report_guard_failures(guard):
            return 1
        if cache is not None:
            try:
                bytecode = translate_program(
                    program, check_bc=args.check_bc
                )
            except BytecodeVerificationError as exc:
                print(exc.report.format(), file=sys.stderr)
                return 1
            cache.put(
                make_entry(
                    key, program, report,
                    events=compile_tracer.events,
                    counters=compile_tracer.counters,
                    bytecode=bytecode,
                ),
                tracer,
            )
    vmprofile = None
    try:
        if args.profile_run:
            # Profiling implies the VM: the profiler is a specialization
            # of its metered dispatch loop, so cycles match --engine=vm
            # runs.
            cycles, results, vmprofile = profile_run(
                program, entry=args.entry, arg_sets=[tuple(args.args)],
                bytecode=bytecode,
            )
        elif tracer is not None:
            # Run under the recording tracer so runtime events — the
            # tiered engine's tier.promote/tier.compile, plan-cache
            # hits — land in --trace-out next to the compile events.
            with use_tracer(tracer):
                cycles, results = measure_performance(
                    program, args.entry, [args.args],
                    engine=args.engine, bytecode=bytecode,
                    check_bc=args.check_bc, tiering=_make_tiering(args),
                    plan_cache=cache,
                )
        else:
            cycles, results = measure_performance(
                program, args.entry, [args.args],
                engine=args.engine, bytecode=bytecode,
                check_bc=args.check_bc, tiering=_make_tiering(args),
                plan_cache=cache,
            )
    except BytecodeVerificationError as exc:
        print(exc.report.format(), file=sys.stderr)
        return 1
    result = results[0]
    if result.trapped:
        print(f"trap: {result.trap}", file=sys.stderr)
        return 1
    print(f"result          : {result.value}")
    print(f"simulated cycles: {cycles:.0f}")
    print(f"compile time    : {report.total_compile_time * 1e3:.2f} ms")
    print(f"code size       : {report.total_code_size:.0f}")
    print(f"duplications    : {report.total_duplications}")
    if cached is not None:
        print("compiled from   : cache", file=sys.stderr)
    _emit_observability(args, tracer)
    _emit_cache_stats(args, cache)
    if vmprofile is not None and not _emit_vm_profile(vmprofile, cycles):
        return 1
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    program = compile_source(source)
    tracer = _make_tracer(args)
    compiler = Compiler(
        config, tracer=tracer, check_ir=args.check_ir, fail_fast=args.fail_fast
    )
    try:
        report = compiler.compile_program(program)
    except PhaseBlameError as exc:
        print(exc.format_blame(), file=sys.stderr)
        return 1
    if _report_guard_failures(compiler.guard):
        return 1
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(f"{'function':<20s}{'size':>8s}{'ctime ms':>10s}{'dups':>6s}")
        for unit in report.units:
            print(
                f"{unit.function:<20s}{unit.code_size:>8.0f}"
                f"{unit.compile_time * 1e3:>10.2f}{unit.duplications:>6d}"
            )
    if args.dump:
        print()
        print(program.describe())
    _emit_observability(args, tracer)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Compile under a recording tracer; print the profile report."""
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    program = compile_source(source)
    tracer = Tracer()
    Compiler(config, tracer=tracer).compile_program(program)
    print(CompileProfile.from_tracer(tracer).format(top=args.top))
    if args.decisions:
        from .dbds.explain import format_decision_events

        print()
        print("DBDS decisions:")
        print(format_decision_events(tracer.events))
    if args.out is not None:
        records = write_jsonl(tracer, args.out)
        print(f"trace: {records} records -> {args.out}", file=sys.stderr)
    return 0


def _collect_sources(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into the list of .mini sources."""
    files: list[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.mini")))
        else:
            files.append(path)
    return files


def _check_one_file(
    path: pathlib.Path,
    args: argparse.Namespace,
    config,
    tracer: Tracer | None,
    cache: ArtifactCache | None = None,
) -> int:
    """Run every requested sanitizer over one source file; returns the
    number of failures found (0 = clean)."""
    failures = 0
    source = path.read_text()
    key = None
    if cache is not None:
        key = cache_key(
            source, config, entry=args.entry,
            profile_args=[args.args], check_ir=args.check_ir,
        )
        cached = cache.get(key, tracer)
        if cached is not None:
            # Entries are only written for clean checked compiles, so a
            # hit skips the pipeline (and its guards) entirely; the
            # whole-program sweeps below still run on the rehydrated IR
            # (and, for --verify-bytecode, the rehydrated bytecode).
            program = cached.program()
            return _check_program_sweeps(
                path, args, program, bytecode=cached.bytecode()
            )
    compile_tracer = tracer if tracer is not None else (
        Tracer() if cache is not None else None
    )
    try:
        program, report, guard = _jit_compile(
            source, args.entry, [args.args], config, compile_tracer,
            args.check_ir, args.fail_fast,
        )
    except PhaseBlameError as exc:
        print(f"{path}:", file=sys.stderr)
        print(exc.format_blame(), file=sys.stderr)
        return 1
    failures += _report_guard_failures(guard)
    bytecode = None
    if cache is not None and failures == 0:
        try:
            bytecode = translate_program(program, check_bc=args.check_bc)
        except BytecodeVerificationError as exc:
            print(f"{path}:", file=sys.stderr)
            print(exc.report.format(), file=sys.stderr)
            return failures + len(exc.report.errors())
        cache.put(
            make_entry(
                key, program, report,
                events=compile_tracer.events,
                counters=compile_tracer.counters,
                bytecode=bytecode,
            ),
            tracer,
        )
    return failures + _check_program_sweeps(
        path, args, program, bytecode=bytecode
    )


def _check_program_sweeps(
    path: pathlib.Path, args: argparse.Namespace, program, bytecode=None
) -> int:
    """The post-compile sweeps: registered IR checkers plus optional
    LIR and dynamic-stamp validation; returns the failure count."""
    from .analysis import check_stamp_dynamic, run_lir_checkers, run_program_checkers

    failures = 0
    # Whole-program sweep with every registered IR checker, keep-going.
    for report in run_program_checkers(program, fail_fast=False):
        for violation in report.errors():
            print(f"{path}: {violation.format()}", file=sys.stderr)
            failures += 1

    if args.lir:
        from .backend.lowering import lower_program
        from .backend.regalloc import allocate_program

        lir_program = lower_program(program)
        reports = [run_lir_checkers(fn) for fn in lir_program.functions.values()]
        allocations = allocate_program(lir_program)
        reports.extend(
            run_lir_checkers(fn, allocations[name])
            for name, fn in lir_program.functions.items()
        )
        for report in reports:
            for violation in report.errors():
                print(f"{path}: {violation.format()}", file=sys.stderr)
                failures += 1

    if args.dynamic_stamps:
        problems: list[str] = []

        def observe(instruction, value) -> None:
            message = check_stamp_dynamic(instruction, value)
            if message is not None:
                problems.append(message)

        # Every engine exposes the same observer hook, so dynamic stamp
        # checking doubles as a VM spot-check under --engine=vm (the
        # closure engine falls back to the machine loops when observed,
        # so one VirtualMachine serves both bytecode engines here).
        if getattr(args, "engine", "reference") != "reference":
            from .vm.machine import VirtualMachine

            runner = VirtualMachine(translate_program(program), observer=observe)
        else:
            runner = Interpreter(program, observer=observe)
        runner.run(args.entry, list(args.args))
        for message in problems:
            print(f"{path}: dynamic-stamp: {message}", file=sys.stderr)
            failures += 1

    if getattr(args, "diff_engines", False):
        from .analysis import validate_engines

        result = validate_engines(
            path.read_text(), args.entry, [args.args],
            config=CONFIGURATIONS[args.config],
        )
        for record in result.divergences:
            print(f"{path}: engine-diff: {record.format()}", file=sys.stderr)
            failures += 1

    if getattr(args, "verify_bytecode", False):
        from .analysis.bcverify import verify_bytecode

        if bytecode is None:
            bytecode = translate_program(program)
        # The full profile: every checker including the codegen lint
        # and a quickened clone of each function, keep-going.
        report = verify_bytecode(bytecode, program, quicken=True)
        for violation in report.errors():
            print(f"{path}: {violation.format()}", file=sys.stderr)
            failures += 1
        if not hasattr(args, "_bc_reports"):
            args._bc_reports = []
        args._bc_reports.append({"file": str(path), **report.to_json()})
    return failures


@_with_metrics
def cmd_check(args: argparse.Namespace) -> int:
    """Checked compiles plus optional LIR/dynamic/fuzz validation."""
    config = CONFIGURATIONS[args.config]
    tracer = _make_tracer(args)
    cache = _make_cache(args)
    files = _collect_sources(args.paths or [pathlib.Path("examples")])
    failures = 0
    for path in files:
        failures += _check_one_file(path, args, config, tracer, cache)

    if args.fuzz:
        from .analysis import fuzz_translation

        report = fuzz_translation(
            seed=args.seed, programs=args.fuzz, time_budget=args.time_budget
        )
        print(report.format())
        failures += len(report.divergences) + len(report.compile_failures)

    if args.fuzz_mutations:
        from .analysis import fuzz_mutations

        corpus = [path.read_text() for path in files]
        report = fuzz_mutations(
            seed=args.seed,
            programs=args.fuzz_mutations,
            time_budget=args.time_budget,
            corpus=corpus,
        )
        print(report.format())
        failures += len(report.divergences) + len(report.compile_failures)

    if args.fuzz_engines:
        from .analysis import fuzz_engines

        corpus = [path.read_text() for path in files]
        report = fuzz_engines(
            seed=args.seed,
            programs=args.fuzz_engines,
            time_budget=args.time_budget,
            config=config,
            corpus=corpus,
        )
        print(report.format())
        failures += len(report.divergences) + len(report.compile_failures)

    corruption_json = None
    if args.fuzz_corruption:
        from .analysis.bcverify import corruption_campaign

        report = corruption_campaign(
            seed=args.seed, corruptions=args.fuzz_corruption, config=config
        )
        print(report.format())
        failures += report.total - report.rejected
        corruption_json = report.to_json()

    if args.bc_report:
        payload = {
            "files": getattr(args, "_bc_reports", []),
            "corruption": corruption_json,
        }
        args.bc_report.write_text(json.dumps(payload, indent=2) + "\n")

    _emit_observability(args, tracer)
    _emit_cache_stats(args, cache)
    status = "ok" if failures == 0 else f"{failures} failure(s)"
    print(f"check: {len(files)} file(s), mode {args.check_ir}: {status}")
    return 1 if failures else 0


@_with_metrics
def cmd_batch(args: argparse.Namespace) -> int:
    """Parallel batch compilation with the persistent artifact cache."""
    config = CONFIGURATIONS[args.config]
    tracer = _make_tracer(args)
    cache = _make_cache(args)
    files = _collect_sources(args.paths or [pathlib.Path("examples")])
    if not files:
        print("batch: no .mini sources found", file=sys.stderr)
        return 1
    options = BatchOptions(
        config=config,
        jobs=args.jobs,
        entry=args.entry,
        args=tuple(args.args),
        check_ir=args.check_ir,
        check_bc=args.check_bc,
        fail_fast=args.fail_fast,
        cache=cache,
    )
    report = compile_batch(files, options, tracer=tracer)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    if args.profile_compile:
        print(report.profile().format())
    if tracer is not None and args.trace_out is not None:
        records = write_jsonl(tracer.events + report.events(), args.trace_out)
        print(f"trace: {records} records -> {args.trace_out}", file=sys.stderr)
    _emit_cache_stats(args, cache)
    return 0 if report.ok else 1


@_with_metrics
def cmd_bench(args: argparse.Namespace) -> int:
    profile = ALL_SUITES[args.suite]
    # Trajectory entries record per-phase compile seconds, so trajectory
    # runs need phase profiling on even without --profile-compile.
    profile_phases = (
        args.profile_compile
        or args.trace_out is not None
        or args.append_trajectory is not None
        or args.check_regression is not None
    )
    cache = _make_cache(args)
    report = run_suite(
        profile, seed=args.seed, profile_phases=profile_phases, cache=cache,
        engine=args.engine,
    )
    print(format_suite_report(report))
    if args.trace_out is not None:
        args.trace_out.write_text(json.dumps(suite_report_json(report), indent=2))
        print(f"suite report -> {args.trace_out}", file=sys.stderr)
    comparison = None
    if args.engine_report is not None or args.engine_report_txt is not None:
        from .bench.engines import compare_engines

        comparison = compare_engines(profile, seed=args.seed, cache=cache)
        print(comparison.format())
        if args.engine_report is not None:
            args.engine_report.write_text(
                json.dumps(comparison.to_json(), indent=2)
            )
            print(f"engine report -> {args.engine_report}", file=sys.stderr)
        if args.engine_report_txt is not None:
            args.engine_report_txt.parent.mkdir(parents=True, exist_ok=True)
            args.engine_report_txt.write_text(comparison.format() + "\n")
            print(
                f"engine report (text) -> {args.engine_report_txt}",
                file=sys.stderr,
            )
        if not comparison.all_match:
            return 1
    if args.profile_run:
        code = _bench_profile_run(args, profile)
        if code:
            return code
    if args.append_trajectory is not None or args.check_regression is not None:
        code = _bench_trajectory(args, report, comparison)
        if code:
            return code
    _emit_cache_stats(args, cache)
    return 0


def _bench_profile_run(args: argparse.Namespace, profile) -> int:
    """Aggregate a VM execution profile across the suite's measured runs
    (compiled fresh under the DBDS configuration)."""
    from .bench.workloads.suites import generate_suite
    from .pipeline.compiler import compile_and_profile

    vmprofile = VMProfile()
    total = 0.0
    for workload in generate_suite(profile, args.seed):
        program, _ = compile_and_profile(
            workload.source, workload.entry, workload.profile_args,
            CONFIGURATIONS["dbds"],
        )
        cycles, _, _ = profile_run(
            program, entry=workload.entry,
            arg_sets=[tuple(a) for a in workload.measure_args],
            vmprofile=vmprofile,
        )
        total += cycles
    print()
    print(f"=== VM execution profile: {profile.suite} suite, dbds config ===")
    return 0 if _emit_vm_profile(vmprofile, total) else 1


def _bench_trajectory(args: argparse.Namespace, report, comparison) -> int:
    """Gate against, then append to, the committed perf trajectory.

    The regression check runs *before* the append so a failing run never
    pollutes the history it is being judged against."""
    from .bench.trajectory import (
        append_trajectory,
        check_regression,
        load_trajectory,
        trajectory_entry,
    )

    entry = trajectory_entry(
        report,
        seed=args.seed,
        vm_median_speedup=(
            comparison.median_speedup if comparison is not None else None
        ),
        engine_medians=(
            comparison.engine_medians if comparison is not None else None
        ),
    )
    if args.check_regression is not None:
        trajectory = load_trajectory(args.check_regression)
        failures = check_regression(
            trajectory, entry, args.regression_threshold
        )
        for failure in failures:
            print(f"regression: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            f"regression check: ok against {args.check_regression}",
            file=sys.stderr,
        )
    if args.append_trajectory is not None:
        trajectory = append_trajectory(args.append_trajectory, entry)
        print(
            f"trajectory: {len(trajectory['entries'])} entries "
            f"-> {args.append_trajectory}",
            file=sys.stderr,
        )
    return 0


@_with_metrics
def cmd_profile(args: argparse.Namespace) -> int:
    """JIT-compile, execute under the profiling VM, print hot paths."""
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    try:
        program, report, guard = _jit_compile(
            source, args.entry, [args.args], config, None,
            args.check_ir, args.fail_fast,
        )
    except PhaseBlameError as exc:
        print(exc.format_blame(), file=sys.stderr)
        return 1
    if _report_guard_failures(guard):
        return 1
    cycles, results, vmprofile = profile_run(
        program, entry=args.entry, arg_sets=[tuple(args.args)]
    )
    result = results[0]
    if result.trapped:
        print(f"trap: {result.trap}", file=sys.stderr)
        return 1
    print(f"result          : {result.value}")
    print(f"simulated cycles: {cycles:.0f}")
    print(f"compile time    : {report.total_compile_time * 1e3:.2f} ms")
    ok = _emit_vm_profile(vmprofile, cycles, top=args.top)
    if args.collapsed is not None:
        args.collapsed.write_text(vmprofile.collapsed())
        print(f"collapsed stacks -> {args.collapsed}", file=sys.stderr)
    if args.json is not None:
        args.json.write_text(
            json.dumps(vmprofile.to_json(), indent=2, sort_keys=True) + "\n"
        )
        print(f"profile json -> {args.json}", file=sys.stderr)
    return 0 if ok else 1


def cmd_evaluate(args: argparse.Namespace) -> int:
    from .bench.report import render_markdown, run_evaluation

    result = run_evaluation(suites=args.suites, seed=args.seed)
    markdown = render_markdown(result)
    args.out.write_text(markdown)
    headline = result.headline()
    print(f"report written to {args.out}")
    print(
        f"mean speedup {headline['mean_speedup']:+.2f}%  "
        f"(max {headline['max_speedup']:+.2f}% on "
        f"{headline['max_speedup_benchmark']})"
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .dbds.explain import explain_graph
    from .interp.profile import apply_profile, profile_program
    from .opts.canonicalize import CanonicalizerPhase
    from .opts.inline import InliningPhase

    program = compile_source(args.source.read_text())
    if args.profile_args is not None:
        collector = profile_program(program, args.entry, [args.profile_args])
        apply_profile(program, collector)
    names = [args.function] if args.function else list(program.functions)
    for name in names:
        graph = program.function(name)
        InliningPhase(program).run(graph)
        CanonicalizerPhase().run(graph)
        print(explain_graph(graph, program))
        print()
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from .bench.workloads.suites import generate_workload

    profile = ALL_SUITES[args.suite]
    name = args.name or profile.benchmark_names[0]
    if name not in profile.benchmark_names:
        print(
            f"unknown benchmark {name!r}; choose from "
            f"{', '.join(profile.benchmark_names)}",
            file=sys.stderr,
        )
        return 1
    workload = generate_workload(profile, name, args.seed)
    print(workload.source)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DBDS reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="JIT-compile and execute")
    _add_common(run_parser)
    _add_engine_flag(run_parser)
    _add_observability(run_parser)
    _add_metrics_flags(run_parser)
    _add_check_flags(run_parser)
    _add_cache_flags(run_parser)
    run_parser.add_argument(
        "--profile-run",
        action="store_true",
        help="execute under the profiling VM and print hot-path tables "
        "(implies the VM engine; see docs/OBSERVABILITY.md)",
    )
    run_parser.set_defaults(func=cmd_run)

    profile_parser = sub.add_parser(
        "profile", help="execute under the profiling VM, print hot paths"
    )
    _add_common(profile_parser)
    _add_check_flags(profile_parser)
    _add_metrics_flags(profile_parser)
    profile_parser.add_argument(
        "--top", type=int, default=10, help="rows per profile table"
    )
    profile_parser.add_argument(
        "--collapsed",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write collapsed call stacks (flamegraph.pl / speedscope input)",
    )
    profile_parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the full profile as JSON",
    )
    profile_parser.set_defaults(func=cmd_profile)

    batch_parser = sub.add_parser(
        "batch", help="compile many files in parallel, artifact-cached"
    )
    batch_parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help="MiniLang files or directories (default: examples/)",
    )
    batch_parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: os.cpu_count(); 1 = no pool)",
    )
    batch_parser.add_argument("--entry", default="main", help="entry function")
    batch_parser.add_argument(
        "--args",
        nargs="*",
        type=int,
        default=[10],
        help="integer arguments for the profiling run",
    )
    batch_parser.add_argument(
        "--config",
        default="dbds",
        choices=sorted(CONFIGURATIONS),
        help="compiler configuration",
    )
    batch_parser.add_argument(
        "--json", action="store_true", help="print the batch report as JSON"
    )
    _add_check_flags(batch_parser)
    _add_cache_flags(batch_parser, default_dir=DEFAULT_CACHE_DIR)
    _add_observability(batch_parser)
    _add_metrics_flags(batch_parser)
    batch_parser.set_defaults(func=cmd_batch)

    compile_parser = sub.add_parser("compile", help="compile and show metrics")
    _add_common(compile_parser)
    _add_observability(compile_parser)
    _add_check_flags(compile_parser)
    compile_parser.add_argument(
        "--dump", action="store_true", help="print the optimized IR"
    )
    compile_parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    compile_parser.set_defaults(func=cmd_compile)

    trace_parser = sub.add_parser(
        "trace", help="compile under a recording tracer, print the profile"
    )
    trace_parser.add_argument("source", type=pathlib.Path)
    trace_parser.add_argument(
        "--config",
        default="dbds",
        choices=sorted(CONFIGURATIONS),
        help="compiler configuration",
    )
    trace_parser.add_argument(
        "--out", type=pathlib.Path, default=None, help="write the JSONL trace here"
    )
    trace_parser.add_argument(
        "--top", type=int, default=10, help="rows per profile section"
    )
    trace_parser.add_argument(
        "--decisions",
        action="store_true",
        help="also list every DBDS decision event",
    )
    trace_parser.set_defaults(func=cmd_trace)

    check_parser = sub.add_parser(
        "check", help="run the IR sanitizers over source files"
    )
    check_parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help="MiniLang files or directories (default: examples/)",
    )
    check_parser.add_argument("--entry", default="main", help="entry function")
    check_parser.add_argument(
        "--args",
        nargs="*",
        type=int,
        default=[10],
        help="integer arguments for profiling and dynamic runs",
    )
    check_parser.add_argument(
        "--config",
        default="dbds",
        choices=sorted(CONFIGURATIONS),
        help="compiler configuration",
    )
    _add_check_flags(check_parser, default=CHECK_EACH_PHASE)
    check_parser.add_argument(
        "--lir",
        action="store_true",
        help="also lower to LIR and run the LIR checkers (pre/post regalloc)",
    )
    check_parser.add_argument(
        "--dynamic-stamps",
        action="store_true",
        help="interpret the optimized program and check every produced "
        "value against its static stamp",
    )
    check_parser.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="N",
        help="also translation-validate N generated programs",
    )
    check_parser.add_argument("--seed", type=int, default=0, help="fuzz seed")
    check_parser.add_argument(
        "--fuzz-mutations",
        type=int,
        default=0,
        metavar="N",
        help="also translation-validate N mutants of the checked sources "
        "(template-extraction-style fuzzing; see docs/ANALYSIS.md)",
    )
    check_parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="stop fuzzing after this many seconds",
    )
    _add_engine_flag(check_parser)
    check_parser.add_argument(
        "--diff-engines",
        action="store_true",
        help="run every checked program on both engines and demand "
        "identical outcomes, steps and cycles",
    )
    check_parser.add_argument(
        "--fuzz-engines",
        type=int,
        default=0,
        metavar="N",
        help="also engine-validate N mutants of the checked sources "
        "(reference interpreter vs every VM engine)",
    )
    check_parser.add_argument(
        "--verify-bytecode",
        action="store_true",
        help="run the static bytecode verifier over each file's VM "
        "translation, including quickened streams and the closure "
        "codegen lint (see docs/ANALYSIS.md)",
    )
    check_parser.add_argument(
        "--fuzz-corruption",
        type=int,
        default=0,
        metavar="N",
        help="corrupt cached bytecode artifacts N times (seeded) and "
        "demand every mutation is rejected at load",
    )
    check_parser.add_argument(
        "--bc-report",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the bytecode-verifier + corruption-campaign report "
        "as JSON",
    )
    _add_observability(check_parser)
    _add_metrics_flags(check_parser)
    _add_cache_flags(check_parser)
    check_parser.set_defaults(func=cmd_check)

    bench_parser = sub.add_parser("bench", help="run one evaluation suite")
    bench_parser.add_argument("--suite", default="micro", choices=sorted(ALL_SUITES))
    bench_parser.add_argument("--seed", type=int, default=0)
    _add_engine_flag(bench_parser)
    bench_parser.add_argument(
        "--engine-report",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="also compare engines on the suite, write the JSON report "
        "(reference vs every VM engine: wall times, per-engine speedups, "
        "outcome equality)",
    )
    bench_parser.add_argument(
        "--engine-report-txt",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="persist the human-readable engine comparison table "
        "(e.g. benchmarks/results/engine_report.txt)",
    )
    _add_observability(bench_parser)
    _add_metrics_flags(bench_parser)
    _add_cache_flags(bench_parser)
    bench_parser.add_argument(
        "--profile-run",
        action="store_true",
        help="also aggregate a VM execution profile over the suite's "
        "measured runs (dbds config)",
    )
    bench_parser.add_argument(
        "--append-trajectory",
        type=pathlib.Path,
        nargs="?",
        const=DEFAULT_TRAJECTORY_PATH,
        default=None,
        metavar="FILE",
        help="append this run to the committed perf trajectory "
        f"(default file: {DEFAULT_TRAJECTORY_PATH})",
    )
    bench_parser.add_argument(
        "--check-regression",
        type=pathlib.Path,
        nargs="?",
        const=DEFAULT_TRAJECTORY_PATH,
        default=None,
        metavar="FILE",
        help="fail when per-config median cycles regress beyond the "
        "threshold against the last comparable trajectory entry",
    )
    bench_parser.add_argument(
        "--regression-threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        metavar="FRAC",
        help="tolerated relative median-cycles growth (default: %(default)s)",
    )
    bench_parser.set_defaults(func=cmd_bench)

    evaluate_parser = sub.add_parser(
        "evaluate", help="run the full evaluation, write a markdown report"
    )
    evaluate_parser.add_argument(
        "--suites",
        nargs="*",
        choices=sorted(ALL_SUITES),
        default=None,
        help="suites to run (default: the four paper suites)",
    )
    evaluate_parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("evaluation_report.md")
    )
    evaluate_parser.add_argument("--seed", type=int, default=0)
    evaluate_parser.set_defaults(func=cmd_evaluate)

    explain_parser = sub.add_parser(
        "explain", help="report every duplication candidate and decision"
    )
    explain_parser.add_argument("source", type=pathlib.Path)
    explain_parser.add_argument(
        "--function", default=None, help="only this function (default: all)"
    )
    explain_parser.add_argument(
        "--profile-args",
        nargs="*",
        type=int,
        default=None,
        help="profile with these entry args before explaining",
    )
    explain_parser.add_argument("--entry", default="main")
    explain_parser.set_defaults(func=cmd_explain)

    workload_parser = sub.add_parser(
        "workload", help="print a generated benchmark's MiniLang source"
    )
    workload_parser.add_argument("--suite", default="micro", choices=sorted(ALL_SUITES))
    workload_parser.add_argument("--name", default=None, help="benchmark name")
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.set_defaults(func=cmd_workload)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
