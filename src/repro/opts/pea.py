"""Partial escape analysis and scalar replacement (Section 2, Listing 3/4).

An allocation whose only uses are field accesses on itself (plus
comparisons against ``null``, which fold — a fresh object is never null)
does not escape and can be *scalar replaced*: loads become the values
that reach them, stores and the allocation itself disappear.

The paper's key observation is the φ case: an allocation flowing into a
phi escapes (someone downstream sees "an object"), so Listing 3 cannot
be optimized — until duplication eliminates the phi, after which this
phase removes the allocation in the constant branch.  We therefore treat
phi uses as escapes, which is precisely the opportunity class the DBDS
simulation detects.

Field values are tracked flow-sensitively along single-predecessor
edges; if any load of the candidate sits beyond a merge, the allocation
is kept (a full PEA would materialize at the merge — a documented
simplification, see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

from ..ir.block import Block
from ..ir.graph import Graph, Program
from .base import Phase
from ..ir.nodes import Compare, Constant, Instruction, LoadField, New, StoreField, Value
from ..ir.ops import CmpOp
from .canonicalize import remove_dead_instructions


class PartialEscapeAnalysisPhase(Phase):
    """Scalar replacement of non-escaping allocations."""

    name = "partial-escape-analysis"

    def __init__(self, program: Program) -> None:
        self.program = program

    def run(self, graph: Graph) -> int:
        replaced = 0
        for block in list(graph.blocks):
            for ins in list(block.instructions):
                if isinstance(ins, New) and ins.block is block:
                    if self._try_scalar_replace(graph, ins):
                        replaced += 1
        if replaced:
            remove_dead_instructions(graph)
        return replaced

    # ------------------------------------------------------------------
    def _classify_uses(
        self, alloc: New
    ) -> Optional[tuple[list[LoadField], list[StoreField], list[Compare]]]:
        """Partition the uses of ``alloc``; None when any use escapes."""
        loads: list[LoadField] = []
        stores: list[StoreField] = []
        null_compares: list[Compare] = []
        for user in alloc.uses:
            if isinstance(user, LoadField) and user.obj is alloc:
                loads.append(user)
            elif (
                isinstance(user, StoreField)
                and user.obj is alloc
                and user.value is not alloc
            ):
                stores.append(user)
            elif isinstance(user, Compare) and user.op in (CmpOp.EQ, CmpOp.NE):
                other = user.y if user.x is alloc else user.x
                if isinstance(other, Constant) and other.value is None:
                    null_compares.append(user)
                else:
                    return None  # compared against an arbitrary object
            else:
                return None  # phi, call argument, return, store value, …
        return loads, stores, null_compares

    def _try_scalar_replace(self, graph: Graph, alloc: New) -> bool:
        classified = self._classify_uses(alloc)
        if classified is None:
            return False
        loads, stores, null_compares = classified

        resolutions = self._resolve_loads(graph, alloc, loads)
        if resolutions is None:
            return False

        # Action: fold null comparisons (a fresh allocation is non-null),
        # forward load values, drop stores and the allocation.
        for cmp_ins in null_compares:
            cmp_ins.replace_all_uses(graph.const_bool(cmp_ins.op is CmpOp.NE))
            cmp_ins.block.remove_instruction(cmp_ins)
        for load, value in resolutions.items():
            load.replace_all_uses(value)
            load.block.remove_instruction(load)
        for store in stores:
            store.block.remove_instruction(store)
        alloc.block.remove_instruction(alloc)
        return True

    # ------------------------------------------------------------------
    def _resolve_loads(
        self, graph: Graph, alloc: New, loads: list[LoadField]
    ) -> Optional[dict[LoadField, Value]]:
        """Map each load of ``alloc`` to the value that reaches it, or
        None when some load cannot be resolved flow-sensitively."""
        decl = self.program.class_table.lookup(alloc.object_type.class_name)
        initial = {
            f.name: graph.constant(f.type.default_value(), f.type)
            for f in decl.fields
        }
        resolutions: dict[LoadField, Value] = {}
        pending = set(loads)

        # Walk from the allocation onward; state follows single-pred
        # edges only (merges lose precision and force a bail-out for
        # loads beyond them).
        start_index = alloc.block.instructions.index(alloc) + 1
        states: list[tuple[Block, int, dict[str, Value]]] = [
            (alloc.block, start_index, initial)
        ]
        visited: set[Block] = {alloc.block}
        while states:
            block, index, state = states.pop()
            for ins in block.instructions[index:]:
                if isinstance(ins, StoreField) and ins.obj is alloc:
                    state = dict(state)
                    state[ins.field] = ins.value
                elif isinstance(ins, LoadField) and ins.obj is alloc:
                    resolutions[ins] = state[ins.field]
                    pending.discard(ins)
            for succ in block.successors:
                if len(succ.predecessors) == 1 and succ not in visited:
                    visited.add(succ)
                    states.append((succ, 0, dict(state)))

        if pending:
            return None  # some load lives beyond a merge: keep the object

        def chase(value: Value) -> Value:
            # A load may resolve to another load of the same allocation
            # (p.y = p.x; … = p.y); follow the chain so no replacement
            # points at an instruction that is itself being removed.
            while isinstance(value, LoadField) and value in resolutions:
                value = resolutions[value]
            return value

        return {load: chase(value) for load, value in resolutions.items()}
