"""Committed perf trajectory: BENCH results as a tracked history.

``BENCH_headline.json`` is a fire-and-forget CI artifact — useful for
one build, invisible the build after.  This module turns benchmark
results into an append-only, schema-versioned JSON file committed to
the repository (``benchmarks/results/BENCH_trajectory.json``), so perf
is a *trajectory* rather than a point: every ``repro bench
--append-trajectory`` run adds one entry, and ``repro bench
--check-regression`` fails when the new run's per-configuration median
cycles regress beyond a threshold against the last committed entry.

Gating policy: only **simulated cycles** gate.  They are deterministic
(cost-model arithmetic, identical on every machine), so a regression
is a real compiler-quality change, never CI-runner noise.  Wall-clock
facts — the VM median speedup from the engine comparison, per-phase
compile seconds — are *recorded* for trend analysis but never gated
here; the CI bench job's ≥2× median-VM-speedup floor covers the
wall-clock side with a machine-tolerant margin.

Entry layout (``schema`` 1)::

    {
      "schema": 1,
      "recorded_at": "2026-08-08T12:00:00+00:00",
      "suite": "micro", "seed": 0, "repro_version": "...",
      "configs": {
        "dbds": {"fingerprint": "...", "median_cycles": ...,
                  "geomean_speedup_percent": ..., "median_compile_time": ...},
        ...
      },
      "vm_median_speedup": 37.2 | null,
      "engine_medians": {"vm-nofuse": ..., "vm": ..., "closure": ...} | null,
      "phase_times": {"dbds": {...}, ...}
    }

``engine_medians`` (added alongside the engine matrix; still schema 1
— readers treat a missing key as null) records every engine's median
wall-clock speedup over the reference interpreter, so the trajectory
shows what fusion/quickening and the closure engine buy over time.
"""

from __future__ import annotations

import json
import statistics
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Optional, Union

from ..pipeline.config import CONFIGURATIONS
from .harness import SuiteReport, suite_phase_times

TRAJECTORY_SCHEMA_VERSION = 1

DEFAULT_TRAJECTORY_PATH = Path("benchmarks/results/BENCH_trajectory.json")

#: default tolerated per-config median-cycles growth (5 %)
DEFAULT_REGRESSION_THRESHOLD = 0.05


def _fingerprint(config_name: str) -> Optional[str]:
    config = CONFIGURATIONS.get(config_name)
    return config.fingerprint() if config is not None else None


def trajectory_entry(
    report: SuiteReport,
    *,
    seed: int = 0,
    vm_median_speedup: Optional[float] = None,
    engine_medians: Optional[dict[str, float]] = None,
    recorded_at: Optional[str] = None,
) -> dict[str, Any]:
    """Build one trajectory entry from a finished suite run.

    ``vm_median_speedup`` and ``engine_medians`` come from the engine
    comparison when one ran alongside (``--engine-report``); they are
    recorded, not gated.
    """
    from ..pipeline.cache import repro_version

    configs: dict[str, dict[str, Any]] = {}
    for name in ["baseline", *report.config_names]:
        if name == "baseline":
            cycles = [row.baseline.cycles for row in report.rows]
            compile_times = [row.baseline.compile_time for row in report.rows]
            speedup = 0.0
        else:
            cycles = [row.configs[name].cycles for row in report.rows]
            compile_times = [
                row.configs[name].compile_time for row in report.rows
            ]
            speedup = report.geomean_speedup(name)
        configs[name] = {
            "fingerprint": _fingerprint(name),
            "median_cycles": statistics.median(cycles) if cycles else 0.0,
            "geomean_speedup_percent": speedup,
            "median_compile_time": (
                statistics.median(compile_times) if compile_times else 0.0
            ),
        }
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "recorded_at": (
            recorded_at
            if recorded_at is not None
            else datetime.now(timezone.utc).isoformat(timespec="seconds")
        ),
        "suite": report.suite,
        "seed": seed,
        "repro_version": repro_version(),
        "configs": configs,
        "vm_median_speedup": vm_median_speedup,
        "engine_medians": dict(engine_medians) if engine_medians else None,
        "phase_times": suite_phase_times(report),
    }


def load_trajectory(path: Union[str, Path]) -> dict[str, Any]:
    """The trajectory file's content; an empty trajectory when absent."""
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA_VERSION, "entries": []}
    data = json.loads(path.read_text())
    if data.get("schema") != TRAJECTORY_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported trajectory schema "
            f"{data.get('schema')!r} (expected {TRAJECTORY_SCHEMA_VERSION})"
        )
    return data


def append_trajectory(
    path: Union[str, Path], entry: dict[str, Any]
) -> dict[str, Any]:
    """Append ``entry`` and write the file back; returns the trajectory."""
    path = Path(path)
    trajectory = load_trajectory(path)
    trajectory["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    return trajectory


def last_comparable_entry(
    trajectory: dict[str, Any], entry: dict[str, Any]
) -> Optional[dict[str, Any]]:
    """The most recent committed entry the new one can be gated against
    (same suite, same seed — different seeds are different workloads)."""
    for past in reversed(trajectory.get("entries", [])):
        if (
            past.get("suite") == entry.get("suite")
            and past.get("seed") == entry.get("seed")
        ):
            return past
    return None


def check_regression(
    trajectory: dict[str, Any],
    entry: dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> list[str]:
    """Compare ``entry`` against the last comparable committed entry.

    Returns human-readable failure strings, one per configuration whose
    median simulated cycles grew beyond ``threshold`` (relative).  A
    configuration whose fingerprint changed since the committed entry
    is skipped — its constants changed, so its medians are a new
    baseline rather than a regression.  Empty list = pass.
    """
    baseline = last_comparable_entry(trajectory, entry)
    if baseline is None:
        return []
    failures: list[str] = []
    for name, new in entry.get("configs", {}).items():
        old = baseline.get("configs", {}).get(name)
        if old is None:
            continue
        if (
            old.get("fingerprint") is not None
            and new.get("fingerprint") is not None
            and old["fingerprint"] != new["fingerprint"]
        ):
            continue
        old_cycles = old.get("median_cycles", 0.0)
        new_cycles = new.get("median_cycles", 0.0)
        if old_cycles <= 0:
            continue
        if new_cycles > old_cycles * (1.0 + threshold):
            fingerprint = new.get("fingerprint") or old.get("fingerprint")
            fp_note = (
                f", config fingerprint {fingerprint}"
                if fingerprint is not None
                else ", config fingerprint unknown"
            )
            failures.append(
                f"{entry.get('suite')}/{name}: median cycles regressed "
                f"{old_cycles:g} -> {new_cycles:g} "
                f"(+{(new_cycles / old_cycles - 1.0) * 100.0:.1f}%, "
                f"threshold {threshold * 100.0:.1f}%, "
                f"committed {baseline.get('recorded_at')}{fp_note})"
            )
    return failures


__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "DEFAULT_TRAJECTORY_PATH",
    "TRAJECTORY_SCHEMA_VERSION",
    "append_trajectory",
    "check_regression",
    "last_comparable_entry",
    "load_trajectory",
    "trajectory_entry",
]
