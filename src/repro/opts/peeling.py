"""Loop peeling: duplicate the first iteration before the loop.

DBDS excludes loop headers from tail duplication because duplicating a
merge with a back edge *is* loop peeling (DESIGN.md).  This module
provides that missing transformation explicitly: the whole loop body is
cloned as a straight "iteration zero" executed on entry, with the
original loop handling iterations 1+.  Entry-specific values (e.g. phi
inputs that are constants on the entry edge) then specialize the peeled
copy — the same enabling effect duplication has at ordinary merges.

The machinery mirrors ``dbds.duplicate``: value cloning with positional
phi bookkeeping, on-demand SSA repair for values escaping the loop, and
invariant restoration afterwards.
"""

from __future__ import annotations

from typing import Optional

from ..ir.block import Block
from ..ir.cfgutils import (
    fold_redundant_ifs,
    remove_unreachable_blocks,
    reverse_post_order,
    simplify_degenerate_phis,
    split_critical_edges,
)
from ..ir.copy import clone_instruction, clone_terminator
from ..ir.graph import Graph
from .base import Phase
from ..ir.loops import Loop, LoopForest
from ..ir.nodes import Constant, Goto, Phi, Value
from ..ir.ssa_repair import repair_value


class PeelingError(Exception):
    """The loop cannot be peeled."""


def can_peel(graph: Graph, loop: Loop) -> bool:
    """Peelable: a natural loop whose entry predecessors all end in
    Goto (the merge invariant guarantees this) and whose header is not
    also the entry block."""
    header = loop.header
    if header is graph.entry:
        return False
    entries = [
        p for p in header.predecessors if p not in loop.back_edge_predecessors
    ]
    if not entries or not loop.back_edge_predecessors:
        return False
    return all(isinstance(e.terminator, Goto) for e in entries)


def peel_loop(graph: Graph, loop: Loop) -> dict[Value, Value]:
    """Peel one iteration; returns the original→peeled value map."""
    if not can_peel(graph, loop):
        raise PeelingError(f"cannot peel loop at {loop.header.name}")

    header = loop.header
    entries = [
        p for p in header.predecessors if p not in loop.back_edge_predecessors
    ]
    loop_blocks = set(loop.blocks)

    # ------------------------------------------------------------------
    # A. Capture positional information before any edges move.
    # ------------------------------------------------------------------
    entry_inputs: dict[Phi, list[Value]] = {
        phi: [phi.input(header.predecessor_index(e)) for e in entries]
        for phi in header.phis
    }
    original_header_preds = list(header.predecessors)
    external_targets_snapshot: dict[Block, int] = {}

    # ------------------------------------------------------------------
    # B. Create peeled blocks; seed the value map.
    # ------------------------------------------------------------------
    block_map: dict[Block, Block] = {
        block: graph.new_block(f"peel_{block.name}") for block in loop_blocks
    }
    reverse_map = {copy: orig for orig, copy in block_map.items()}
    value_map: dict[Value, Value] = {}

    def mapped(value: Value) -> Value:
        return value_map.get(value, value)

    peeled_header = block_map[header]
    multi_entry = len(entries) > 1
    pending_header_phis: list[tuple[Phi, Phi]] = []
    for phi in header.phis:
        if multi_entry:
            clone = Phi(peeled_header, phi.type, [])
            peeled_header.add_phi(clone)
            value_map[phi] = clone
            pending_header_phis.append((phi, clone))
        else:
            # Single entry: the peeled iteration sees the entry value
            # directly — no phi needed.
            value_map[phi] = entry_inputs[phi][0]

    pending_inner_phis: list[tuple[Block, Phi, Phi]] = []
    for block in loop_blocks:
        if block is header:
            continue
        for phi in block.phis:
            clone = Phi(block_map[block], phi.type, [])
            block_map[block].add_phi(clone)
            value_map[phi] = clone
            pending_inner_phis.append((block, phi, clone))

    # Instructions in RPO so definitions map before uses.
    for block in reverse_post_order(graph):
        if block not in loop_blocks:
            continue
        for ins in block.instructions:
            copy = clone_instruction(ins, mapped)
            block_map[block].append(copy)
            value_map[ins] = copy

    # ------------------------------------------------------------------
    # C. Terminators. Loop-internal targets map to the peeled copies,
    #    except the header: the peeled back edge enters the *original*
    #    loop (iteration 1+). External targets (exits) stay.
    # ------------------------------------------------------------------
    def target_of(block: Block) -> Block:
        if block is header:
            return header
        return block_map.get(block, block)

    external_gainers: list[Block] = []
    for block in loop_blocks:
        for succ in block.successors:
            if succ not in loop_blocks or succ is header:
                if succ not in external_targets_snapshot:
                    external_targets_snapshot[succ] = len(succ.predecessors)
                    external_gainers.append(succ)
    for block in loop_blocks:
        copy = block_map[block]
        copy.set_terminator(
            clone_terminator(block.terminator, mapped, target_of)
        )

    # Every external block that gained predecessors (the original header
    # included) extends its phis positionally for the new edges.
    for target in external_gainers:
        base = external_targets_snapshot[target]
        for new_pred in target.predecessors[base:]:
            origin = reverse_map[new_pred]
            origin_index = target.predecessor_index(origin)
            for phi in target.phis:
                phi._append_input(mapped(phi.input(origin_index)))

    # ------------------------------------------------------------------
    # D. Entries now enter the peeled iteration.
    # ------------------------------------------------------------------
    for entry in entries:
        slot = list(entry.terminator.targets).index(header)
        entry.terminator.set_target(slot, peeled_header)

    # E. Multi-entry header phis in the peel get their entry inputs in
    #    the (new) predecessor order of the peeled header.
    if multi_entry:
        order = {entry: i for i, entry in enumerate(entries)}
        for pred in peeled_header.predecessors:
            for original_phi, clone in pending_header_phis:
                clone._append_input(entry_inputs[original_phi][order[pred]])

    # F. Inner merge phis: inputs per the peeled block's predecessor
    #    order, mapped from the original edge's input.
    for block, phi, clone in pending_inner_phis:
        for pred in block_map[block].predecessors:
            origin = reverse_map[pred]
            index = block.predecessor_index(origin)
            clone._append_input(mapped(phi.input(index)))

    # ------------------------------------------------------------------
    # G. SSA repair for loop-defined values used beyond the loop.
    # ------------------------------------------------------------------
    dom = graph.dominator_tree()
    peeled_blocks = set(block_map.values())

    for block in list(loop_blocks):
        for value in list(block.phis) + list(block.instructions):
            uses = _uses_outside(value, loop_blocks | peeled_blocks)
            if not uses:
                continue
            peeled_value = value_map[value]
            definitions = {block: value, _defining_block(peeled_value, block_map, block): peeled_value}
            repair_value(graph, dom, definitions, uses, value.type)

    # ------------------------------------------------------------------
    # H. Restore invariants.
    # ------------------------------------------------------------------
    if hasattr(header, "profile_trip_count"):
        header.profile_trip_count = max(header.profile_trip_count - 1.0, 1.0)
    simplify_degenerate_phis(graph)
    fold_redundant_ifs(graph)
    remove_unreachable_blocks(graph)
    split_critical_edges(graph)
    return value_map


def _defining_block(value: Value, block_map: dict[Block, Block], fallback_origin: Block) -> Block:
    """Block claiming the peeled definition for SSA repair purposes.

    A peeled instruction lives in its copy block; a specialized header
    phi may be an outside value, which dominates the peeled header and
    can be claimed there.
    """
    block = getattr(value, "block", None)
    if block is not None:
        return block
    return block_map[fallback_origin]


def _uses_outside(value: Value, region: set[Block]) -> list:
    """(user, slot) pairs consumed outside ``region`` (phi inputs belong
    to their predecessor edge)."""
    result = []
    for user in list(value.uses):
        for slot, operand in enumerate(user.inputs):
            if operand is not value:
                continue
            if isinstance(user, Phi):
                use_block = user.block.predecessors[slot]
            else:
                use_block = user.block
            if use_block not in region:
                result.append((user, slot))
    return result


class LoopPeelingPhase(Phase):
    """Peel loops whose first iteration specializes.

    Heuristic: a loop is worth peeling when some header phi has a
    constant input on the entry edge (the peeled iteration then folds),
    bounded by a peel budget.  This is an experimental extension, not
    part of the default pipeline — see DESIGN.md.
    """

    name = "loop-peeling"

    def __init__(self, max_peels: int = 4) -> None:
        self.max_peels = max_peels

    def run(self, graph: Graph) -> int:
        peeled = 0
        while peeled < self.max_peels:
            forest = graph.loop_forest()
            candidate = self._pick(graph, forest)
            if candidate is None:
                break
            peel_loop(graph, candidate)
            peeled += 1
        return peeled

    def _pick(self, graph: Graph, forest: LoopForest) -> Optional[Loop]:
        for loop in forest.loops:
            if not can_peel(graph, loop):
                continue
            if getattr(loop.header, "_peeled_once", False):
                continue
            entries = [
                p
                for p in loop.header.predecessors
                if p not in loop.back_edge_predecessors
            ]
            for phi in loop.header.phis:
                for entry in entries:
                    value = phi.input(loop.header.predecessor_index(entry))
                    if isinstance(value, Constant):
                        loop.header._peeled_once = True
                        return loop
        return None
