"""Tests for on-demand SSA reconstruction."""

import pytest

from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
    verify_graph,
)
from repro.ir.dominators import DominatorTree
from repro.ir.ssa_repair import collect_external_uses, repair_value


def two_defs_one_use():
    """entry -> (a | b) -> join; value defined differently in a and b,
    used in join — the canonical multi-definition repair scenario."""
    g = Graph("f", [("x", INT)], INT)
    x = g.parameters[0]
    a, b, join = g.new_block("a"), g.new_block("b"), g.new_block("join")
    cond = g.entry.append(Compare(CmpOp.GT, x, g.const_int(0)))
    g.entry.set_terminator(If(cond, a, b))
    def_a = a.append(ArithOp(BinOp.ADD, x, g.const_int(1)))
    a.set_terminator(Goto(join))
    def_b = b.append(ArithOp(BinOp.MUL, x, g.const_int(2)))
    b.set_terminator(Goto(join))
    user = join.append(ArithOp(BinOp.ADD, def_a, g.const_int(10)))
    join.set_terminator(Return(user))
    return g, a, b, join, def_a, def_b, user


class TestRepairValue:
    def test_phi_inserted_at_join(self):
        g, a, b, join, def_a, def_b, user = two_defs_one_use()
        dom = DominatorTree(g)
        uses = [(user, 0)]
        phis = repair_value(g, dom, {a: def_a, b: def_b}, uses, INT)
        assert len(phis) == 1
        phi = phis[0]
        assert phi.block is join
        assert set(phi.inputs) == {def_a, def_b}
        assert user.inputs[0] is phi
        verify_graph(g)

    def test_phi_input_order_matches_predecessors(self):
        g, a, b, join, def_a, def_b, user = two_defs_one_use()
        dom = DominatorTree(g)
        (phi,) = repair_value(g, dom, {a: def_a, b: def_b}, [(user, 0)], INT)
        for pred, value in zip(join.predecessors, phi.inputs):
            assert (pred, value) in ((a, def_a), (b, def_b))

    def test_use_dominated_by_single_def_needs_no_phi(self):
        g = Graph("f", [("x", INT)], INT)
        x = g.parameters[0]
        b = g.new_block()
        g.entry.set_terminator(Goto(b))
        definition = g.entry.append(ArithOp(BinOp.ADD, x, g.const_int(1)))
        user = b.append(ArithOp(BinOp.MUL, x, x))
        b.set_terminator(Return(user))
        dom = DominatorTree(g)
        phis = repair_value(g, dom, {g.entry: definition}, [(user, 0)], INT)
        assert phis == []
        assert user.inputs[0] is definition
        verify_graph(g)

    def test_unused_inserted_phis_pruned(self):
        g, a, b, join, def_a, def_b, user = two_defs_one_use()
        dom = DominatorTree(g)
        # No uses to rewrite: nothing should survive.
        phis = repair_value(g, dom, {a: def_a, b: def_b}, [], INT)
        assert phis == []
        assert join.phis == []

    def test_phi_use_attributed_to_pred_edge(self):
        g, a, b, join, def_a, def_b, user = two_defs_one_use()
        # Add an existing phi in join using def_a along the a edge only.
        existing = Phi(join, INT, [def_a, g.const_int(0)])
        join.add_phi(existing)
        dom = DominatorTree(g)
        # Repair the phi use (slot 0 = the `a` edge) and the direct use.
        repair_value(
            g, dom, {a: def_a, b: def_b}, [(existing, 0), (user, 0)], INT
        )
        # Reaching def at end of a is def_a itself: the phi input is
        # unchanged, no new phi needed for it.
        assert existing.inputs[0] is def_a
        verify_graph(g)


class TestCollectExternalUses:
    def test_excludes_internal_uses(self):
        g = Graph("f", [("x", INT)], INT)
        x = g.parameters[0]
        b = g.new_block()
        g.entry.set_terminator(Goto(b))
        definition = g.entry.append(ArithOp(BinOp.ADD, x, g.const_int(1)))
        internal = g.entry.append(ArithOp(BinOp.MUL, definition, definition))
        external = b.append(ArithOp(BinOp.ADD, definition, g.const_int(2)))
        b.set_terminator(Return(external))
        uses = collect_external_uses(definition, within=g.entry)
        assert (external, 0) in uses
        assert all(user is not internal for user, _ in uses)

    def test_phi_use_block_is_predecessor(self):
        g, a, b, join, def_a, def_b, user = two_defs_one_use()
        phi = Phi(join, INT, [def_a, def_b])
        join.add_phi(phi)
        # The phi input from block `a` is consumed *in* block a.
        uses = collect_external_uses(def_a, within=a)
        assert (phi, 0) not in uses
        uses_elsewhere = collect_external_uses(def_a, within=g.entry)
        assert (phi, 0) in uses_elsewhere

    def test_terminator_uses_counted(self):
        g = Graph("f", [("x", INT)], INT)
        b = g.new_block()
        g.entry.set_terminator(Goto(b))
        definition = g.entry.append(ArithOp(BinOp.ADD, g.parameters[0], g.const_int(1)))
        b.set_terminator(Return(definition))
        uses = collect_external_uses(definition, within=g.entry)
        assert uses == [(b.terminator, 0)]


class TestLoopRepair:
    def test_def_in_loop_used_after(self):
        """A value redefined in a loop body used after the loop needs a
        phi at the header."""
        g = Graph("f", [("n", INT)], INT)
        n = g.parameters[0]
        header, body, exit_ = g.new_block("h"), g.new_block("b"), g.new_block("e")
        g.entry.set_terminator(Goto(header))
        iv = Phi(header, INT, [g.const_int(0)])
        header.add_phi(iv)
        cond = header.append(Compare(CmpOp.LT, iv, n))
        header.set_terminator(If(cond, body, exit_))
        inc = body.append(ArithOp(BinOp.ADD, iv, g.const_int(1)))
        body.set_terminator(Goto(header))
        iv._append_input(inc)
        pre_def = g.entry.append(ArithOp(BinOp.MUL, n, g.const_int(3)))
        user = exit_.append(ArithOp(BinOp.ADD, pre_def, g.const_int(5)))
        exit_.set_terminator(Return(user))
        verify_graph(g)

        # Now claim the value is also redefined in the body.
        dom = DominatorTree(g)
        phis = repair_value(
            g, dom, {g.entry: pre_def, body: inc}, [(user, 0)], INT
        )
        # A phi at the loop header merges the entry and back-edge defs.
        assert len(phis) == 1
        assert phis[0].block is header
        assert user.inputs[0] is phis[0]
        verify_graph(g)
