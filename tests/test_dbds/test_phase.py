"""Tests for the three-tier DBDS phase driver."""

import pytest

from repro.dbds.phase import DbdsConfig, DbdsPhase
from repro.dbds.tradeoff import TradeOffConfig
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import verify_graph, verify_program
from repro.costmodel.estimator import estimated_run_time


OPPORTUNITY_RICH = """
fn f(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 0; }
  var q: int = 2 + p;
  var r: int;
  if (q > 1) { r = q; } else { r = 7; }
  return r * 2;
}
"""


class TestDriver:
    def test_duplications_performed_and_verified(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        stats = DbdsPhase(program, DbdsConfig(paranoid=True)).run(graph)
        assert stats.duplications_performed > 0
        assert stats.candidates_simulated > 0
        verify_graph(graph)

    def test_semantics_preserved(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        expected = [Interpreter(program).run("f", [k]).value for k in range(-5, 6)]
        DbdsPhase(program, DbdsConfig(paranoid=True)).run(graph)
        actual = [Interpreter(program).run("f", [k]).value for k in range(-5, 6)]
        assert actual == expected

    def test_estimated_runtime_improves(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        before = estimated_run_time(graph)
        DbdsPhase(program).run(graph)
        assert estimated_run_time(graph) <= before

    def test_iteration_cap_respected(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        stats = DbdsPhase(program, DbdsConfig(max_iterations=1)).run(graph)
        assert stats.iterations == 1

    def test_max_three_iterations_default(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        stats = DbdsPhase(program).run(graph)
        assert stats.iterations <= 3

    def test_no_candidates_single_iteration(self):
        program = compile_source("fn f(x: int) -> int { return x + 1; }")
        graph = program.function("f")
        stats = DbdsPhase(program).run(graph)
        assert stats.duplications_performed == 0
        assert stats.iterations == 1

    def test_stats_sizes_recorded(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        stats = DbdsPhase(program).run(graph)
        assert stats.initial_size > 0
        assert stats.final_size > 0


class TestBudgetEnforcement:
    def test_tiny_unit_cap_blocks_duplication(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        config = DbdsConfig(trade_off=TradeOffConfig(max_unit_size=1.0))
        stats = DbdsPhase(program, config).run(graph)
        assert stats.duplications_performed == 0

    def test_increase_budget_limits_growth(self):
        # Many merges, tight growth budget: final size stays bounded.
        source = "fn f(x: int) -> int {\n  var acc: int = 0;\n"
        for i in range(8):
            source += (
                f"  var p{i}: int;\n"
                f"  if (x > {i}) {{ p{i} = x; }} else {{ p{i} = {i}; }}\n"
                f"  acc = acc + p{i} * 3;\n"
            )
        source += "  return acc;\n}\n"
        program = compile_source(source)
        graph = program.function("f")
        config = DbdsConfig(trade_off=TradeOffConfig(increase_budget=1.1))
        stats = DbdsPhase(program, config).run(graph)
        assert stats.final_size < stats.initial_size * 1.3


class TestDupalot:
    def test_dupalot_duplicates_at_least_as_much(self):
        source = OPPORTUNITY_RICH
        p1 = compile_source(source)
        g1 = p1.function("f")
        dbds_stats = DbdsPhase(p1).run(g1)
        p2 = compile_source(source)
        g2 = p2.function("f")
        dup_stats = DbdsPhase(p2, DbdsConfig(dupalot=True)).run(g2)
        assert dup_stats.duplications_performed >= dbds_stats.duplications_performed

    def test_dupalot_ignores_cost(self):
        """A positive-benefit candidate with cost beyond the budget is
        taken by dupalot but rejected by the trade-off tier."""
        # Cold-path opportunity with a fat merge block.
        source = """
fn f(x: int) -> int {
  var p: int;
  var w: int = x;
  if (x % 97 == 0) { p = 0; } else { p = x; }
  w = (w ^ (w >> 3)) + 11;
  w = (w | (w >> 5)) + 13;
  w = (w ^ (w >> 2)) + 17;
  w = (w + (w >> 7)) + 19;
  w = (w ^ (w >> 4)) + 23;
  w = (w | (w >> 6)) + 29;
  return p * 3 + w;
}
"""
        from repro.interp.profile import apply_profile, profile_program

        p1 = compile_source(source)
        collector = profile_program(p1, "f", [[k] for k in range(1, 60)])
        apply_profile(p1, collector)
        g1 = p1.function("f")
        strict = DbdsConfig(
            trade_off=TradeOffConfig(benefit_scale=4.0)
        )
        dbds_stats = DbdsPhase(p1, strict).run(g1)

        p2 = compile_source(source)
        collector = profile_program(p2, "f", [[k] for k in range(1, 60)])
        apply_profile(p2, collector)
        g2 = p2.function("f")
        dup_stats = DbdsPhase(p2, DbdsConfig(dupalot=True)).run(g2)
        assert dup_stats.duplications_performed > dbds_stats.duplications_performed

    def test_dupalot_semantics(self):
        program = compile_source(OPPORTUNITY_RICH)
        graph = program.function("f")
        expected = [Interpreter(program).run("f", [k]).value for k in range(-5, 6)]
        DbdsPhase(program, DbdsConfig(dupalot=True, paranoid=True)).run(graph)
        actual = [Interpreter(program).run("f", [k]).value for k in range(-5, 6)]
        assert actual == expected
