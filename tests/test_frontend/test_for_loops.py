"""Tests for the ``for`` statement (sugar for init + while + step)."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.frontend.lexer import CompileError
from repro.interp.interpreter import Interpreter
from repro.ir import verify_program
from tests.helpers import assert_configs_equivalent


def run(source: str, entry: str, args):
    program = compile_source(source)
    verify_program(program)
    return Interpreter(program).run(entry, args)


class TestBasics:
    def test_counting_loop(self):
        src = """
fn sum(n: int) -> int {
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}
"""
        assert run(src, "sum", [10]).value == 45
        assert run(src, "sum", [0]).value == 0

    def test_assignment_init(self):
        src = """
fn f(n: int) -> int {
  var k: int = 0;
  for (k = 1; k < n; k = k * 2) { }
  return k;
}
"""
        assert run(src, "f", [100]).value == 128

    def test_nested_for(self):
        src = """
fn f(n: int) -> int {
  var t: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    for (var j: int = 0; j < i; j = j + 1) { t = t + 1; }
  }
  return t;
}
"""
        assert run(src, "f", [6]).value == 15

    def test_early_return_skips_step(self):
        src = """
fn f(n: int) -> int {
  for (var i: int = 0; i < n; i = i + 1) {
    if (i == 5) { return i * 100; }
  }
  return 0 - 1;
}
"""
        assert run(src, "f", [10]).value == 500
        assert run(src, "f", [3]).value == -1

    def test_step_over_field(self):
        src = """
class C { v: int; }
fn f(n: int) -> int {
  var c: C = new C { v = 0 };
  var t: int = 0;
  for (c.v = 0; c.v < n; c.v = c.v + 2) { t = t + c.v; }
  return t;
}
"""
        assert run(src, "f", [10]).value == 0 + 2 + 4 + 6 + 8

    def test_loop_over_array(self):
        src = """
fn f(n: int) -> int {
  var xs: int[] = new int[n];
  for (var i: int = 0; i < len(xs); i = i + 1) { xs[i] = i * i; }
  var s: int = 0;
  for (var i: int = 0; i < len(xs); i = i + 1) { s = s + xs[i]; }
  return s;
}
"""
        assert run(src, "f", [5]).value == 30


class TestScoping:
    def test_induction_variable_scoped_to_loop(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_source(
                "fn f(n: int) -> int { for (var i: int = 0; i < n; i = i + 1) { } return i; }"
            )

    def test_same_name_in_sequential_loops(self):
        src = """
fn f(n: int) -> int {
  var t: int = 0;
  for (var i: int = 0; i < n; i = i + 1) { t = t + 1; }
  for (var i: int = 0; i < n; i = i + 1) { t = t + 10; }
  return t;
}
"""
        assert run(src, "f", [3]).value == 33


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "fn f() { for (;;) { } }",
            "fn f(n: int) { for (var i: int = 0; i < n) { } }",
            "fn f(n: int) { for (var i: int = 0, i < n, i = i + 1) { } }",
            "fn f(n: int) { for (1 + 2 = 3; true; x = 1) { } }",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(CompileError):
            compile_source(source)


class TestOptimizationInterplay:
    def test_all_configs_agree_on_for_loops(self):
        src = """
fn kernel(x: int) -> int {
  var p: int;
  if (x > 3) { p = x; } else { p = 2; }
  return p * 3;
}
fn main(n: int) -> int {
  var acc: int = 0;
  for (var i: int = 0; i < n; i = i + 1) { acc = acc + kernel(i); }
  return acc;
}
"""
        assert_configs_equivalent(src, "main", [[0], [4], [12]])
