"""Instruction and whole-graph cloning.

Three consumers:

* the **backtracking baseline** (Algorithm 1 of the paper) copies the
  entire CFG before every tentative duplication — the very cost the
  simulation tier exists to avoid;
* the **duplication transformation** clones the instructions of one
  merge block into each predecessor;
* the **inliner** clones a callee graph into a caller.
"""

from __future__ import annotations

from typing import Callable, Optional

from .block import Block
from .graph import Graph
from .nodes import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    Call,
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    Parameter,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
    Terminator,
    Value,
)

ValueMapper = Callable[[Value], Value]


def clone_order(graph: Graph) -> list[Block]:
    """Blocks in an order where definitions precede their uses: reverse
    post order first, then any unreachable stragglers."""
    from .cfgutils import reverse_post_order

    order = reverse_post_order(graph)
    seen = set(order)
    order.extend(b for b in graph.blocks if b not in seen)
    return order


def clone_instruction(instruction: Instruction, mapper: ValueMapper) -> Instruction:
    """Create a fresh copy of ``instruction`` with mapped operands.

    Phis are not handled here — they are positional per predecessor and
    every cloning context treats them specially.
    """
    ins = instruction
    if isinstance(ins, ArithOp):
        return ArithOp(ins.op, mapper(ins.x), mapper(ins.y))
    if isinstance(ins, Compare):
        return Compare(ins.op, mapper(ins.x), mapper(ins.y))
    if isinstance(ins, Not):
        return Not(mapper(ins.x))
    if isinstance(ins, Neg):
        return Neg(mapper(ins.x))
    if isinstance(ins, New):
        return New(ins.object_type)
    if isinstance(ins, LoadField):
        return LoadField(mapper(ins.obj), ins.field, ins.type)
    if isinstance(ins, StoreField):
        return StoreField(mapper(ins.obj), ins.field, mapper(ins.value))
    if isinstance(ins, LoadGlobal):
        return LoadGlobal(ins.global_name, ins.type)
    if isinstance(ins, StoreGlobal):
        return StoreGlobal(ins.global_name, mapper(ins.value))
    if isinstance(ins, NewArray):
        return NewArray(ins.element_type, mapper(ins.length))
    if isinstance(ins, ArrayLoad):
        return ArrayLoad(mapper(ins.array), mapper(ins.index), ins.type)
    if isinstance(ins, ArrayStore):
        return ArrayStore(mapper(ins.array), mapper(ins.index), mapper(ins.value))
    if isinstance(ins, ArrayLength):
        return ArrayLength(mapper(ins.array))
    if isinstance(ins, Call):
        return Call(ins.callee, [mapper(a) for a in ins.args], ins.type)
    raise TypeError(f"cannot clone {type(ins).__name__}")


def clone_terminator(
    terminator: Terminator,
    mapper: ValueMapper,
    block_map: Callable[[Block], Block],
) -> Terminator:
    """Copy a terminator with mapped operands and remapped targets.

    The returned terminator is *detached*: install it with
    ``set_terminator`` so predecessor lists are updated.
    """
    term = terminator
    if isinstance(term, Goto):
        return Goto(block_map(term.target))
    if isinstance(term, If):
        return If(
            mapper(term.condition),
            block_map(term.true_target),
            block_map(term.false_target),
            term.true_probability,
        )
    if isinstance(term, Return):
        return Return(mapper(term.value) if term.value is not None else None)
    raise TypeError(f"cannot clone terminator {type(term).__name__}")


def copy_graph(graph: Graph) -> tuple[Graph, dict[Value, Value]]:
    """Deep-copy a function graph.

    Returns the copy together with the old-value → new-value map (the
    backtracking baseline uses the map to locate corresponding merges).
    """
    new_graph = Graph(
        graph.name,
        [(p.param_name, p.type) for p in graph.parameters],
        graph.return_type,
    )
    value_map: dict[Value, Value] = {}
    for old_p, new_p in zip(graph.parameters, new_graph.parameters):
        value_map[old_p] = new_p

    block_map: dict[Block, Block] = {graph.entry: new_graph.entry}
    for block in graph.blocks:
        if block is graph.entry:
            continue
        block_map[block] = new_graph.new_block(block._name)
    for block, new_block in block_map.items():
        trips = getattr(block, "profile_trip_count", None)
        if trips is not None:
            new_block.profile_trip_count = trips

    def mapped(value: Value) -> Value:
        replacement = value_map.get(value)
        if replacement is not None:
            return replacement
        if isinstance(value, Constant):
            replacement = new_graph.constant(value.value, value.type)
            value_map[value] = replacement
            return replacement
        raise KeyError(f"unmapped value {value!r} during graph copy")

    # Pass 1: create phis with empty inputs (they may reference values
    # defined later / cyclically) and clone straight-line instructions.
    # Instructions are cloned in reverse post order: every definition's
    # block precedes its uses' blocks there (dominators come first),
    # which graph.blocks (creation order) does not guarantee after
    # block-restructuring phases.
    order = clone_order(graph)
    pending_phis: list[tuple[Phi, Phi]] = []
    for block in order:
        new_block = block_map[block]
        for phi in block.phis:
            new_phi = Phi(new_block, phi.type, [])
            new_block.add_phi(new_phi)
            value_map[phi] = new_phi
            pending_phis.append((phi, new_phi))

    for block in order:
        new_block = block_map[block]
        for ins in block.instructions:
            new_ins = clone_instruction(ins, mapped)
            new_block.append(new_ins)
            value_map[ins] = new_ins

    # Pass 2: terminators (this wires predecessor lists in CFG order
    # identical to the original because we iterate blocks in creation
    # order and set_terminator appends predecessors).
    for block in graph.blocks:
        if block.terminator is None:
            continue
        new_term = clone_terminator(
            block.terminator, mapped, lambda b: block_map[b]
        )
        block_map[block].set_terminator(new_term)

    # Predecessor *order* must match for positional phi inputs; enforce
    # it explicitly rather than relying on iteration order.
    for block in graph.blocks:
        new_block = block_map[block]
        desired = [block_map[p] for p in block.predecessors]
        if new_block.predecessors != desired:
            new_block.predecessors = desired

    # Pass 3: fill phi inputs.
    for old_phi, new_phi in pending_phis:
        for value in old_phi.inputs:
            new_phi._append_input(mapped(value))

    return new_graph, value_map
