"""Superinstruction fusion: combining hot adjacent opcode pairs.

The flat-tuple dispatch loop pays one full handler round-trip per
bytecode instruction.  This pass mines the hottest *adjacent opcode
pairs* — weighted by :class:`~repro.vm.profiler.VMProfile` per-block
cycle attribution when a profile is available, by the static
:meth:`Graph.block_frequencies` estimate otherwise — and rewrites each
eligible occurrence in a function's fast stream (``fn.xcode``) into a
single **superinstruction** that executes both halves under one
dispatch.

Encoding invariants (shared with :mod:`repro.vm.quicken` and the
machine's fast loops):

* every fast-stream tuple ends with its **step weight** (``ins[-1]``:
  1 plain, 2 for fused pairs, 3 for fused wrap64 triples) so
  metered/budget accounting stays exact;
* a weight-``w`` tuple carries the tuple of its ``w - 1`` **unfused
  prefix halves** at ``ins[-2]`` so the budget slow path can stop
  anywhere inside the run with reference timing
  (:meth:`VirtualMachine._budget_stop`);
* the fused cycle cost is the exact sum of both halves' baked costs;
* fusion never consumes a jump target as a second half, and the
  consumed slot keeps its original tuple as never-executed padding, so
  every pc and edge descriptor in the stream stays valid — no
  backpatching, and the disassembler keeps working;
* only **non-trapping** ops fuse (no div/mod, loads/stores of fields
  and arrays, calls), so a fused handler can never raise mid-pair.

The compare+branch family is special-cased: ``cmp; if`` on the
compare's result is the single hottest pair in loop code, so it is
always fused — into one handler that computes the condition, still
writes the compare's destination register (SSA users may read it),
and takes the edge including phi moves, all in one dispatch.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs.metrics import current_registry
from .bytecode import (
    OP_ADD,
    OP_AND,
    OP_EQ,
    OP_GE,
    OP_GOTO,
    OP_GT,
    OP_IF,
    OP_LE,
    OP_LOAD_GLOBAL,
    OP_LT,
    OP_MUL,
    OP_NE,
    OP_NEG,
    OP_NEW,
    OP_NOT,
    OP_OR,
    OP_RETURN,
    OP_SHL,
    OP_SHR,
    OP_STORE_GLOBAL,
    OP_SUB,
    OP_USHR,
    OP_XOR,
    OPCODE_NAMES,
    BytecodeProgram,
)
from .machine import _MASK, _SIGN, _TWO64, _HANDLERS, _is_ref, register_xop
from .opspec import OpSpec, register_opspec

#: how many mined pairs beyond the always-fused cmp+branch family get
#: superinstructions.  Twelve, because the specialized arithmetic pair
#: handlers below make fusing a pair essentially free — the only cost
#: of a larger plan is xcode rewriting at translation time.
DEFAULT_TOP_PAIRS = 12

#: value-producing opcodes that can never trap — the only ops allowed
#: inside a superinstruction (a fused handler must not raise mid-pair)
NONTRAP_OPS = frozenset(
    (
        OP_ADD, OP_SUB, OP_MUL, OP_AND, OP_OR, OP_XOR,
        OP_SHL, OP_SHR, OP_USHR,
        OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE,
        OP_NOT, OP_NEG, OP_NEW, OP_LOAD_GLOBAL, OP_STORE_GLOBAL,
    )
)

_CMP_OPS = (OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE)


# ----------------------------------------------------------------------
# Fused handlers.  Same (vm, ins, regs, pc) -> next pc contract as the
# base table; registered into machine.XHANDLERS at import time (the
# package __init__ fixes the import order, so opcode numbers are
# deterministic and pickle-stable).
#
# Compare+If layout:
#   (op, costA+costB, node_if, cmp_dest, rx, ry, true_edge, false_edge,
#    first_half, 2)
# These run only in the fast loops (no profile, no observer), so the
# edge transfer is just the phi moves.
# ----------------------------------------------------------------------
def _take_fused_edge(regs, edge):
    if edge[1]:
        for d, s in edge[1]:
            regs[d] = regs[s]
    return edge[0]


def _op_if_eq(vm, ins, regs, pc):
    a, b = regs[ins[4]], regs[ins[5]]
    c = a is b if _is_ref(a) or _is_ref(b) else a == b
    regs[ins[3]] = c
    return _take_fused_edge(regs, ins[6] if c else ins[7])


def _op_if_ne(vm, ins, regs, pc):
    a, b = regs[ins[4]], regs[ins[5]]
    c = not (a is b if _is_ref(a) or _is_ref(b) else a == b)
    regs[ins[3]] = c
    return _take_fused_edge(regs, ins[6] if c else ins[7])


def _op_if_lt(vm, ins, regs, pc):
    c = regs[ins[4]] < regs[ins[5]]
    regs[ins[3]] = c
    return _take_fused_edge(regs, ins[6] if c else ins[7])


def _op_if_le(vm, ins, regs, pc):
    c = regs[ins[4]] <= regs[ins[5]]
    regs[ins[3]] = c
    return _take_fused_edge(regs, ins[6] if c else ins[7])


def _op_if_gt(vm, ins, regs, pc):
    c = regs[ins[4]] > regs[ins[5]]
    regs[ins[3]] = c
    return _take_fused_edge(regs, ins[6] if c else ins[7])


def _op_if_ge(vm, ins, regs, pc):
    c = regs[ins[4]] >= regs[ins[5]]
    regs[ins[3]] = c
    return _take_fused_edge(regs, ins[6] if c else ins[7])


# Generic pair: (op, costA+costB, nodeA, -1, tupleA, tupleB, tupleA, 2).
# Both halves run through the *base* handler table (they are plain,
# unfused, unquickened tuples), so semantics are exactly sequential.
def _op_fused2(vm, ins, regs, pc):
    a = ins[4]
    _HANDLERS[a[0]](vm, a, regs, pc)
    b = ins[5]
    return _HANDLERS[b[0]](vm, b, regs, pc + 1)


# Op+goto: (op, costA+costB, nodeA, -1, tupleA, edge, tupleA, 2) — the
# loop-latch pattern (`i = i + 1; goto header`) in one dispatch.
def _op_fused_goto(vm, ins, regs, pc):
    a = ins[4]
    _HANDLERS[a[0]](vm, a, regs, pc)
    return _take_fused_edge(regs, ins[5])


OP_IF_EQ = register_xop(_op_if_eq)
OP_IF_NE = register_xop(_op_if_ne)
OP_IF_LT = register_xop(_op_if_lt)
OP_IF_LE = register_xop(_op_if_le)
OP_IF_GT = register_xop(_op_if_gt)
OP_IF_GE = register_xop(_op_if_ge)
OP_FUSED2 = register_xop(_op_fused2)
OP_FUSED_GOTO = register_xop(_op_fused_goto)

_CMP_TO_FUSED_IF = dict(
    zip(_CMP_OPS, (OP_IF_EQ, OP_IF_NE, OP_IF_LT, OP_IF_LE, OP_IF_GT, OP_IF_GE))
)

for _cmp, _xop in _CMP_TO_FUSED_IF.items():
    register_opspec(_xop, OpSpec(
        f"if_{OPCODE_NAMES[_cmp]}", "fused-if", weight=2,
        origin=(_cmp, OP_IF),
    ))
del _cmp, _xop
# The generic forms embed arbitrary constituent tuples, so their origin
# is open-ended (any NONTRAP_OPS combination) — left empty here; the
# decompile-equivalence checker validates the embedded tuples instead.
register_opspec(OP_FUSED2, OpSpec("fused2", "fused2", weight=2))
register_opspec(OP_FUSED_GOTO, OpSpec("fused_goto", "fused2-goto", weight=2))


# ----------------------------------------------------------------------
# Specialized arithmetic superinstructions.  The generic ``_op_fused2``
# trades two dispatches for one but still pays *two inner handler
# calls* — in CPython the calls are the expensive part, so generic
# fusion barely beats the flat stream.  The by-far hottest fused
# family on the benchmark suites is "wrap64 binop; wrap64 binop", and
# for that family the handlers generated below inline both bodies:
# the pair costs ONE dispatch and zero calls.  They are exec-generated
# in a fixed (sorted) nested order at import time, so extended opcode
# numbers stay deterministic and pickle-stable.
#
# Pair layout:   (xop, costA+costB, nodeA, destA, xA, yA,
#                 destB, xB, yB, first_half, 2)
# Op+goto layout (the loop-latch `i = i + 1; goto header`):
#                (xop, costA+costB, nodeA, destA, xA, yA,
#                 edge, first_half, 2)
# Flat operand slots — no nested tuple indexing on the hot path; slot
# ``-2`` still carries the unfused first half for
# :meth:`VirtualMachine._budget_stop`, slot ``-1`` the step weight.
# ----------------------------------------------------------------------
_WRAP_EXPR = {
    OP_ADD: "regs[ins[{x}]] + regs[ins[{y}]]",
    OP_SUB: "regs[ins[{x}]] - regs[ins[{y}]]",
    OP_MUL: "regs[ins[{x}]] * regs[ins[{y}]]",
    OP_AND: "regs[ins[{x}]] & regs[ins[{y}]]",
    OP_OR: "regs[ins[{x}]] | regs[ins[{y}]]",
    OP_XOR: "regs[ins[{x}]] ^ regs[ins[{y}]]",
    OP_SHL: "regs[ins[{x}]] << (regs[ins[{y}]] & 63)",
    OP_SHR: "regs[ins[{x}]] >> (regs[ins[{y}]] & 63)",
    OP_USHR: "(regs[ins[{x}]] & _MASK) >> (regs[ins[{y}]] & 63)",
}


def _gen_xop(name: str, body: str) -> int:
    ns = {"_MASK": _MASK, "_SIGN": _SIGN, "_TWO64": _TWO64}
    exec(compile(f"def {name}(vm, ins, regs, pc):\n{body}",
                 f"<fusion:{name}>", "exec"), ns)
    return register_xop(ns[name])


#: (op_a, op_b) -> fully inlined pair superinstruction opcode
_PAIR_XOPS: dict[tuple[int, int], int] = {}
#: op_a -> fully inlined op+goto superinstruction opcode
_GOTO_XOPS: dict[int, int] = {}

for _op_a in sorted(_WRAP_EXPR):
    _ea = _WRAP_EXPR[_op_a].format(x=4, y=5)
    for _op_b in sorted(_WRAP_EXPR):
        _eb = _WRAP_EXPR[_op_b].format(x=7, y=8)
        _PAIR_XOPS[(_op_a, _op_b)] = register_opspec(_gen_xop(
            f"_op_{OPCODE_NAMES[_op_a]}_{OPCODE_NAMES[_op_b]}",
            f"    v = ({_ea}) & _MASK\n"
            f"    regs[ins[3]] = v - _TWO64 if v & _SIGN else v\n"
            f"    v = ({_eb}) & _MASK\n"
            f"    regs[ins[6]] = v - _TWO64 if v & _SIGN else v\n"
            f"    return pc + 2\n",
        ), OpSpec(
            f"{OPCODE_NAMES[_op_a]}_{OPCODE_NAMES[_op_b]}", "fused-pair",
            weight=2, origin=(_op_a, _op_b),
        ))
    _GOTO_XOPS[_op_a] = register_opspec(_gen_xop(
        f"_op_{OPCODE_NAMES[_op_a]}_goto",
        f"    v = ({_ea}) & _MASK\n"
        f"    regs[ins[3]] = v - _TWO64 if v & _SIGN else v\n"
        f"    edge = ins[6]\n"
        f"    if edge[1]:\n"
        f"        for d, s in edge[1]:\n"
        f"            regs[d] = regs[s]\n"
        f"    return edge[0]\n",
    ), OpSpec(
        f"{OPCODE_NAMES[_op_a]}_goto", "fused-goto",
        weight=2, origin=(_op_a, OP_GOTO),
    ))
del _op_a, _op_b, _ea, _eb

#: (op_a, op_b, op_c) -> fully inlined triple superinstruction opcode.
#: Triples layout: (xop, costA+costB+costC, nodeA, destA, xA, yA,
#: destB, xB, yB, destC, xC, yC, (first_half, second_half), 3).
#: All 729 combinations are generated in one exec unit (one compile is
#: far cheaper at import time than 729) in sorted order, so opcode
#: numbers stay deterministic.
_TRIPLE_XOPS: dict[tuple[int, int, int], int] = {}


def _gen_triples() -> None:
    chunks = []
    names = []
    for op_a in sorted(_WRAP_EXPR):
        ea = _WRAP_EXPR[op_a].format(x=4, y=5)
        for op_b in sorted(_WRAP_EXPR):
            eb = _WRAP_EXPR[op_b].format(x=7, y=8)
            for op_c in sorted(_WRAP_EXPR):
                ec = _WRAP_EXPR[op_c].format(x=10, y=11)
                name = (
                    f"_op_{OPCODE_NAMES[op_a]}_{OPCODE_NAMES[op_b]}"
                    f"_{OPCODE_NAMES[op_c]}"
                )
                chunks.append(
                    f"def {name}(vm, ins, regs, pc):\n"
                    f"    v = ({ea}) & _MASK\n"
                    f"    regs[ins[3]] = v - _TWO64 if v & _SIGN else v\n"
                    f"    v = ({eb}) & _MASK\n"
                    f"    regs[ins[6]] = v - _TWO64 if v & _SIGN else v\n"
                    f"    v = ({ec}) & _MASK\n"
                    f"    regs[ins[9]] = v - _TWO64 if v & _SIGN else v\n"
                    f"    return pc + 3\n"
                )
                names.append(((op_a, op_b, op_c), name))
    ns = {"_MASK": _MASK, "_SIGN": _SIGN, "_TWO64": _TWO64}
    exec(compile("\n".join(chunks), "<fusion:triples>", "exec"), ns)
    for key, name in names:
        _TRIPLE_XOPS[key] = register_opspec(
            register_xop(ns[name]),
            OpSpec(name[4:], "fused-triple", weight=3, origin=key),
        )


_gen_triples()

# Everything from the first specialized pair onward — the pair, goto
# and triple xops above plus quickening's forms, registered later —
# is a plain compute handler, so the fast loops range-dispatch them
# with one compare (see machine.bind_fast_ops for the contract).  The
# measured-hottest fused branches below that base additionally get
# inline arms.
from .machine import bind_fast_ops  # noqa: E402  (needs the xops above)

bind_fast_ops(
    spec_base=min(_PAIR_XOPS.values()),
    if_lt=OP_IF_LT,
    if_gt=OP_IF_GT,
    if_ge=OP_IF_GE,
)


# ----------------------------------------------------------------------
# Mining
# ----------------------------------------------------------------------
def _pair_eligible(a: tuple, b: tuple) -> bool:
    """Can ``a; b`` become one superinstruction (generic fusion)?"""
    if a[0] not in NONTRAP_OPS:
        return False
    return b[0] in NONTRAP_OPS or b[0] in (OP_GOTO, OP_IF, OP_RETURN)


def mine_hot_pairs(
    program,
    bytecode: BytecodeProgram,
    vmprofile: Optional[Any] = None,
    top: int = DEFAULT_TOP_PAIRS,
) -> tuple:
    """The ``top`` hottest fusable adjacent opcode pairs, hottest first.

    Every eligible adjacent pair inside a basic block is weighted by
    the block's hotness: measured cycles from a
    :class:`~repro.vm.profiler.VMProfile` when one is supplied
    (``repro profile`` output), the static
    :meth:`Graph.block_frequencies` estimate otherwise.  Ties break on
    opcode numbers, so the plan is deterministic for a given input —
    cached artifacts fused in parallel workers are byte-identical to
    serial ones.
    """
    measured: dict[tuple[str, str], float] = {}
    if vmprofile is not None:
        for block, (fn_name, _steps, cycles) in vmprofile._blocks.items():
            key = (fn_name, block.name)
            measured[key] = measured.get(key, 0.0) + cycles
    weights: dict[tuple[int, int], float] = {}
    for name, graph in program.functions.items():
        fn = bytecode.functions.get(name)
        if fn is None or not fn.blocks:
            continue
        static = {
            block.name: freq
            for block, freq in graph.block_frequencies().frequency.items()
        }
        for start, count, block_name in fn.blocks:
            if vmprofile is not None:
                hotness = measured.get((name, block_name), 0.0)
            else:
                hotness = static.get(block_name, 0.0)
            if hotness <= 0.0:
                continue
            for pc in range(start, start + count - 1):
                a, b = fn.code[pc], fn.code[pc + 1]
                if _pair_eligible(a, b):
                    pair = (a[0], b[0])
                    weights[pair] = weights.get(pair, 0.0) + hotness
    ranked = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    return tuple(pair for pair, _ in ranked[:top])


# ----------------------------------------------------------------------
# The peephole pass
# ----------------------------------------------------------------------
def _jump_targets(code: tuple) -> set[int]:
    targets = set()
    for ins in code:
        op = ins[0]
        if op == OP_GOTO:
            targets.add(ins[4][0])
        elif op == OP_IF:
            targets.add(ins[5][0])
            targets.add(ins[6][0])
    return targets


def _fuse_pair(a: tuple, b: tuple, plan: tuple) -> Optional[tuple]:
    """The superinstruction for ``a; b``, or None to keep them apart."""
    op_a, op_b = a[0], b[0]
    if op_a in _CMP_OPS and op_b == OP_IF and b[4] == a[3]:
        # cmp + branch-on-its-result: always fused, fully inlined.
        return (
            _CMP_TO_FUSED_IF[op_a], a[1] + b[1], b[2], a[3], a[4], a[5],
            b[5], b[6], (a,), 2,
        )
    if op_a in _WRAP_EXPR and op_b in _WRAP_EXPR:
        # Wrap64 binop pair: always fused — the specialized handlers
        # exist for every combination, so no mining gate is needed.
        return (
            _PAIR_XOPS[(op_a, op_b)], a[1] + b[1], a[2], a[3], a[4], a[5],
            b[3], b[4], b[5], (a,), 2,
        )
    if (op_a, op_b) not in plan or not _pair_eligible(a, b):
        return None
    if op_b == OP_GOTO:
        xop = _GOTO_XOPS.get(op_a)
        if xop is not None:
            return (xop, a[1] + b[1], a[2], a[3], a[4], a[5], b[4], (a,), 2)
        return (OP_FUSED_GOTO, a[1] + b[1], a[2], -1, a, b[4], (a,), 2)
    return (OP_FUSED2, a[1] + b[1], a[2], -1, a, b, (a,), 2)


def _fuse_triple(a: tuple, b: tuple, c: tuple) -> tuple:
    """The flat superinstruction for a wrap64-binop run ``a; b; c``."""
    return (
        _TRIPLE_XOPS[(a[0], b[0], c[0])], a[1] + b[1] + c[1], a[2],
        a[3], a[4], a[5], b[3], b[4], b[5], c[3], c[4], c[5], (a, b), 3,
    )


def fuse_function(fn, plan: tuple) -> int:
    """Build ``fn.xcode`` from ``fn.code``; returns fused-site count.

    The fast stream is a *list* (quickening rewrites sites in place)
    whose slots correspond 1:1 to ``fn.code`` pcs: a fused pair lives
    in the first slot, and the second slot keeps the original tuple as
    unreachable padding.
    """
    code = fn.code
    targets = _jump_targets(code)
    xcode: list = [ins + (1,) for ins in code]
    n = len(code)
    fused = 0
    pc = 0
    while pc < n - 1:
        if pc + 1 in targets:
            pc += 1
            continue
        a, b = code[pc], code[pc + 1]
        # Straight-line wrap64 runs fuse greedily, longest form first:
        # a run can never cross a block boundary (every block ends in a
        # terminator, which is not a wrap64 binop), and the jump-target
        # checks keep every consumed slot unreachable padding.
        if (
            a[0] in _WRAP_EXPR
            and b[0] in _WRAP_EXPR
            and pc + 2 < n
            and pc + 2 not in targets
            and code[pc + 2][0] in _WRAP_EXPR
        ):
            xcode[pc] = _fuse_triple(a, b, code[pc + 2])
            fused += 1
            pc += 3
            continue
        combined = _fuse_pair(a, b, plan)
        if combined is not None:
            xcode[pc] = combined
            fused += 1
            pc += 2
        else:
            pc += 1
    fn.xcode = xcode
    fn.quickened = False
    return fused


def fuse_program(
    program,
    bytecode: BytecodeProgram,
    vmprofile: Optional[Any] = None,
    top: int = DEFAULT_TOP_PAIRS,
) -> tuple:
    """Mine hot pairs over the whole program and fuse every function.

    Returns the mined plan (the fused pair list, hottest first).  The
    always-fused cmp+branch family is not part of the plan.
    """
    plan = mine_hot_pairs(program, bytecode, vmprofile=vmprofile, top=top)
    registry = current_registry()
    for fn in bytecode.functions.values():
        if not fn.blocks:
            continue  # legacy/partial translation: no span info, no fusion
        fused = fuse_function(fn, plan)
        if fused and registry.enabled:
            registry.inc("repro_vm_fused_sites_total", fused, function=fn.name)
    return plan


__all__ = [
    "DEFAULT_TOP_PAIRS",
    "NONTRAP_OPS",
    "OP_FUSED2",
    "OP_FUSED_GOTO",
    "OP_IF_EQ",
    "OP_IF_GE",
    "OP_IF_GT",
    "OP_IF_LE",
    "OP_IF_LT",
    "OP_IF_NE",
    "fuse_function",
    "fuse_program",
    "mine_hot_pairs",
]
