"""``repro.pipeline`` — compilation driver, configurations, batching
and the persistent artifact cache.

* :mod:`repro.pipeline.compiler` — the phase pipeline for one unit;
* :mod:`repro.pipeline.config` — the paper's named configurations;
* :mod:`repro.pipeline.batch` — parallel many-file compilation;
* :mod:`repro.pipeline.cache` — on-disk artifact cache keyed by
  *(source hash, config fingerprint, repro version)*.

See docs/PIPELINE.md for the batching/caching architecture.
"""

from .batch import BatchOptions, BatchReport, FileResult, compile_batch
from .cache import (
    ArtifactCache,
    CacheEntry,
    CacheStats,
    artifact_manifest,
    cache_key,
    config_fingerprint,
    make_entry,
    normalize_ir,
)
from .compiler import (
    CompilationReport,
    Compiler,
    ENGINES,
    UnitMetrics,
    compile_and_profile,
    measure_performance,
)
from .config import (
    BACKTRACKING,
    BASELINE,
    CONFIGURATIONS,
    DBDS,
    DUPALOT,
    CompilerConfig,
)

__all__ = [
    "ArtifactCache",
    "BACKTRACKING",
    "BASELINE",
    "BatchOptions",
    "BatchReport",
    "CacheEntry",
    "CacheStats",
    "CompilationReport",
    "Compiler",
    "CompilerConfig",
    "CONFIGURATIONS",
    "DBDS",
    "DUPALOT",
    "ENGINES",
    "FileResult",
    "UnitMetrics",
    "artifact_manifest",
    "cache_key",
    "compile_and_profile",
    "compile_batch",
    "config_fingerprint",
    "make_entry",
    "measure_performance",
    "normalize_ir",
]
