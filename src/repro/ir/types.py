"""Type system for the MiniLang IR.

The language is deliberately small but covers everything the DBDS paper's
opportunity catalog (Section 2) needs: machine integers, booleans,
reference types with named fields (for partial escape analysis and read
elimination), and arrays (for the array-heavy Octane-style workloads).

Types are immutable value objects; object types are interned by name in a
:class:`ClassTable` owned by the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Type:
    """Base class for all MiniLang types."""

    def is_primitive(self) -> bool:
        return False

    def is_reference(self) -> bool:
        return False

    def default_value(self):
        """The value a field/array slot of this type is initialized to."""
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(Type):
    """64-bit signed integer (Python ints wrapped to 64 bits on overflow)."""

    def is_primitive(self) -> bool:
        return True

    def default_value(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "int"


@dataclass(frozen=True)
class BoolType(Type):
    def is_primitive(self) -> bool:
        return True

    def default_value(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidType(Type):
    def default_value(self):
        return None

    def __repr__(self) -> str:
        return "void"


@dataclass(frozen=True)
class NullType(Type):
    """The type of the ``null`` literal; assignable to any reference type."""

    def is_reference(self) -> bool:
        return True

    def default_value(self):
        return None

    def __repr__(self) -> str:
        return "null"


@dataclass(frozen=True)
class ObjectType(Type):
    """A reference to an instance of a declared class."""

    class_name: str

    def is_reference(self) -> bool:
        return True

    def default_value(self):
        return None

    def __repr__(self) -> str:
        return self.class_name


@dataclass(frozen=True)
class ArrayType(Type):
    """A reference to an array with a fixed element type."""

    element: Type

    def is_reference(self) -> bool:
        return True

    def default_value(self):
        return None

    def __repr__(self) -> str:
        return f"{self.element!r}[]"


INT = IntType()
BOOL = BoolType()
VOID = VoidType()
NULL = NullType()


def assignable(target: Type, source: Type) -> bool:
    """Whether a value of ``source`` type may flow into a ``target`` slot.

    MiniLang has no subclassing; the only non-trivial rule is that the
    ``null`` literal is assignable to every reference type.
    """
    if target == source:
        return True
    if target.is_reference() and isinstance(source, NullType):
        return True
    return False


def join(a: Type, b: Type) -> Type:
    """Least common type of two branch values meeting at a merge."""
    if a == b:
        return a
    if isinstance(a, NullType) and b.is_reference():
        return b
    if isinstance(b, NullType) and a.is_reference():
        return a
    raise TypeError(f"incompatible types at merge: {a!r} vs {b!r}")


@dataclass
class FieldDecl:
    """A single field of a class declaration."""

    name: str
    type: Type


@dataclass
class ClassDecl:
    """A class declaration: a name and an ordered list of typed fields."""

    name: str
    fields: list[FieldDecl] = field(default_factory=list)

    def field_type(self, name: str) -> Type:
        for f in self.fields:
            if f.name == name:
                return f.type
        raise KeyError(f"class {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)


class ClassTable:
    """All class declarations of a program, keyed by name."""

    def __init__(self) -> None:
        self._classes: dict[str, ClassDecl] = {}

    def declare(self, decl: ClassDecl) -> ObjectType:
        if decl.name in self._classes:
            raise ValueError(f"duplicate class {decl.name!r}")
        self._classes[decl.name] = decl
        return ObjectType(decl.name)

    def lookup(self, name: str) -> ClassDecl:
        return self._classes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def names(self) -> list[str]:
        return list(self._classes)
