"""Human-readable IR dumps (thin wrappers over ``describe``)."""

from __future__ import annotations

from .graph import Graph, Program


def format_graph(graph: Graph) -> str:
    """Full textual dump of one function graph in RPO."""
    return graph.describe()


def format_program(program: Program) -> str:
    """Textual dump of every function of a program."""
    return program.describe()
