"""Tests for CFG traversals and structural cleanup passes."""

import pytest

from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
    verify_graph,
)
from repro.ir.cfgutils import (
    canonical_cfg_cleanup,
    fold_redundant_ifs,
    insert_block_on_edge,
    merge_straightline_blocks,
    predecessor_pairs,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_post_order,
    simplify_degenerate_phis,
    split_critical_edges,
)


class TestReversePostOrder:
    def test_entry_first(self, diamond):
        order = reverse_post_order(diamond["graph"])
        assert order[0] is diamond["graph"].entry

    def test_merge_after_predecessors(self, diamond):
        order = reverse_post_order(diamond["graph"])
        merge = diamond["merge"]
        assert order.index(merge) > order.index(diamond["true_block"])
        assert order.index(merge) > order.index(diamond["false_block"])

    def test_excludes_unreachable(self, diamond):
        g = diamond["graph"]
        dead = g.new_block("dead")
        dead.set_terminator(Return(None))
        assert dead not in reverse_post_order(g)
        assert dead not in reachable_blocks(g)

    def test_loop_header_before_body(self):
        g = Graph("loop", [("n", INT)], INT)
        header, body, exit_ = g.new_block("h"), g.new_block("b"), g.new_block("e")
        g.entry.set_terminator(Goto(header))
        cond = header.append(Compare(CmpOp.LT, g.const_int(0), g.parameters[0]))
        header.set_terminator(If(cond, body, exit_))
        body.set_terminator(Goto(header))
        exit_.set_terminator(Return(g.const_int(0)))
        order = reverse_post_order(g)
        assert order.index(header) < order.index(body)


class TestUnreachableRemoval:
    def test_removes_dead_region(self, diamond):
        g = diamond["graph"]
        dead1 = g.new_block("dead1")
        dead2 = g.new_block("dead2")
        dead1.set_terminator(Goto(dead2))
        dead2.set_terminator(Return(None))
        removed = remove_unreachable_blocks(g)
        assert removed == 2
        assert dead1 not in g.blocks and dead2 not in g.blocks
        verify_graph(g)

    def test_dead_edge_into_live_merge_is_cleaned(self, diamond):
        g = diamond["graph"]
        merge = diamond["merge"]
        dead = g.new_block("dead")
        dead.set_terminator(Goto(merge))
        # The phi gains an input for the dead edge.
        diamond["phi"]._append_input(g.const_int(99))
        remove_unreachable_blocks(g)
        assert len(merge.predecessors) == 2
        assert len(diamond["phi"].inputs) == 2
        verify_graph(g)

    def test_noop_when_all_reachable(self, diamond):
        assert remove_unreachable_blocks(diamond["graph"]) == 0


class TestCriticalEdges:
    def test_insert_block_on_edge_preserves_phi_positions(self, diamond):
        g = diamond["graph"]
        merge, phi = diamond["merge"], diamond["phi"]
        original_inputs = phi.inputs
        edge_block = insert_block_on_edge(g, diamond["true_block"], merge)
        assert merge.predecessors[0] is edge_block
        assert phi.inputs == original_inputs
        verify_graph(g)

    def test_split_critical_edges(self):
        # entry branches directly into a merge: both edges critical.
        g = Graph("crit", [("x", INT)], INT)
        other = g.new_block("other")
        merge = g.new_block("merge")
        cond = g.entry.append(Compare(CmpOp.GT, g.parameters[0], g.const_int(0)))
        g.entry.set_terminator(If(cond, merge, other))
        other.set_terminator(Goto(merge))
        phi = Phi(merge, INT, [g.const_int(1), g.const_int(2)])
        merge.add_phi(phi)
        merge.set_terminator(Return(phi))
        split = split_critical_edges(g)
        assert split == 1
        verify_graph(g)

    def test_no_split_needed(self, diamond):
        assert split_critical_edges(diamond["graph"]) == 0


class TestFoldRedundantIfs:
    def test_identical_targets_fold(self):
        g = Graph("f", [("x", INT)], INT)
        target = g.new_block()
        cond = g.entry.append(Compare(CmpOp.GT, g.parameters[0], g.const_int(0)))
        branch = If(cond, target, target)
        # install raw (If with identical targets is transient state)
        g.entry.terminator = branch
        branch.block = g.entry
        target.add_predecessor(g.entry)
        target.add_predecessor(g.entry)
        target.set_terminator(Return(None))
        assert fold_redundant_ifs(g) == 1
        assert isinstance(g.entry.terminator, Goto)
        assert target.predecessors == [g.entry]


class TestDegeneratePhis:
    def test_single_pred_phi_collapses(self, diamond):
        g = diamond["graph"]
        merge, phi = diamond["merge"], diamond["phi"]
        # Retarget the false branch away from the merge; its edge (and
        # the corresponding phi input) disappears.
        diamond["false_block"].set_terminator(Return(g.const_int(0)))
        count = simplify_degenerate_phis(g)
        assert count == 1
        assert phi.block is None
        assert diamond["add"].inputs[1] is diamond["x"]

    def test_identical_inputs_collapse(self, diamond):
        g = diamond["graph"]
        phi = diamond["phi"]
        phi.set_input(1, diamond["x"])
        assert simplify_degenerate_phis(g) == 1
        assert diamond["add"].inputs[1] is diamond["x"]

    def test_loop_phi_with_self_input_collapses(self):
        g = Graph("loop", [("n", INT)], INT)
        header, body, exit_ = g.new_block("h"), g.new_block("b"), g.new_block("e")
        g.entry.set_terminator(Goto(header))
        phi = Phi(header, INT, [g.parameters[0]])
        header.add_phi(phi)
        cond = header.append(Compare(CmpOp.GT, phi, g.const_int(0)))
        header.set_terminator(If(cond, body, exit_))
        body.set_terminator(Goto(header))
        phi._append_input(phi)  # invariant through the loop
        exit_.set_terminator(Return(phi))
        assert simplify_degenerate_phis(g) == 1
        assert exit_.terminator.value is g.parameters[0]


class TestStraightlineMerging:
    def test_fuses_goto_chain(self):
        g = Graph("chain", [("x", INT)], INT)
        b1, b2 = g.new_block(), g.new_block()
        g.entry.set_terminator(Goto(b1))
        add = b1.append(ArithOp(BinOp.ADD, g.parameters[0], g.const_int(1)))
        b1.set_terminator(Goto(b2))
        b2.set_terminator(Return(add))
        fused = merge_straightline_blocks(g)
        assert fused == 2
        assert len(g.blocks) == 1
        assert g.entry.instructions == [add]
        assert isinstance(g.entry.terminator, Return)
        verify_graph(g)

    def test_does_not_fuse_merge(self, diamond):
        g = diamond["graph"]
        before = len(g.blocks)
        merge_straightline_blocks(g)
        # merge has 2 preds: nothing to fuse.
        assert len(g.blocks) == before


class TestPredecessorPairs:
    def test_diamond_pairs(self, diamond):
        pairs = predecessor_pairs(diamond["graph"])
        assert len(pairs) == 2
        preds = {pred for pred, merge in pairs}
        assert preds == {diamond["true_block"], diamond["false_block"]}

    def test_canonical_cleanup_keeps_valid(self, diamond):
        canonical_cfg_cleanup(diamond["graph"])
        verify_graph(diamond["graph"])
