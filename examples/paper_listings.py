"""The optimization-opportunity catalog of Section 2, end to end.

For each listing of the paper (constant folding, conditional
elimination, partial escape analysis, read elimination) plus Figure 3's
strength reduction, this example compiles the program with DBDS and
prints what happened.

Run:  python examples/paper_listings.py
"""

from repro import BASELINE, DBDS, compile_and_profile, measure_performance

LISTINGS = {
    "Listing 1/2 — conditional elimination": (
        """
fn foo(i: int) -> int {
  var p: int;
  if (i > 0) { p = i; } else { p = 13; }
  if (p > 12) { return 12; }
  return i;
}
fn main(i: int) -> int { return foo(i); }
""",
        [[k] for k in range(-8, 20)],
    ),
    "Listing 3/4 — partial escape analysis": (
        """
class A { x: int; }
fn foo(a: A) -> int {
  var p: A;
  if (a == null) { p = new A { x = 0 }; } else { p = a; }
  return p.x;
}
fn main(i: int) -> int {
  var a: A = null;
  if (i % 2 > 0) { a = new A { x = i }; }
  return foo(a);
}
""",
        [[k] for k in range(16)],
    ),
    "Listing 5/6 — read elimination": (
        """
class A { x: int; }
global s: int;
fn foo(a: A, i: int) -> int {
  if (i > 0) { s = a.x; } else { s = 0; }
  return a.x;
}
fn main(i: int) -> int {
  var r: A = new A { x = i * 3 };
  return foo(r, i);
}
""",
        [[k] for k in range(-8, 9)],
    ),
    "Figure 3 — strength reduction (Div -> Shift)": (
        """
fn f(a: int, b: int, x: int) -> int {
  var d: int;
  if (a > b) { d = a; } else { d = 2; }
  if (x >= 0) { return x / d; }
  return 0 - x;
}
fn main(i: int) -> int { return f(i, 6, i + 20); }
""",
        [[k] for k in range(-10, 11)],
    ),
}


def main() -> None:
    for title, (source, runs) in LISTINGS.items():
        print("=" * 72)
        print(title)
        print("=" * 72)
        baseline_program, _ = compile_and_profile(source, "main", runs, BASELINE)
        dbds_program, report = compile_and_profile(source, "main", runs, DBDS)
        base_cycles, _ = measure_performance(baseline_program, "main", runs)
        dbds_cycles, _ = measure_performance(dbds_program, "main", runs)
        print(f"duplications performed : {report.total_duplications}")
        print(f"baseline cycles        : {base_cycles:.0f}")
        print(f"DBDS cycles            : {dbds_cycles:.0f}")
        print(f"speedup                : {(base_cycles / dbds_cycles - 1) * 100:+.1f}%")
        print()
        print("Optimized main (DBDS):")
        print(dbds_program.function("main").describe())
        print()


if __name__ == "__main__":
    main()
