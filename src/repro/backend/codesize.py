"""Machine-level code-size estimation for emitted LIR.

The paper's code-size metric is "machine code size after code
installation and constant patching"; this module provides that level of
measurement for the back end: bytes per instruction encoding, with
larger encodings for immediates and (post-allocation) stack-slot
operands — which is exactly how register pressure from duplication
shows up in real machine code.
"""

from __future__ import annotations

from .lir import (
    Immediate,
    LirArrayLength,
    LirArrayLoad,
    LirArrayStore,
    LirBinOp,
    LirBranch,
    LirCall,
    LirCmp,
    LirFunction,
    LirInstruction,
    LirJump,
    LirLoadField,
    LirLoadGlobal,
    LirMove,
    LirNeg,
    LirNewArray,
    LirNewObject,
    LirNot,
    LirProgram,
    LirReturn,
    LirStoreField,
    LirStoreGlobal,
    StackSlot,
)

#: Base encoding bytes per instruction kind.
_BASE_BYTES: dict[type, int] = {
    LirMove: 2,
    LirBinOp: 3,
    LirCmp: 3,
    LirNot: 2,
    LirNeg: 2,
    LirNewObject: 5,
    LirLoadField: 3,
    LirStoreField: 3,
    LirLoadGlobal: 4,
    LirStoreGlobal: 4,
    LirNewArray: 5,
    LirArrayLoad: 3,
    LirArrayStore: 3,
    LirArrayLength: 3,
    LirCall: 5,
    LirJump: 2,
    LirBranch: 3,
    LirReturn: 1,
}

#: Extra bytes for operand kinds beyond a plain register.
_IMMEDIATE_EXTRA = 2
_LARGE_IMMEDIATE_EXTRA = 6
_STACK_SLOT_EXTRA = 2


def instruction_bytes(ins: LirInstruction) -> int:
    """Estimated encoded size of one LIR instruction."""
    size = _BASE_BYTES[type(ins)]
    for operand in list(ins.uses()) + list(ins.defs()):
        if isinstance(operand, Immediate):
            value = operand.value
            if isinstance(value, int) and not isinstance(value, bool) and not (
                -(2**15) <= value < 2**15
            ):
                size += _LARGE_IMMEDIATE_EXTRA
            else:
                size += _IMMEDIATE_EXTRA
        elif isinstance(operand, StackSlot):
            size += _STACK_SLOT_EXTRA
    return size


def function_bytes(function: LirFunction) -> int:
    """Estimated machine-code bytes of one compiled function."""
    return sum(
        instruction_bytes(ins)
        for block in function.blocks.values()
        for ins in block.instructions
    )


def program_bytes(program: LirProgram) -> int:
    """Total installed-code size across all compilation units."""
    return sum(function_bytes(fn) for fn in program.functions.values())
