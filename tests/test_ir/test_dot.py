"""Tests for the graphviz exporter."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.ir.dot import graph_to_dot, program_to_dot


@pytest.fixture
def program():
    return compile_source(
        """
fn f(x: int) -> int {
  if (x > 0) { return 1; }
  return 2;
}
fn g() -> int { return f(3); }
"""
    )


class TestGraphToDot:
    def test_valid_digraph_structure(self, program):
        dot = graph_to_dot(program.function("f"))
        assert dot.startswith('digraph "f" {')
        assert dot.rstrip().endswith("}")

    def test_every_block_is_a_node(self, program):
        graph = program.function("f")
        dot = graph_to_dot(graph)
        for block in graph.blocks:
            assert f"b{block.id} [" in dot

    def test_branch_edges_labeled_with_probability(self, program):
        dot = graph_to_dot(program.function("f"))
        assert 'label="T 0.50"' in dot
        assert 'label="F 0.50"' in dot

    def test_instructions_included_by_default(self, program):
        dot = graph_to_dot(program.function("f"))
        assert "CmpGT" in dot
        assert "Return" in dot

    def test_instructions_can_be_suppressed(self, program):
        dot = graph_to_dot(program.function("f"), include_instructions=False)
        assert "CmpGT" not in dot

    def test_html_escaping(self):
        from repro.ir.dot import _escape

        assert _escape("a < b & c > d") == "a &lt; b &amp; c &gt; d"
        assert _escape('say "hi"') == "say &quot;hi&quot;"


class TestProgramToDot:
    def test_clusters_per_function(self, program):
        dot = program_to_dot(program)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot
        assert 'label="f"' in dot
        assert 'label="g"' in dot
