"""Reference interpreter for IR programs.

Three roles:

* **Semantics oracle** — optimized and unoptimized programs must produce
  identical observable results (return value, reachable heap, globals,
  traps); the test suite runs both and compares.
* **Profiler** — a profiling run records branch-taken counts and loop
  trip counts, which the compiler consumes exactly like Graal consumes
  HotSpot profiles (Section 5.3).
* **Performance simulator** — executions can be charged node-cost-model
  cycles per executed instruction, giving the "peak performance" metric
  of the evaluation (see DESIGN.md for why this substitution is sound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..ir.block import Block
from ..ir.graph import Graph, Program
from ..ir.nodes import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    Call,
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    Parameter,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
    Value,
)
from ..ir.ops import EvaluationTrap, eval_binop, eval_cmp, wrap64


class BudgetExceeded(Exception):
    """The interpreter hit its step budget (runaway loop guard)."""


class HeapObject:
    """A runtime object instance."""

    __slots__ = ("class_name", "fields")

    def __init__(self, class_name: str, fields: dict[str, Any]) -> None:
        self.class_name = class_name
        self.fields = fields

    def __repr__(self) -> str:
        return f"<{self.class_name}@{id(self):#x}>"


class HeapArray:
    """A runtime array instance."""

    __slots__ = ("values",)

    def __init__(self, values: list[Any]) -> None:
        self.values = values

    def __repr__(self) -> str:
        return f"<array[{len(self.values)}]>"


@dataclass
class ExecutionResult:
    """Outcome of one interpreted call."""

    value: Any = None
    trap: Optional[str] = None
    steps: int = 0
    cycles: float = 0.0

    @property
    def trapped(self) -> bool:
        return self.trap is not None


@dataclass
class InterpreterState:
    """Mutable cross-call state: globals, step counter, cycle meter."""

    globals: dict[str, Any] = field(default_factory=dict)
    steps: int = 0
    cycles: float = 0.0


class Interpreter:
    """Executes IR programs; see module docstring for the three roles."""

    def __init__(
        self,
        program: Program,
        max_steps: int = 50_000_000,
        cycle_cost: Optional[Callable[[Instruction], float]] = None,
        terminator_cost: Optional[Callable[[Any], float]] = None,
        profile: Optional["ProfileCollector"] = None,
        max_call_depth: int = 200,
        observer: Optional[Callable[[Instruction, Any], None]] = None,
    ) -> None:
        self.program = program
        self.max_steps = max_steps
        self.cycle_cost = cycle_cost
        self.terminator_cost = terminator_cost
        self.profile = profile
        self.max_call_depth = max_call_depth
        #: called with (instruction, produced value) after every
        #: execution step — the hook dynamic stamp checking plugs into
        self.observer = observer
        self._call_depth = 0
        self.state = InterpreterState()
        self._init_globals()

    def _init_globals(self) -> None:
        self.state.globals = {
            name: ty.default_value() for name, ty in self.program.globals.items()
        }

    def reset(self) -> None:
        """Fresh globals and meters (run-to-run isolation)."""
        self.state = InterpreterState()
        self._init_globals()

    # ------------------------------------------------------------------
    def run(self, function: str, args: list[Any]) -> ExecutionResult:
        """Call ``function`` with ``args`` and capture the outcome."""
        graph = self.program.function(function)
        try:
            value = self._call(graph, args)
            return ExecutionResult(
                value=value, steps=self.state.steps, cycles=self.state.cycles
            )
        except EvaluationTrap as trap:
            return ExecutionResult(
                trap=str(trap), steps=self.state.steps, cycles=self.state.cycles
            )

    def _call(self, graph: Graph, args: list[Any]) -> Any:
        if len(args) != len(graph.parameters):
            raise TypeError(
                f"{graph.name} expects {len(graph.parameters)} args, got {len(args)}"
            )
        self._call_depth += 1
        try:
            return self._run_frame(graph, args)
        finally:
            self._call_depth -= 1

    def _run_frame(self, graph: Graph, args: list[Any]) -> Any:
        if self._call_depth > self.max_call_depth:
            raise EvaluationTrap("stack overflow")
        env: dict[Value, Any] = {}
        for param, arg in zip(graph.parameters, args):
            env[param] = arg

        block = graph.entry
        pred: Optional[Block] = None
        while True:
            self._charge_block_entry(block, pred, env)
            for instruction in block.instructions:
                self._step()
                env[instruction] = self._execute(instruction, env)
                if self.observer is not None:
                    self.observer(instruction, env[instruction])
                if self.cycle_cost is not None:
                    self.state.cycles += self.cycle_cost(instruction)
            terminator = block.terminator
            self._step()
            if self.terminator_cost is not None:
                self.state.cycles += self.terminator_cost(terminator)
            if isinstance(terminator, Return):
                if terminator.value is None:
                    return None
                return self._value_of(terminator.value, env)
            if isinstance(terminator, Goto):
                pred, block = block, terminator.target
                continue
            if isinstance(terminator, If):
                taken = bool(self._value_of(terminator.condition, env))
                if self.profile is not None:
                    self.profile.record_branch(terminator, taken)
                pred, block = (
                    block,
                    terminator.true_target if taken else terminator.false_target,
                )
                continue
            raise AssertionError(f"unknown terminator {terminator!r}")

    def _charge_block_entry(
        self, block: Block, pred: Optional[Block], env: dict[Value, Any]
    ) -> None:
        if self.profile is not None:
            self.profile.record_block(block)
        if not block.phis:
            return
        assert pred is not None, "phis in entry block"
        index = block.predecessor_index(pred)
        # Parallel phi semantics: read all inputs before writing any.
        values = [self._value_of(phi.input(index), env) for phi in block.phis]
        for phi, value in zip(block.phis, values):
            env[phi] = value
            if self.observer is not None:
                self.observer(phi, value)
            if self.cycle_cost is not None:
                self.state.cycles += self.cycle_cost(phi)

    def _step(self) -> None:
        self.state.steps += 1
        if self.state.steps > self.max_steps:
            raise BudgetExceeded(f"exceeded {self.max_steps} interpreter steps")

    def _value_of(self, value: Value, env: dict[Value, Any]) -> Any:
        if isinstance(value, Constant):
            return value.value
        return env[value]

    # ------------------------------------------------------------------
    # Execution is dispatched through a type-keyed handler table (the
    # _exec_* methods below); _resolve_handler walks the MRO once so
    # downstream node subclasses inherit their base class's handler.
    # ------------------------------------------------------------------
    def _execute(self, ins: Instruction, env: dict[Value, Any]) -> Any:
        cls = type(ins)
        handler = _EXEC_HANDLERS.get(cls)
        if handler is None:
            handler = _resolve_handler(cls)
        return handler(self, ins, env)

    def _exec_arith(self, ins: ArithOp, env) -> Any:
        return eval_binop(
            ins.op, self._value_of(ins.x, env), self._value_of(ins.y, env)
        )

    def _exec_compare(self, ins: Compare, env) -> Any:
        return eval_cmp(
            ins.op, self._value_of(ins.x, env), self._value_of(ins.y, env)
        )

    def _exec_not(self, ins: Not, env) -> Any:
        return not self._value_of(ins.x, env)

    def _exec_neg(self, ins: Neg, env) -> Any:
        return wrap64(-self._value_of(ins.x, env))

    def _exec_new(self, ins: New, env) -> Any:
        decl = self.program.class_table.lookup(ins.object_type.class_name)
        return HeapObject(
            decl.name, {f.name: f.type.default_value() for f in decl.fields}
        )

    def _exec_load_field(self, ins: LoadField, env) -> Any:
        obj = self._value_of(ins.obj, env)
        if obj is None:
            raise EvaluationTrap(f"null dereference reading .{ins.field}")
        return obj.fields[ins.field]

    def _exec_store_field(self, ins: StoreField, env) -> Any:
        obj = self._value_of(ins.obj, env)
        if obj is None:
            raise EvaluationTrap(f"null dereference writing .{ins.field}")
        obj.fields[ins.field] = self._value_of(ins.value, env)
        return None

    def _exec_load_global(self, ins: LoadGlobal, env) -> Any:
        return self.state.globals[ins.global_name]

    def _exec_store_global(self, ins: StoreGlobal, env) -> Any:
        self.state.globals[ins.global_name] = self._value_of(ins.value, env)
        return None

    def _exec_new_array(self, ins: NewArray, env) -> Any:
        length = self._value_of(ins.length, env)
        if length < 0:
            raise EvaluationTrap(f"negative array length {length}")
        return HeapArray([ins.element_type.default_value()] * length)

    def _exec_array_load(self, ins: ArrayLoad, env) -> Any:
        array = self._value_of(ins.array, env)
        index = self._value_of(ins.index, env)
        self._check_array(array, index)
        return array.values[index]

    def _exec_array_store(self, ins: ArrayStore, env) -> Any:
        array = self._value_of(ins.array, env)
        index = self._value_of(ins.index, env)
        self._check_array(array, index)
        array.values[index] = self._value_of(ins.value, env)
        return None

    def _exec_array_length(self, ins: ArrayLength, env) -> Any:
        array = self._value_of(ins.array, env)
        if array is None:
            raise EvaluationTrap("null dereference in len()")
        return len(array.values)

    def _exec_call(self, ins: Call, env) -> Any:
        callee = self.program.function(ins.callee)
        return self._call(callee, [self._value_of(a, env) for a in ins.args])

    def _exec_phi(self, ins: Phi, env) -> Any:  # pragma: no cover
        raise AssertionError("phi reached instruction loop")

    @staticmethod
    def _check_array(array: Any, index: Any) -> None:
        if array is None:
            raise EvaluationTrap("null array access")
        if not 0 <= index < len(array.values):
            raise EvaluationTrap(f"array index {index} out of bounds")


#: type-keyed dispatch table; _resolve_handler fills in subclasses lazily
_EXEC_HANDLERS: dict[type, Callable] = {
    ArithOp: Interpreter._exec_arith,
    Compare: Interpreter._exec_compare,
    Not: Interpreter._exec_not,
    Neg: Interpreter._exec_neg,
    New: Interpreter._exec_new,
    LoadField: Interpreter._exec_load_field,
    StoreField: Interpreter._exec_store_field,
    LoadGlobal: Interpreter._exec_load_global,
    StoreGlobal: Interpreter._exec_store_global,
    NewArray: Interpreter._exec_new_array,
    ArrayLoad: Interpreter._exec_array_load,
    ArrayStore: Interpreter._exec_array_store,
    ArrayLength: Interpreter._exec_array_length,
    Call: Interpreter._exec_call,
    Phi: Interpreter._exec_phi,
}


def _resolve_handler(cls: type) -> Callable:
    """MRO-walking fallback for node subclasses; memoizes the result."""
    for base in cls.__mro__:
        handler = _EXEC_HANDLERS.get(base)
        if handler is not None:
            _EXEC_HANDLERS[cls] = handler
            return handler
    raise AssertionError(f"cannot execute {cls.__name__}")


class ProfileCollector:
    """Branch and block counters recorded during a profiling run."""

    def __init__(self) -> None:
        self.branch_counts: dict[If, list[int]] = {}
        self.block_counts: dict[Block, int] = {}

    def record_branch(self, branch: If, taken: bool) -> None:
        counts = self.branch_counts.setdefault(branch, [0, 0])
        counts[0 if taken else 1] += 1

    def record_block(self, block: Block) -> None:
        self.block_counts[block] = self.block_counts.get(block, 0) + 1

    def true_probability(self, branch: If) -> Optional[float]:
        counts = self.branch_counts.get(branch)
        if not counts or (counts[0] + counts[1]) == 0:
            return None
        return counts[0] / (counts[0] + counts[1])


def deep_value(value: Any, _seen: Optional[dict[int, int]] = None) -> Any:
    """Structural snapshot of a runtime value for differential testing.

    Objects/arrays become nested tuples; cycles are encoded as back
    references so isomorphic heaps compare equal.
    """
    if _seen is None:
        _seen = {}
    if isinstance(value, HeapObject):
        if id(value) in _seen:
            return ("backref", _seen[id(value)])
        _seen[id(value)] = len(_seen)
        return (
            "object",
            value.class_name,
            tuple(
                (name, deep_value(v, _seen)) for name, v in sorted(value.fields.items())
            ),
        )
    if isinstance(value, HeapArray):
        if id(value) in _seen:
            return ("backref", _seen[id(value)])
        _seen[id(value)] = len(_seen)
        return ("array", tuple(deep_value(v, _seen) for v in value.values))
    return value


def observable_outcome(result: ExecutionResult, state: InterpreterState) -> tuple:
    """Everything a program run can observe: result/trap + global state."""
    return (
        deep_value(result.value),
        result.trap,
        tuple((name, deep_value(v)) for name, v in sorted(state.globals.items())),
    )
