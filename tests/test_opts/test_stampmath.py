"""Hypothesis soundness properties for stamp arithmetic.

The single invariant everything rests on: a stamp operation may lose
precision but must never exclude a value the concrete semantics can
produce.  Violations here would make canonicalization and conditional
elimination miscompile.
"""

import pytest
from hypothesis import assume, given, strategies as st

from repro.ir.ops import BinOp, CmpOp, EvaluationTrap, eval_binop, eval_cmp
from repro.ir.stamps import INT_MAX, INT_MIN, IntStamp
from repro.opts.stampmath import (
    arith_stamp,
    compare_stamps,
    power_of_two_exponent,
    refine_by_compare,
)

# Moderate magnitudes keep shifts/multiplies in-range so the reference
# result is exact; separate tests cover the wrap-to-top behaviour.
small = st.integers(min_value=-(2**30), max_value=2**30)


@st.composite
def stamp_and_value(draw):
    a, b = draw(small), draw(small)
    lo, hi = min(a, b), max(a, b)
    v = draw(st.integers(min_value=lo, max_value=hi))
    return IntStamp(lo, hi), v


class TestArithStampSoundness:
    @given(
        st.sampled_from(list(BinOp)),
        stamp_and_value(),
        stamp_and_value(),
    )
    def test_result_always_contained(self, op, xs, ys):
        (sx, x), (sy, y) = xs, ys
        try:
            result = eval_binop(op, x, y)
        except EvaluationTrap:
            assume(False)
        out = arith_stamp(op, sx, sy)
        assert out.contains(result), (
            f"{op}: {x} in {sx}, {y} in {sy} -> {result} not in {out}"
        )

    def test_add_overflow_widens_to_top(self):
        top_heavy = IntStamp(INT_MAX - 1, INT_MAX)
        out = arith_stamp(BinOp.ADD, top_heavy, IntStamp(2, 2))
        assert out.contains(INT_MIN)  # wrapped result must be included

    def test_div_by_possibly_zero_is_top(self):
        out = arith_stamp(BinOp.DIV, IntStamp(0, 100), IntStamp(-1, 1))
        assert out == IntStamp()

    def test_mod_positive_divisor_bounds(self):
        out = arith_stamp(BinOp.MOD, IntStamp(0, 1000), IntStamp(1, 7))
        assert out.lo >= 0 and out.hi <= 6


class TestCompareStampsSoundness:
    @given(
        st.sampled_from(list(CmpOp)),
        stamp_and_value(),
        stamp_and_value(),
    )
    def test_decided_compare_is_correct(self, op, xs, ys):
        (sx, x), (sy, y) = xs, ys
        decided = compare_stamps(op, sx, sy)
        if decided is not None:
            assert decided == eval_cmp(op, x, y)

    def test_disjoint_ranges_decide(self):
        assert compare_stamps(CmpOp.LT, IntStamp(0, 5), IntStamp(6, 9)) is True
        assert compare_stamps(CmpOp.GT, IntStamp(0, 5), IntStamp(6, 9)) is False
        assert compare_stamps(CmpOp.EQ, IntStamp(0, 5), IntStamp(6, 9)) is False

    def test_overlap_undecided(self):
        assert compare_stamps(CmpOp.LT, IntStamp(0, 5), IntStamp(3, 9)) is None


class TestRefineSoundness:
    @given(
        st.sampled_from(list(CmpOp)),
        stamp_and_value(),
        stamp_and_value(),
    )
    def test_refinement_keeps_witnesses(self, op, xs, ys):
        """If x OP y has a given outcome, the refined stamps must still
        contain x and y."""
        (sx, x), (sy, y) = xs, ys
        outcome = eval_cmp(op, x, y)
        nx, ny = refine_by_compare(op, sx, sy, outcome)
        assert nx.contains(x), f"{op} refinement dropped x={x} from {nx}"
        assert ny.contains(y), f"{op} refinement dropped y={y} from {ny}"

    def test_lt_true_narrows_upper_bound(self):
        nx, ny = refine_by_compare(
            CmpOp.LT, IntStamp(0, 100), IntStamp(10, 10), True
        )
        assert nx == IntStamp(0, 9)

    def test_gt_true_narrows_lower_bound(self):
        nx, _ = refine_by_compare(
            CmpOp.GT, IntStamp(), IntStamp(12, 12), True
        )
        assert nx.lo == 13

    def test_eq_joins_both(self):
        nx, ny = refine_by_compare(
            CmpOp.EQ, IntStamp(0, 100), IntStamp(50, 200), True
        )
        assert nx == IntStamp(50, 100)
        assert ny == IntStamp(50, 100)

    def test_ne_against_edge_constant(self):
        nx, _ = refine_by_compare(
            CmpOp.NE, IntStamp(0, 10), IntStamp(0, 0), True
        )
        assert nx == IntStamp(1, 10)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value,expected", [
        (1, 0), (2, 1), (4, 2), (1024, 10), (2**62, 62),
        (0, None), (-4, None), (3, None), (6, None), (2**62 + 1, None),
    ])
    def test_exponents(self, value, expected):
        assert power_of_two_exponent(value) == expected
