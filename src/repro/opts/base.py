"""The applicability-check / action-step optimization framework.

Section 4.1 of the paper splits every optimization into a *precondition*
(an applicability check, AC) and an *action step* (after Chang et al.),
and modifies the action steps "to not change the underlying IR but to
return new (sub)graphs containing the result of the optimization".

That is exactly the contract here:

* an AC+action is a function ``(instruction, ctx) -> Rewrite | None``;
* a :class:`Rewrite` describes — without mutating anything — how the
  instruction would be replaced: by nothing (*Empty*), by an existing
  value (*Redundant Node*), or by freshly built nodes (*New Node*);
* the **real optimization phases** apply rewrites destructively, while
  the **DBDS simulation tier** only reads their cost deltas.

The :class:`OptimizationContext` abstracts the difference between the
two consumers: the simulator resolves operands through its synonym map
and refined stamps, the real phases resolve identically.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Optional

from ..analysis.blame import current_guard
from ..costmodel.estimator import graph_code_size
from ..costmodel.model import cycles_of, size_of
from ..ir.graph import Graph
from ..ir.nodes import Instruction, Value
from ..ir.stamps import Stamp
from ..obs.metrics import current_registry
from ..obs.tracer import current_tracer


def _traced_run(run):
    """Wrap a phase's ``run`` so the ambient tracer sees every
    invocation as a ``phase`` span with wall time plus the node-count
    and code-size deltas the phase caused, and so the ambient
    :class:`~repro.analysis.blame.PhaseGuard` (``--check-ir=each-phase``)
    can verify IR invariants around the phase and blame it on failure.

    With the default :data:`~repro.obs.tracer.NULL_TRACER` (or any
    disabled tracer) and no installed guard this is two attribute
    checks on top of the call — deltas and snapshots are only computed
    when a trace or a guard is active.
    """

    @functools.wraps(run)
    def traced(self, graph, *args, **kwargs):
        tracer = current_tracer()
        registry = current_registry()
        guard = current_guard()
        if guard is not None and guard.per_phase:
            snapshot = guard.before_phase(self.name, graph)
        else:
            guard = None
        if not tracer.enabled:
            # Phase wall-time histogram without a trace: only take
            # timestamps when a live registry asks for them, so the
            # untraced + unmetered default stays free of clock calls.
            if registry.enabled:
                t0 = time.perf_counter()
                result = run(self, graph, *args, **kwargs)
                registry.observe(
                    "repro_compile_phase_seconds",
                    time.perf_counter() - t0,
                    phase=self.name,
                )
            else:
                result = run(self, graph, *args, **kwargs)
            if guard is not None:
                guard.after_phase(self.name, graph, snapshot)
            return result
        nodes_before = graph.instruction_count()
        size_before = graph_code_size(graph)
        with tracer.span("phase", phase=self.name, graph=graph.name) as span:
            result = run(self, graph, *args, **kwargs)
            span.attrs["nodes_delta"] = graph.instruction_count() - nodes_before
            span.attrs["size_delta"] = graph_code_size(graph) - size_before
        if registry.enabled:
            # Reuse the span's own clocking rather than timing twice.
            registry.observe(
                "repro_compile_phase_seconds",
                span.dur or 0.0,
                phase=self.name,
            )
        # Checked outside the span so phase times stay phase times; the
        # guard accounts its own cost as an ``ir-check`` span.
        if guard is not None:
            guard.after_phase(self.name, graph, snapshot)
        return result

    traced._obs_traced = True
    traced.__wrapped__ = run
    return traced


class Phase:
    """Base class of every optimization phase.

    Subclasses provide ``name`` and ``run(graph)``; the phase-entry
    hook below rewrites each subclass's ``run`` so all phases are
    traced uniformly — no phase carries its own instrumentation.
    """

    name = "phase"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        run = cls.__dict__.get("run")
        if run is not None and not getattr(run, "_obs_traced", False):
            cls.run = _traced_run(run)


@dataclass
class Rewrite:
    """The outcome of an action step, as a pure description.

    ``replacement is None`` means the instruction disappears without a
    substitute (legal only for value-less instructions such as stores).
    ``new_instructions`` are nodes the action step built; they must be
    scheduled immediately before the rewritten instruction when the
    rewrite is applied for real.
    """

    replacement: Optional[Value] = None
    new_instructions: list[Instruction] = field(default_factory=list)
    #: short human-readable tag of the optimization that fired
    reason: str = ""

    @classmethod
    def remove(cls, reason: str) -> "Rewrite":
        """*Empty* result: the node is eliminated outright."""
        return cls(replacement=None, reason=reason)

    @classmethod
    def redundant(cls, existing: Value, reason: str) -> "Rewrite":
        """*Redundant Node* result: an existing value computes the same."""
        return cls(replacement=existing, reason=reason)

    @classmethod
    def with_new(
        cls, new_instructions: list[Instruction], reason: str
    ) -> "Rewrite":
        """*New Node* result: cheaper fresh nodes replace the old one.

        The last new instruction is the replacement value.
        """
        return cls(
            replacement=new_instructions[-1],
            new_instructions=new_instructions,
            reason=reason,
        )

    # ------------------------------------------------------------------
    def cycles_delta(self, old: Instruction) -> float:
        """Cycles saved by this rewrite (positive = faster)."""
        return cycles_of(old) - sum(cycles_of(n) for n in self.new_instructions)

    def size_delta(self, old: Instruction) -> float:
        """Code size saved by this rewrite (positive = smaller)."""
        return size_of(old) - sum(size_of(n) for n in self.new_instructions)


class OptimizationContext:
    """Operand resolution and stamp refinement for ACs.

    The base implementation is the *real phase* view: identity
    resolution, static stamps, no extra facts.  The DBDS simulator
    subclasses it with synonym maps and branch-refined stamps.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def resolve(self, value: Value) -> Value:
        """Follow synonym substitutions (identity outside simulation)."""
        return value

    def stamp(self, value: Value) -> Stamp:
        """The best known stamp of (the resolution of) ``value``."""
        return self.resolve(value).stamp

    def constant_value(self, value: Value):
        """``(v,)`` when the resolved value is statically known, else None."""
        resolved = self.resolve(value)
        from ..ir.nodes import Constant

        if isinstance(resolved, Constant):
            return (resolved.value,)
        return self.stamp(value).as_constant()
