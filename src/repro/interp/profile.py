"""Profile collection and application.

Mirrors the paper's setup: HotSpot's interpreter profiles branches, the
compiler reads those profiles as edge probabilities and loop
frequencies.  Here a profiling interpretation run fills
``If.true_probability`` and ``Block.profile_trip_count`` on the very
graphs the compiler will transform; clones carry the data along.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..ir.graph import Program
from ..ir.loops import DEFAULT_TRIP_COUNT
from ..ir.nodes import If
from .interpreter import Interpreter, ProfileCollector


def profile_program(
    program: Program,
    entry: str,
    arg_sets: Iterable[list[Any]],
    max_steps: int = 50_000_000,
) -> ProfileCollector:
    """Run ``entry`` over every argument set, collecting counters."""
    collector = ProfileCollector()
    interpreter = Interpreter(program, max_steps=max_steps, profile=collector)
    for args in arg_sets:
        interpreter.reset()
        interpreter.run(entry, list(args))
    return collector


def apply_profile(program: Program, collector: ProfileCollector) -> None:
    """Write collected counters back into the IR as probabilities.

    * Each executed ``If`` gets its observed true-probability (clamped
      away from exactly 0/1 — the runtime can always see a new path).
    * Each loop header gets an observed trip count:
      executions / entries.
    """
    for graph in program.functions.values():
        for block in graph.blocks:
            term = block.terminator
            if isinstance(term, If):
                p = collector.true_probability(term)
                if p is not None:
                    term.true_probability = min(max(p, 0.01), 0.99)
        forest = graph.loop_forest()
        for loop in forest.loops:
            header_runs = collector.block_counts.get(loop.header, 0)
            entries = sum(
                collector.block_counts.get(pred, 0)
                for pred in loop.header.predecessors
                if pred not in loop.back_edge_predecessors
            )
            if header_runs and entries:
                loop.header.profile_trip_count = max(header_runs / entries, 1.0)
        # Probabilities and trip counts feed the frequency analysis (and
        # LoopForest snapshots trip counts at build time): recompute.
        graph.invalidate_analyses()


def profiled_trip_count(block) -> float:
    """Trip count recorded on a loop header, or the static default."""
    return getattr(block, "profile_trip_count", DEFAULT_TRIP_COUNT)
