"""Tokenizer for MiniLang source text."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CompileError(Exception):
    """A front-end error (lexing, parsing or type checking)."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    INT = "int-literal"
    IDENT = "identifier"
    KEYWORD = "keyword"
    PUNCT = "punctuation"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "class", "global", "fn", "var", "if", "else", "while", "for",
        "return", "true", "false", "null", "new", "len", "int", "bool",
        "void",
    }
)

# Longest first so the maximal munch wins.
PUNCTUATION = (
    ">>>", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||", "->",
    "(", ")", "{", "}", "[", "]", ";", ",", ":", ".", "=",
    "+", "-", "*", "/", "%", "<", ">", "!", "&", "|", "^",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Produce the token list for a source string, ending with EOF."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        col = i - line_start + 1
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.INT, source[i:j], line, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, col))
            i = j
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, line, col))
                i += len(punct)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, n - line_start + 1))
    return tokens
