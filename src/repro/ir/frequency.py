"""Profile-driven relative block execution frequencies.

The DBDS trade-off tier scales a candidate's benefit by "the relative
probability of an instruction with respect to the entire compilation
unit" (Section 5.4).  This module computes exactly that: propagate edge
probabilities through the acyclic CFG, multiply loop bodies by their
trip counts, and normalize by the maximum frequency in the unit.
"""

from __future__ import annotations

from .block import Block
from .dominators import DominatorTree
from .graph import Graph
from .loops import LoopForest
from .nodes import Goto, If


class BlockFrequencies:
    """Absolute and relative execution frequency estimates per block."""

    def __init__(self, graph: Graph, loops: LoopForest | None = None) -> None:
        self.graph = graph
        self.loops = loops or LoopForest(graph)
        self.frequency: dict[Block, float] = {}
        self._compute()
        self.max_frequency = max(self.frequency.values(), default=1.0) or 1.0

    def _edge_probability(self, pred: Block, succ: Block) -> float:
        term = pred.terminator
        if isinstance(term, If):
            return term.probability_of(succ)
        return 1.0

    def _compute(self) -> None:
        dom = self.loops.dom
        freq = self.frequency
        for block in dom.rpo:
            if block is self.graph.entry:
                freq[block] = 1.0
                continue
            loop = self.loops.innermost_loop(block)
            if loop is not None and loop.header is block:
                # Entry flow only (back edges excluded), scaled by trips.
                inflow = sum(
                    freq.get(p, 0.0) * self._edge_probability(p, block)
                    for p in block.predecessors
                    if p not in loop.back_edge_predecessors
                )
                freq[block] = inflow * max(loop.trip_count, 1.0)
            else:
                # Back edges only enter loop headers, so every
                # predecessor of a non-header precedes it in RPO of a
                # reducible CFG and its frequency is already available.
                freq[block] = sum(
                    freq.get(p, 0.0) * self._edge_probability(p, block)
                    for p in block.predecessors
                )
        # Guard against pathological profiles producing zero everywhere.
        if all(f == 0.0 for f in freq.values()):
            for b in freq:
                freq[b] = 1.0

    def relative(self, block: Block) -> float:
        """Frequency of ``block`` relative to the hottest block (0..1]."""
        return self.frequency.get(block, 0.0) / self.max_frequency
