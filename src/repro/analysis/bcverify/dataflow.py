"""Worklist dataflow over recovered bytecode CFGs.

A deliberately small lattice API: an *analysis* is an object with

* ``direction`` — ``"forward"`` or ``"backward"``;
* ``boundary(cfg)`` — the state at the entry block (forward) or at
  exit blocks, i.e. blocks with no successors (backward);
* ``bottom(cfg)`` — the least element (backward solver only);
* ``join(a, b)`` — the lattice join of two states;
* ``transfer(cfg, block, state)`` — the block transfer function
  (forward: entry state → exit state; backward: live-out → live-in);
* ``edge_transfer(edge, state)`` — the effect of one edge descriptor's
  phi-move sequence (forward: state *after* the moves; backward: the
  successor's live-in renamed *through* the moves).

States must be value-comparable with ``==`` and treated immutably —
transfer functions return fresh objects.  The forward solver is
**optimistic**: block entry states start as the unreached sentinel
``None`` and only blocks reachable from the entry ever get a state, so
``join`` is never asked to merge with "unreached".  The backward
solver is **pessimistic from bottom**, the standard shape for
union-style may-analyses like liveness.

Three analyses ship with the verifier:

* :class:`MustDefined` — forward, intersection: the registers
  guaranteed written on *every* path (seeded with parameters and the
  interned-constant range).  The def-before-use checker re-walks each
  block against its entry state.
* :class:`Liveness` — backward, union: registers whose current value
  may still be read.
* :class:`ConstProp` — forward over the plain code stream: register →
  known constant value, folding the wrap64 arithmetic exactly as the
  machine computes it (division by a known zero never folds — that
  path traps at runtime).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ...vm.bytecode import (
    OP_ADD,
    OP_AND,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_NEG,
    OP_NOT,
    OP_OR,
    OP_SHL,
    OP_SHR,
    OP_SUB,
    OP_USHR,
    OP_XOR,
)
from ...vm.machine import _MASK, _SIGN, _TWO64
from .cfg import BytecodeCFG, instruction_events


@dataclass
class DataflowResult:
    """Fixpoint states per block index.

    Forward: ``entry`` holds the state *before* the block, ``exit``
    after.  Backward: ``entry`` is the live-in, ``exit`` the live-out.
    A forward ``entry`` of ``None`` marks a block unreachable from the
    function entry.
    """

    entry: dict
    exit: dict


def solve_forward(cfg: BytecodeCFG, analysis) -> DataflowResult:
    entry = {block.index: None for block in cfg.blocks}
    exit_ = {block.index: None for block in cfg.blocks}
    blocks = {block.index: block for block in cfg.blocks}
    entry[cfg.entry.index] = analysis.boundary(cfg)
    work = deque((cfg.entry.index,))
    queued = {cfg.entry.index}
    while work:
        index = work.popleft()
        queued.discard(index)
        block = blocks[index]
        out = analysis.transfer(cfg, block, entry[index])
        exit_[index] = out
        for edge, succ in zip(block.edges, block.succs):
            contribution = analysis.edge_transfer(edge, out)
            current = entry[succ]
            merged = (
                contribution if current is None
                else analysis.join(current, contribution)
            )
            if current is None or merged != current:
                entry[succ] = merged
                if succ not in queued:
                    work.append(succ)
                    queued.add(succ)
    return DataflowResult(entry, exit_)


def solve_backward(cfg: BytecodeCFG, analysis) -> DataflowResult:
    exit_ = {block.index: analysis.bottom(cfg) for block in cfg.blocks}
    entry = {
        block.index: analysis.transfer(cfg, block, exit_[block.index])
        for block in cfg.blocks
    }
    blocks = {block.index: block for block in cfg.blocks}
    work = deque(block.index for block in reversed(cfg.blocks))
    queued = set(work)
    while work:
        index = work.popleft()
        queued.discard(index)
        block = blocks[index]
        if block.succs:
            out = analysis.bottom(cfg)
            for edge, succ in zip(block.edges, block.succs):
                out = analysis.join(
                    out, analysis.edge_transfer(edge, entry[succ])
                )
        else:
            out = analysis.boundary(cfg)
        exit_[index] = out
        new_in = analysis.transfer(cfg, block, out)
        if new_in != entry[index]:
            entry[index] = new_in
            for pred in block.preds:
                if pred not in queued:
                    work.append(pred)
                    queued.add(pred)
    return DataflowResult(entry, exit_)


def solve(cfg: BytecodeCFG, analysis) -> DataflowResult:
    """Run ``analysis`` to fixpoint over ``cfg``."""
    if analysis.direction == "forward":
        return solve_forward(cfg, analysis)
    return solve_backward(cfg, analysis)


# ----------------------------------------------------------------------
# Must-defined registers (forward, intersection)
# ----------------------------------------------------------------------
class MustDefined:
    """Registers written on every path from the entry."""

    direction = "forward"

    def boundary(self, cfg):
        fn = cfg.fn
        defined = set(range(fn.nparams))
        defined.update(range(fn.const_base, fn.const_base + fn.const_count))
        return frozenset(defined)

    def join(self, a, b):
        return a & b

    def edge_transfer(self, edge, state):
        if not edge[1]:
            return state
        return frozenset(state | {dest for dest, _src in edge[1]})

    def transfer(self, cfg, block, state):
        defined = set(state)
        stream = cfg.stream()
        for pc in block.pcs:
            for kind, value in instruction_events(stream[pc], cfg.fused):
                if kind == "def":
                    defined.add(value)
        return frozenset(defined)


# ----------------------------------------------------------------------
# Liveness (backward, union)
# ----------------------------------------------------------------------
class Liveness:
    """Registers whose current value may still be read."""

    direction = "backward"

    def bottom(self, cfg):
        return frozenset()

    def boundary(self, cfg):
        return frozenset()

    def join(self, a, b):
        return a | b

    def edge_transfer(self, edge, state):
        # The move sequence runs d1<-s1; d2<-s2; ... — renaming the
        # successor's live-in backwards means walking it in reverse.
        live = set(state)
        for dest, src in reversed(edge[1]):
            if dest in live:
                live.discard(dest)
                live.add(src)
        return frozenset(live)

    def transfer(self, cfg, block, state):
        live = set(state)
        stream = cfg.stream()
        for pc in reversed(block.pcs):
            events = instruction_events(stream[pc], cfg.fused)
            for kind, value in reversed(events):
                if kind == "def":
                    live.discard(value)
                elif kind == "use":
                    live.add(value)
        return frozenset(live)


# ----------------------------------------------------------------------
# Constant propagation (forward, over the plain code stream)
# ----------------------------------------------------------------------
def _wrap64(value: int) -> int:
    value &= _MASK
    return value - _TWO64 if value & _SIGN else value


def _fold(op: int, a, b):
    """Fold one binary base op exactly as the machine computes it.

    Raises on anything unfoldable (bad operand types, division by a
    constant zero) — the caller treats that as "unknown".
    """
    if op == OP_ADD:
        return _wrap64(a + b)
    if op == OP_SUB:
        return _wrap64(a - b)
    if op == OP_MUL:
        return _wrap64(a * b)
    if op in (OP_DIV, OP_MOD):
        if b == 0:
            raise ZeroDivisionError  # runtime trap: never fold
        if op == OP_DIV:
            quotient = abs(a) // abs(b)
            if (a >= 0) != (b >= 0):
                quotient = -quotient
            return _wrap64(quotient)
        remainder = abs(a) % abs(b)
        if a < 0:
            remainder = -remainder
        return _wrap64(remainder)
    if op == OP_AND:
        return _wrap64(a & b)
    if op == OP_OR:
        return _wrap64(a | b)
    if op == OP_XOR:
        return _wrap64(a ^ b)
    if op == OP_SHL:
        return _wrap64(a << (b & 63))
    if op == OP_SHR:
        return _wrap64(a >> (b & 63))
    if op == OP_USHR:
        return _wrap64((a & _MASK) >> (b & 63))
    if op == OP_EQ:
        return a == b
    if op == OP_NE:
        return a != b
    if op == OP_LT:
        return a < b
    if op == OP_LE:
        return a <= b
    if op == OP_GT:
        return a > b
    if op == OP_GE:
        return a >= b
    raise ValueError(f"not a foldable binary op: {op}")


_BINARY_OPS = frozenset(range(OP_ADD, OP_GE + 1))
_MISSING = object()


class ConstProp:
    """Register → known constant value, over the plain code stream.

    States are dicts mapping a register to its proven value; absence
    means unknown.  The join keeps a binding only where both sides
    agree on value *and* type (``True`` and ``1`` compare equal but
    behave differently downstream, e.g. under ``repr`` in codegen).
    """

    direction = "forward"

    def boundary(self, cfg):
        fn = cfg.fn
        env = {}
        for reg in range(fn.const_base, fn.const_base + fn.const_count):
            value = fn.template[reg]
            if value is None or type(value) in (int, bool):
                env[reg] = value
        return env

    def join(self, a, b):
        return {
            reg: value
            for reg, value in a.items()
            if reg in b
            and type(b[reg]) is type(value)
            and b[reg] == value
        }

    def edge_transfer(self, edge, state):
        if not edge[1]:
            return state
        env = dict(state)
        for dest, src in edge[1]:
            if src in env:
                env[dest] = env[src]
            else:
                env.pop(dest, None)
        return env

    def transfer(self, cfg, block, state):
        env = dict(state)
        code = cfg.fn.code
        for pc in block.pcs:
            self._step(env, code[pc])
        return env

    def _step(self, env, ins) -> None:
        op, dest = ins[0], ins[3]
        if op in _BINARY_OPS:
            a = env.get(ins[4], _MISSING)
            b = env.get(ins[5], _MISSING)
            if a is not _MISSING and b is not _MISSING:
                try:
                    env[dest] = _fold(op, a, b)
                    return
                except Exception:
                    pass  # unfoldable operands: fall through to kill
        elif op == OP_NOT:
            a = env.get(ins[4], _MISSING)
            if a is not _MISSING:
                env[dest] = not a
                return
        elif op == OP_NEG:
            a = env.get(ins[4], _MISSING)
            if a is not _MISSING and type(a) in (int, bool):
                env[dest] = _wrap64(-a)
                return
        if dest >= 0:
            env.pop(dest, None)


__all__ = [
    "ConstProp",
    "DataflowResult",
    "Liveness",
    "MustDefined",
    "solve",
    "solve_backward",
    "solve_forward",
]
