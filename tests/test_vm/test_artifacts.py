"""Bytecode in cached artifacts: pack/unpack, shared identity, hits."""

import pathlib

from repro.frontend.irbuilder import compile_source
from repro.pipeline.cache import (
    ArtifactCache,
    cache_key,
    make_entry,
    pack_artifact,
    unpack_artifact,
)
from repro.pipeline.compiler import compile_and_profile, measure_performance
from repro.pipeline.config import DBDS
from repro.vm import VirtualMachine, translate_program

SOURCE = """
fn main(n: int) -> int {
  var i: int = 0;
  var s: int = 0;
  while (i < n) { s = s + i * i; i = i + 1; }
  return s;
}
"""


def compiled():
    return compile_and_profile(SOURCE, "main", [[5]], DBDS)


def test_pack_unpack_roundtrip_preserves_shared_identity():
    program, _ = compiled()
    bytecode = translate_program(program)
    restored_program, restored_bytecode = unpack_artifact(
        pack_artifact(program, bytecode)
    )
    fn = restored_bytecode.function("main")
    # One pickle: the bytecode's entry block IS a block of the restored
    # program, not a disconnected copy.
    assert fn.entry_block is restored_program.function("main").entry
    vm = VirtualMachine(restored_bytecode, metered=True)
    assert vm.run("main", [10]).value == 285


def test_unpack_tolerates_legacy_program_only_blob():
    import pickle

    program, _ = compiled()
    restored, bytecode = unpack_artifact(pickle.dumps(program))
    assert bytecode is None
    assert restored.function("main") is not None


def test_cache_entry_carries_bytecode(tmp_path: pathlib.Path):
    program, report = compiled()
    cache = ArtifactCache(tmp_path)
    key = cache_key(SOURCE, DBDS, entry="main")
    cache.put(
        make_entry(key, program, report, bytecode=translate_program(program))
    )
    entry = cache.get(key)
    assert entry is not None
    bytecode = entry.bytecode()
    assert bytecode is not None
    cycles, results = measure_performance(
        entry.program(), "main", [[10]], engine="vm", bytecode=bytecode
    )
    assert results[0].value == 285


def test_entry_without_bytecode_returns_none(tmp_path: pathlib.Path):
    program, report = compiled()
    cache = ArtifactCache(tmp_path)
    key = cache_key(SOURCE, DBDS, entry="main")
    cache.put(make_entry(key, program, report))
    assert cache.get(key).bytecode() is None


def test_measure_performance_engines_agree():
    program, _ = compiled()
    ref_cycles, ref_results = measure_performance(program, "main", [[12]])
    vm_cycles, vm_results = measure_performance(
        program, "main", [[12]], engine="vm"
    )
    assert ref_cycles == vm_cycles
    assert ref_results[0].value == vm_results[0].value
    assert ref_results[0].steps == vm_results[0].steps


def test_unoptimized_program_artifact_roundtrip():
    program = compile_source(SOURCE)
    restored, bytecode = unpack_artifact(
        pack_artifact(program, translate_program(program))
    )
    assert VirtualMachine(bytecode).run("main", [6]).value == 55
