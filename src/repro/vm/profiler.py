"""Execution profiling for the bytecode VM.

Attributes metered cycles and instruction counts **per opcode**, **per
basic block** and **per function**, plus collapsed call-stack weights
consumable by standard flamegraph tooling (Brendan Gregg's
``flamegraph.pl``, speedscope, inferno).  Surfaced on the CLI as the
``repro profile`` verb and as ``--profile-run`` on ``run``/``bench``.

Zero-overhead contract
----------------------
The profiled dispatch loop is a **separate specialization**:
:class:`ProfilingVirtualMachine` overrides ``_run_frame`` with its own
copy of the metered loop plus attribution, and pins ``profile=None`` /
``observer=None`` so the shared opcode handlers keep taking their fast
edge paths.  :class:`~repro.vm.machine.VirtualMachine` itself is not
touched — the default VM pays nothing for the profiler's existence.
``tests/test_vm/test_profiler.py`` pins the override and the
instruction-stream identity; the CI bench gate (≥2× median VM speedup)
re-verifies the claim end to end.

Accounting contract (mirrors the metered loop exactly)
------------------------------------------------------
* every executed instruction counts one step attributed to its opcode;
* an instruction's cycles are attributed only once it *completes* —
  a trapping instruction counts a step but no cycles, exactly like the
  metered loop (which skips ``cycles += ins[1]`` on the trap path);
* the step that raises :class:`BudgetExceeded` is counted by the
  machine but attributed to no opcode (the loop raises before
  dispatch), so per-opcode step sums reconcile with ``state.steps``
  on every run that finishes or traps, and per-opcode cycle sums
  reconcile with ``state.cycles`` always.

Block and function attribution piggyback on the same points, so their
cycle sums reconcile too; function/stack weights are **exclusive**
(callees excluded), which is what collapsed-stack format requires —
the sum over all stacks equals the metered total.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

from ..interp.interpreter import BudgetExceeded, ExecutionResult
from ..ir.ops import EvaluationTrap
from .bytecode import OP_CALL, OPCODE_NAMES, BytecodeProgram
from .machine import _HANDLERS, VirtualMachine

_NOPCODES = len(OPCODE_NAMES)


class VMProfile:
    """Accumulated attribution from one or more profiled executions.

    Merges across runs (and across programs, for suite-level tables):
    all tallies are additive.
    """

    def __init__(self) -> None:
        self.opcode_steps: list[int] = [0] * _NOPCODES
        self.opcode_cycles: list[float] = [0.0] * _NOPCODES
        #: block object -> [function name, steps, cycles]
        self._blocks: dict[Any, list] = {}
        self.func_calls: dict[str, int] = {}
        self.func_steps: dict[str, int] = {}
        self.func_cycles: dict[str, float] = {}
        #: call-stack tuple -> exclusive cycles
        self.stacks: dict[tuple[str, ...], float] = {}

    # -- totals ---------------------------------------------------------
    @property
    def total_steps(self) -> int:
        return sum(self.opcode_steps)

    @property
    def total_cycles(self) -> float:
        return sum(self.opcode_cycles)

    def reconciles(self, cycles: float) -> bool:
        """Do the per-opcode cycle sums match a metered total exactly?

        Cost-model cycles are integer-valued, so float summation is
        order-independent and exact; the tolerance only guards custom
        fractional cost models.
        """
        return math.isclose(
            self.total_cycles, cycles, rel_tol=1e-9, abs_tol=1e-9
        )

    # -- frame flush (called by the profiled loop) ----------------------
    def _flush_frame(
        self,
        fn_name: str,
        stack_key: tuple[str, ...],
        steps: int,
        cycles: float,
    ) -> None:
        self.func_calls[fn_name] = self.func_calls.get(fn_name, 0) + 1
        self.func_steps[fn_name] = self.func_steps.get(fn_name, 0) + steps
        self.func_cycles[fn_name] = self.func_cycles.get(fn_name, 0.0) + cycles
        self.stacks[stack_key] = self.stacks.get(stack_key, 0.0) + cycles

    # -- merge ----------------------------------------------------------
    def merge(self, other: "VMProfile") -> "VMProfile":
        for i in range(_NOPCODES):
            self.opcode_steps[i] += other.opcode_steps[i]
            self.opcode_cycles[i] += other.opcode_cycles[i]
        for block, (fn_name, steps, cycles) in other._blocks.items():
            acc = self._blocks.get(block)
            if acc is None:
                self._blocks[block] = [fn_name, steps, cycles]
            else:
                acc[1] += steps
                acc[2] += cycles
        for name, n in other.func_calls.items():
            self.func_calls[name] = self.func_calls.get(name, 0) + n
        for name, n in other.func_steps.items():
            self.func_steps[name] = self.func_steps.get(name, 0) + n
        for name, c in other.func_cycles.items():
            self.func_cycles[name] = self.func_cycles.get(name, 0.0) + c
        for key, c in other.stacks.items():
            self.stacks[key] = self.stacks.get(key, 0.0) + c
        return self

    # -- tables ---------------------------------------------------------
    def top_opcodes(self, n: int = 10) -> list[tuple[str, int, float]]:
        rows = [
            (OPCODE_NAMES[i], self.opcode_steps[i], self.opcode_cycles[i])
            for i in range(_NOPCODES)
            if self.opcode_steps[i]
        ]
        rows.sort(key=lambda r: (-r[2], -r[1], r[0]))
        return rows[:n]

    def top_functions(self, n: int = 10) -> list[tuple[str, int, int, float]]:
        rows = [
            (
                name,
                self.func_calls.get(name, 0),
                self.func_steps.get(name, 0),
                self.func_cycles.get(name, 0.0),
            )
            for name in self.func_calls
        ]
        rows.sort(key=lambda r: (-r[3], -r[2], r[0]))
        return rows[:n]

    def top_blocks(self, n: int = 10) -> list[tuple[str, str, int, float]]:
        rows = [
            (fn_name, block.name, steps, cycles)
            for block, (fn_name, steps, cycles) in self._blocks.items()
            if steps
        ]
        rows.sort(key=lambda r: (-r[3], -r[2], r[0], r[1]))
        return rows[:n]

    # -- renderers ------------------------------------------------------
    def format(self, top: int = 10) -> str:
        """The hot-path report ``repro profile`` prints."""
        total_cycles = self.total_cycles or 1.0
        lines = [
            f"profiled: {self.total_steps} step(s), "
            f"{self.total_cycles:g} cycle(s)",
            "",
            f"{'opcode':<14} {'steps':>10} {'cycles':>12} {'share':>7}",
        ]
        for name, steps, cycles in self.top_opcodes(top):
            lines.append(
                f"{name:<14} {steps:>10} {cycles:>12g} "
                f"{100.0 * cycles / total_cycles:>6.1f}%"
            )
        lines += [
            "",
            f"{'function':<20} {'calls':>8} {'steps':>10} "
            f"{'cycles':>12} {'share':>7}",
        ]
        for name, calls, steps, cycles in self.top_functions(top):
            lines.append(
                f"{name:<20} {calls:>8} {steps:>10} {cycles:>12g} "
                f"{100.0 * cycles / total_cycles:>6.1f}%"
            )
        lines += [
            "",
            f"{'block':<26} {'steps':>10} {'cycles':>12} {'share':>7}",
        ]
        for fn_name, block_name, steps, cycles in self.top_blocks(top):
            label = f"{fn_name}:{block_name}"
            lines.append(
                f"{label:<26} {steps:>10} {cycles:>12g} "
                f"{100.0 * cycles / total_cycles:>6.1f}%"
            )
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack lines (``a;b;c <weight>``) for flamegraphs.

        Weights are exclusive cycles rounded to integers (the format
        requires integer weights); zero-weight stacks are dropped.
        """
        lines = []
        for key in sorted(self.stacks):
            weight = int(round(self.stacks[key]))
            if weight > 0:
                lines.append(f"{';'.join(key)} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": 1,
            "total_steps": self.total_steps,
            "total_cycles": self.total_cycles,
            "opcodes": [
                {"opcode": name, "steps": steps, "cycles": cycles}
                for name, steps, cycles in self.top_opcodes(_NOPCODES)
            ],
            "functions": [
                {
                    "function": name,
                    "calls": calls,
                    "steps": steps,
                    "cycles": cycles,
                }
                for name, calls, steps, cycles in self.top_functions(
                    len(self.func_calls)
                )
            ],
            "blocks": [
                {
                    "function": fn_name,
                    "block": block_name,
                    "steps": steps,
                    "cycles": cycles,
                }
                for fn_name, block_name, steps, cycles in self.top_blocks(
                    len(self._blocks)
                )
            ],
            "stacks": {
                ";".join(key): cycles
                for key, cycles in sorted(self.stacks.items())
            },
        }


class ProfilingVirtualMachine(VirtualMachine):
    """A :class:`VirtualMachine` whose dispatch loop attributes cycles.

    Always metered (attribution without metering is meaningless) and
    always with ``profile=None`` / ``observer=None`` — the shared
    opcode handlers check those two attributes for their fast edge
    path, so pinning them keeps handler behaviour identical to an
    unobserved metered run.  Use the base class's ``profile=`` hook
    (:class:`~repro.interp.interpreter.ProfileCollector`) when you want
    branch probabilities for the compiler instead of a runtime profile.
    """

    def __init__(
        self,
        bytecode: BytecodeProgram,
        max_steps: int = 50_000_000,
        max_call_depth: int = 200,
        vmprofile: Optional[VMProfile] = None,
    ) -> None:
        super().__init__(
            bytecode,
            max_steps=max_steps,
            metered=True,
            profile=None,
            max_call_depth=max_call_depth,
            observer=None,
        )
        self.vmprofile = vmprofile if vmprofile is not None else VMProfile()
        self._stack: list[str] = []

    def _run_frame(self, fn, args):
        # A line-for-line copy of the base class's metered
        # specialization with attribution added; keep the two in sync
        # (test_profiler pins step/cycle parity against the base VM).
        if self._call_depth > self.max_call_depth:
            raise EvaluationTrap("stack overflow")
        regs = fn.template[:]
        if args:
            regs[: len(args)] = args
        state = self.state
        max_steps = self.max_steps
        handlers = _HANDLERS
        code = fn.code
        prof = self.vmprofile
        op_steps = prof.opcode_steps
        op_cycles = prof.opcode_cycles
        blocks = prof._blocks
        fn_name = fn.name
        stack = self._stack
        stack.append(fn_name)
        stack_key = tuple(stack)
        f_steps = 0
        f_cycles = 0.0
        steps = state.steps
        cycles = state.cycles
        pc = 0
        try:
            while True:
                ins = code[pc]
                steps += 1
                if steps > max_steps:
                    state.steps = steps
                    state.cycles = cycles
                    raise BudgetExceeded(
                        f"exceeded {max_steps} interpreter steps"
                    )
                op = ins[0]
                op_steps[op] += 1
                f_steps += 1
                if op != OP_CALL:
                    pc = handlers[op](self, ins, regs, pc)
                    if pc < 0:
                        cost = ins[1]
                        op_cycles[op] += cost
                        f_cycles += cost
                        block = ins[2].block
                        acc = blocks.get(block)
                        if acc is None:
                            blocks[block] = [fn_name, 1, cost]
                        else:
                            acc[1] += 1
                            acc[2] += cost
                        state.steps = steps
                        state.cycles = cycles + cost
                        return self._retval
                else:
                    state.steps = steps
                    state.cycles = cycles
                    regs[ins[3]] = self._call(
                        ins[4], [regs[r] for r in ins[5]]
                    )
                    steps = state.steps
                    cycles = state.cycles
                    pc += 1
                cost = ins[1]
                cycles += cost
                op_cycles[op] += cost
                f_cycles += cost
                block = ins[2].block
                acc = blocks.get(block)
                if acc is None:
                    blocks[block] = [fn_name, 1, cost]
                else:
                    acc[1] += 1
                    acc[2] += cost
        except EvaluationTrap:
            if steps > state.steps:
                state.steps = steps
                state.cycles = cycles
            raise
        finally:
            stack.pop()
            prof._flush_frame(fn_name, stack_key, f_steps, f_cycles)


def profile_run(
    program=None,
    entry: str = "main",
    arg_sets: Iterable[tuple] = ((),),
    *,
    bytecode: Optional[BytecodeProgram] = None,
    max_steps: int = 50_000_000,
    vmprofile: Optional[VMProfile] = None,
) -> tuple[float, list[ExecutionResult], VMProfile]:
    """Execute ``entry`` over ``arg_sets`` under the profiling VM.

    Returns ``(total metered cycles, per-run results, profile)``.  The
    machine is reset between argument sets (run-to-run isolation, like
    ``measure_performance``) while the profile accumulates across all
    of them.
    """
    if bytecode is None:
        if program is None:
            raise ValueError("need a program or pre-translated bytecode")
        from .translate import translate_program

        bytecode = translate_program(program)
    vm = ProfilingVirtualMachine(
        bytecode, max_steps=max_steps, vmprofile=vmprofile
    )
    total = 0.0
    results: list[ExecutionResult] = []
    for args in arg_sets:
        vm.reset()
        result = vm.run(entry, list(args))
        results.append(result)
        total += result.cycles
    return total, results, vm.vmprofile
