"""The registered bytecode checkers (scope ``"bc"``).

Five checkers over one translated function, run through the same
registry/report machinery as the IR and LIR sanitizers:

* ``bc-structure`` — frame shape, span tiling, per-tuple layout against
  the :mod:`repro.vm.opspec` registry, handler coverage, operand
  ranges, edge well-formedness.  Owns every :class:`DecodeError`; the
  dataflow checkers skip a function whose structure is broken.
* ``bc-defuse`` — register def-before-use via the forward
  :class:`MustDefined` analysis, on both streams, including phi-move
  sources on every edge.
* ``bc-accounting`` — conservation: each superinstruction's cycle cost
  is the exact ordered sum of its unfused constituents, its prefix
  halves tuple is exactly ``code[pc:pc+w-1]``, and each quickened form
  is cost-identical to its generic origin.
* ``bc-xcode-equivalence`` — field-by-field decompilation of every
  fast-stream site back to the plain code window it covers (and of
  every padding slot to its original tuple), per instruction family.
* ``bc-codegen-lint`` — the static lint over the closure engine's
  generated source (:mod:`.lint`).

A sixth, ``bc-retranslate``, compares the function against a fresh
translation of the same program (the strongest artifact-tamper check —
translation is deterministic, and both sides share IR node identity,
so tuple equality is exact except for embedded callee functions, which
compare by name); it only runs when the orchestrator supplies
``fresh_fn``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ...vm.bytecode import OP_DIV, OP_GOTO, OP_MOD, BytecodeFunction
from ...vm.fusion import NONTRAP_OPS, _pair_eligible
from ...vm.machine import XHANDLERS
from ...vm.opspec import BASE_FAMILIES, OPCODE_SPECS
from ...vm.quicken import _GUARD_OPS, _RC_OPS, _SWAP_RC
from ..core import (
    SCOPE_BC,
    CheckReport,
    _ContextBase,
    _execute,
    _select,
    checker,
)
from .cfg import DecodeError, build_cfg, instruction_events, spec_of
from .dataflow import MustDefined, solve_forward
from .lint import lint_closure_source

#: cap per-checker violation spam for one badly corrupted function
_MAX_REPORTS = 20


class BcCheckerContext(_ContextBase):
    """One bytecode check run: the function plus memoized CFGs."""

    def __init__(
        self,
        fn: BytecodeFunction,
        bytecode=None,
        fresh_fn: Optional[BytecodeFunction] = None,
        label: Optional[str] = None,
    ) -> None:
        super().__init__(label or fn.name)
        self.fn = fn
        self.bytecode = bytecode
        self.fresh_fn = fresh_fn
        self._cfgs: dict = {}
        self._structure: Optional[bool] = None

    def cfg(self, fused: bool = False):
        cached = self._cfgs.get(fused)
        if cached is None:
            cached = build_cfg(self.fn, fused=fused)
            self._cfgs[fused] = cached
        return cached

    def structure_ok(self) -> bool:
        """Precondition probe for the dataflow checkers (same pattern
        as the LIR suite): when CFG recovery itself fails,
        bc-structure owns the failure."""
        if self._structure is None:
            try:
                self.cfg(False)
                if self.fn.xcode is not None:
                    self.cfg(True)
                self._structure = bool(self.fn.blocks)
            except DecodeError:
                self._structure = False
        return self._structure


# ----------------------------------------------------------------------
# bc-structure
# ----------------------------------------------------------------------
def _check_site(ctx, stream, pc: int, fused: bool) -> None:
    fn = ctx.fn
    ins = stream[pc]
    spec = spec_of(ins)
    opcode = ins[0]
    if opcode >= len(XHANDLERS) or not callable(XHANDLERS[opcode]):
        ctx.report(f"pc {pc}: opcode {opcode} has no registered handler")
        return
    expected_len = spec.xcode_length() if fused else spec.code_length()
    if len(ins) != expected_len:
        ctx.report(
            f"pc {pc}: {spec.name} tuple has {len(ins)} slots, "
            f"expected {expected_len}"
        )
        return
    if fused:
        weight = spec.weight if spec.family not in BASE_FAMILIES else 1
        if ins[-1] != weight:
            ctx.report(
                f"pc {pc}: {spec.name} carries step weight {ins[-1]!r}, "
                f"expected {weight}"
            )
    cost = ins[1]
    if isinstance(cost, bool) or not isinstance(cost, (int, float)):
        ctx.report(f"pc {pc}: non-numeric cycle cost {cost!r}")
    elif cost < 0:
        ctx.report(f"pc {pc}: negative cycle cost {cost!r}")
    try:
        events = instruction_events(ins, fused)
    except DecodeError as exc:
        ctx.report(f"pc {pc}: {exc}")
        return
    for kind, value in events:
        if kind in ("use", "def"):
            if not isinstance(value, int) or isinstance(value, bool) or not (
                0 <= value < fn.nregs
            ):
                ctx.report(
                    f"pc {pc}: {spec.name} {kind} of out-of-range "
                    f"register {value!r} (nregs={fn.nregs})"
                )
        else:  # edge
            moves = value[1]
            for move in moves:
                if (
                    not isinstance(move, tuple)
                    or len(move) != 2
                    or not all(
                        isinstance(r, int) and 0 <= r < fn.nregs
                        for r in move
                    )
                ):
                    ctx.report(
                        f"pc {pc}: malformed edge move {move!r}"
                    )
    if spec.family == "call":
        callee, argregs = ins[4], ins[5]
        if not isinstance(callee, BytecodeFunction):
            ctx.report(f"pc {pc}: call target {callee!r} is not a function")
        else:
            if len(argregs) != callee.nparams:
                ctx.report(
                    f"pc {pc}: call passes {len(argregs)} arg(s) but "
                    f"{callee.name!r} takes {callee.nparams}"
                )
            if (
                ctx.bytecode is not None
                and ctx.bytecode.functions.get(callee.name) is not callee
            ):
                ctx.report(
                    f"pc {pc}: call target {callee.name!r} is not the "
                    f"program's function of that name"
                )


@checker(
    "bc-structure",
    scope=SCOPE_BC,
    description="stream shape: spans, opcodes, operands, handlers",
)
def check_bc_structure(ctx: BcCheckerContext) -> None:
    fn = ctx.fn
    if not isinstance(fn.nregs, int) or fn.nregs < 0:
        ctx.report(f"bad register count {fn.nregs!r}")
        return
    if not isinstance(fn.nparams, int) or not 0 <= fn.nparams <= fn.nregs:
        ctx.report(
            f"parameter count {fn.nparams!r} outside the register file "
            f"({fn.nregs})"
        )
        return
    if len(fn.template) != fn.nregs:
        ctx.report(
            f"register template has {len(fn.template)} slot(s) for "
            f"{fn.nregs} register(s)"
        )
        return
    if (
        fn.const_count < 0
        or fn.const_base < 0
        or fn.const_base + fn.const_count > fn.nregs
    ):
        ctx.report(
            f"constant range [{fn.const_base}, "
            f"{fn.const_base + fn.const_count}) outside the register file"
        )
        return
    if not fn.blocks:
        # Legacy artifact (schema v2): no span metadata, so only the
        # per-tuple shape of the plain stream is checkable.
        for pc in range(len(fn.code)):
            try:
                spec = spec_of(fn.code[pc])
            except DecodeError as exc:
                ctx.report(f"pc {pc}: {exc}")
                continue
            if spec.family not in BASE_FAMILIES:
                ctx.report(
                    f"pc {pc}: fused-only opcode {spec.name!r} in the "
                    f"plain code stream"
                )
                continue
            _check_site(ctx, fn.code, pc, fused=False)
        return
    for fused in (False, True) if fn.xcode is not None else (False,):
        kind = "xcode" if fused else "code"
        try:
            cfg = ctx.cfg(fused)
        except DecodeError as exc:
            ctx.report(f"{kind} stream: {exc}")
            continue
        before = len(ctx.violations)
        stream = cfg.stream()
        for block in cfg.blocks:
            for pc in block.pcs:
                _check_site(ctx, stream, pc, fused)
                if len(ctx.violations) - before > _MAX_REPORTS:
                    ctx.report(f"{kind} stream: further violations elided")
                    return


# ----------------------------------------------------------------------
# bc-defuse
# ----------------------------------------------------------------------
@checker(
    "bc-defuse",
    scope=SCOPE_BC,
    description="every register read is defined on all paths",
)
def check_bc_defuse(ctx: BcCheckerContext) -> None:
    if not ctx.structure_ok():
        return
    streams = (False, True) if ctx.fn.xcode is not None else (False,)
    for fused in streams:
        cfg = ctx.cfg(fused)
        result = solve_forward(cfg, MustDefined())
        stream = cfg.stream()
        kind = "xcode" if fused else "code"
        for block in cfg.blocks:
            state = result.entry[block.index]
            if state is None:
                continue  # unreachable from the entry
            defined = set(state)
            for pc in block.pcs:
                for event, value in instruction_events(stream[pc], fused):
                    if event == "use":
                        if value not in defined:
                            ctx.report(
                                f"{kind} pc {pc}: read of register "
                                f"r{value} not defined on all paths",
                                block=block.name,
                            )
                    elif event == "def":
                        defined.add(value)
                    else:  # edge: moves run in order, dests become defined
                        local = set(defined)
                        for dest, src in value[1]:
                            if src not in local:
                                ctx.report(
                                    f"{kind} pc {pc}: edge move "
                                    f"r{dest}<-r{src} reads an undefined "
                                    f"register",
                                    block=block.name,
                                )
                            local.add(dest)


# ----------------------------------------------------------------------
# bc-accounting
# ----------------------------------------------------------------------
@checker(
    "bc-accounting",
    scope=SCOPE_BC,
    description="superinstruction cost/weight conservation",
)
def check_bc_accounting(ctx: BcCheckerContext) -> None:
    fn = ctx.fn
    if fn.xcode is None or not ctx.structure_ok():
        return
    cfg = ctx.cfg(True)
    code = fn.code
    for block in cfg.blocks:
        for pc in block.pcs:
            xins = fn.xcode[pc]
            weight = xins[-1]
            expected = 0
            for covered in range(pc, pc + weight):
                expected = expected + code[covered][1]
            if xins[1] != expected:
                ctx.report(
                    f"pc {pc}: fused cost {xins[1]!r} != sum of "
                    f"constituent costs {expected!r}",
                    block=block.name,
                )
            if weight > 1:
                halves = xins[-2]
                if halves != tuple(code[pc:pc + weight - 1]):
                    ctx.report(
                        f"pc {pc}: prefix-halves tuple does not match "
                        f"code[{pc}:{pc + weight - 1}]",
                        block=block.name,
                    )


# ----------------------------------------------------------------------
# bc-xcode-equivalence
# ----------------------------------------------------------------------
def _equivalent_quick_const(fn, xins, generic) -> bool:
    lo = fn.const_base
    hi = lo + fn.const_count
    gop, xop = generic[0], xins[0]
    # right operand baked
    if _RC_OPS.get(gop) == xop and lo <= generic[5] < hi:
        value = fn.template[generic[5]]
        if not (gop in (OP_DIV, OP_MOD) and value == 0):
            expected = (
                xop, generic[1], generic[2], generic[3], generic[4],
                value, 1,
            )
            if xins == expected and type(xins[5]) is type(value):
                return True
    # left operand baked (commutative / mirrored compare)
    if _SWAP_RC.get(gop) == xop and lo <= generic[4] < hi:
        value = fn.template[generic[4]]
        expected = (
            xop, generic[1], generic[2], generic[3], generic[5], value, 1,
        )
        if xins == expected and type(xins[5]) is type(value):
            return True
    return False


def _equivalent_site(ctx, pc: int) -> Optional[str]:
    """None when the fast-stream site decompiles to its code window,
    else a message describing the mismatch."""
    fn = ctx.fn
    xins = fn.xcode[pc]
    spec = spec_of(xins)
    family = spec.family
    code = fn.code
    if family in BASE_FAMILIES:
        if xins != code[pc] + (1,):
            return f"pc {pc}: plain site differs from code[{pc}]"
        return None
    if family == "quick-const":
        if not _equivalent_quick_const(fn, xins, code[pc]):
            return (
                f"pc {pc}: {spec.name} does not decompile to "
                f"code[{pc}] with a baked interned constant"
            )
        return None
    if family == "quick-guard":
        generic = code[pc]
        if _GUARD_OPS.get(generic[0]) != xins[0]:
            return f"pc {pc}: {spec.name} origin is not code[{pc}]"
        if xins[1:6] != generic[1:6]:
            return f"pc {pc}: {spec.name} operand fields differ from code[{pc}]"
        if xins[6] is not fn.xcode:
            return f"pc {pc}: {spec.name} deopt stream is not this function's"
        if xins[7] != generic + (1,):
            return f"pc {pc}: {spec.name} generic escape differs from code[{pc}]"
        return None
    a = code[pc]
    b = code[pc + 1] if pc + 1 < len(code) else None
    if family == "fused-if":
        if b is None or (a[0], b[0]) != spec.origin or b[4] != a[3]:
            return f"pc {pc}: {spec.name} constituents are not cmp+if on the compare result"
        expected = (
            xins[0], a[1] + b[1], b[2], a[3], a[4], a[5], b[5], b[6],
            (a,), 2,
        )
    elif family == "fused-pair":
        if b is None or (a[0], b[0]) != spec.origin:
            return f"pc {pc}: {spec.name} origin != code opcodes at [{pc}, {pc + 1}]"
        expected = (
            xins[0], a[1] + b[1], a[2], a[3], a[4], a[5],
            b[3], b[4], b[5], (a,), 2,
        )
    elif family == "fused-goto":
        if b is None or (a[0], b[0]) != spec.origin:
            return f"pc {pc}: {spec.name} origin != code opcodes at [{pc}, {pc + 1}]"
        expected = (
            xins[0], a[1] + b[1], a[2], a[3], a[4], a[5], b[4], (a,), 2,
        )
    elif family == "fused2":
        if b is None or not _pair_eligible(a, b):
            return f"pc {pc}: fused2 covers an ineligible pair"
        expected = (xins[0], a[1] + b[1], a[2], -1, a, b, (a,), 2)
    elif family == "fused2-goto":
        if b is None or b[0] != OP_GOTO or a[0] not in NONTRAP_OPS:
            return f"pc {pc}: fused_goto covers an ineligible pair"
        expected = (xins[0], a[1] + b[1], a[2], -1, a, b[4], (a,), 2)
    elif family == "fused-triple":
        c = code[pc + 2] if pc + 2 < len(code) else None
        if c is None or (a[0], b[0], c[0]) != spec.origin:
            return f"pc {pc}: {spec.name} origin != code opcodes at [{pc}..{pc + 2}]"
        expected = (
            xins[0], a[1] + b[1] + c[1], a[2], a[3], a[4], a[5],
            b[3], b[4], b[5], c[3], c[4], c[5], (a, b), 3,
        )
    else:  # pragma: no cover - every family is handled above
        return f"pc {pc}: unhandled family {family!r}"
    if xins != expected:
        return f"pc {pc}: {spec.name} fields do not decompile to its code window"
    return None


@checker(
    "bc-xcode-equivalence",
    scope=SCOPE_BC,
    description="fast stream decompiles to the plain code stream",
)
def check_bc_xcode_equivalence(ctx: BcCheckerContext) -> None:
    fn = ctx.fn
    if fn.xcode is None or not ctx.structure_ok():
        return
    cfg = ctx.cfg(True)
    reported = 0
    for block in cfg.blocks:
        for pc in block.pcs:
            message = _equivalent_site(ctx, pc)
            if message is not None:
                ctx.report(message, block=block.name)
                reported += 1
                if reported > _MAX_REPORTS:
                    ctx.report("further equivalence violations elided")
                    return
    for pc in sorted(cfg.padding):
        if fn.xcode[pc] != fn.code[pc] + (1,):
            ctx.report(
                f"pc {pc}: padding slot does not keep its original tuple"
            )
            reported += 1
            if reported > _MAX_REPORTS:
                ctx.report("further equivalence violations elided")
                return


# ----------------------------------------------------------------------
# bc-codegen-lint
# ----------------------------------------------------------------------
@checker(
    "bc-codegen-lint",
    scope=SCOPE_BC,
    description="closure codegen source lint",
)
def check_bc_codegen_lint(ctx: BcCheckerContext) -> None:
    fn = ctx.fn
    if not fn.blocks or not ctx.structure_ok():
        return
    for message in lint_closure_source(fn):
        ctx.report(message)


# ----------------------------------------------------------------------
# bc-retranslate
# ----------------------------------------------------------------------
def _same_instruction(mine: tuple, theirs: tuple) -> bool:
    """Tuple equality, except callee operands compare by *name*.

    Call instructions embed the callee :class:`BytecodeFunction`
    directly, and a fresh translation builds its own function objects —
    identity can't match across the two programs.  ``bc-structure``
    already pins the callee's identity *within* its own program, so a
    by-name comparison here loses nothing.
    """
    if mine == theirs:
        return True
    if len(mine) != len(theirs):
        return False
    for a, b in zip(mine, theirs):
        if isinstance(a, BytecodeFunction) and isinstance(b, BytecodeFunction):
            if a.name != b.name:
                return False
        elif isinstance(a, tuple) and isinstance(b, tuple):
            if not _same_instruction(a, b):
                return False
        elif a != b:
            return False
    return True


@checker(
    "bc-retranslate",
    scope=SCOPE_BC,
    description="matches a fresh translation of the program",
)
def check_bc_retranslate(ctx: BcCheckerContext) -> None:
    fresh = ctx.fresh_fn
    if fresh is None:
        return
    fn = ctx.fn
    for attribute in (
        "nparams", "nregs", "const_base", "const_count", "blocks",
    ):
        mine, theirs = getattr(fn, attribute), getattr(fresh, attribute)
        if mine != theirs:
            ctx.report(
                f"{attribute} = {mine!r} but a fresh translation "
                f"produces {theirs!r}"
            )
            return
    if len(fn.template) != len(fresh.template) or any(
        type(a) is not type(b) or a != b
        for a, b in zip(fn.template, fresh.template)
    ):
        ctx.report("register template differs from a fresh translation")
    if len(fn.code) != len(fresh.code):
        ctx.report(
            f"code length {len(fn.code)} != fresh translation "
            f"{len(fresh.code)}"
        )
        return
    reported = 0
    for pc, (mine, theirs) in enumerate(zip(fn.code, fresh.code)):
        if not _same_instruction(mine, theirs):
            ctx.report(
                f"pc {pc}: instruction differs from a fresh translation"
            )
            reported += 1
            if reported > 5:
                ctx.report("further retranslation mismatches elided")
                return


def run_bc_checkers(
    fn: BytecodeFunction,
    bytecode=None,
    *,
    fresh_fn: Optional[BytecodeFunction] = None,
    label: Optional[str] = None,
    checkers: Optional[Iterable[str]] = None,
    disable: Sequence[str] = (),
    fail_fast: bool = False,
) -> CheckReport:
    """Run bytecode checkers over one translated function."""
    selected = _select(checkers, disable, SCOPE_BC)
    ctx = BcCheckerContext(fn, bytecode, fresh_fn=fresh_fn, label=label)
    return _execute(ctx, selected, fail_fast, CheckReport(graph=ctx.graph_name))


__all__ = ["BcCheckerContext", "run_bc_checkers"]
