"""Experiment B1 — Section 3.1: backtracking vs simulation compile time.

The paper reports that the CFG copy required by backtracking-based
duplication (Algorithm 1) "increased compilation time by a factor of 10"
in Graal.  The effect is a *scaling* argument: Algorithm 1 pays one
whole-graph copy plus a full optimization pass per predecessor-merge
pair, while simulation covers all pairs in a single traversal — so the
gap widens with compilation-unit size (Graal units reach >100k nodes).

This benchmark compiles synthetic units of growing merge counts under
both configurations and regenerates that scaling curve.

Shape checks: the slowdown factor grows with unit size and exceeds 2x on
the largest unit (the paper's 10x corresponds to far larger units than
a pure-Python harness can time comfortably).
"""

import time

from _support import record_figure

from repro.bench.harness import measure_workload
from repro.bench.workloads.suites import SCALA_DACAPO, Workload, generate_workload
from repro.pipeline.config import BACKTRACKING, DBDS


def merge_chain_workload(merges: int) -> Workload:
    """A single compilation unit with ``merges`` sequential diamonds,
    each a duplication candidate (no loops, so every pair qualifies)."""
    lines = ["fn main(x: int) -> int {", "  var acc: int = x;"]
    for j in range(merges):
        lines.append(f"  var p{j}: int;")
        lines.append(
            f"  if (acc > {7 + 3 * j}) {{ p{j} = acc; }} else {{ p{j} = {j % 9}; }}"
        )
        lines.append(f"  acc = acc + p{j} * {2 + j % 3};")
    lines.append("  return acc;")
    lines.append("}")
    return Workload(
        name=f"chain{merges}",
        suite="synthetic",
        source="\n".join(lines),
        profile_args=[[5]],
        measure_args=[[5]],
    )


SIZES = [8, 16, 32]


def _scaling_rows():
    rows = []
    for merges in SIZES:
        workload = merge_chain_workload(merges)
        dbds = measure_workload(workload, DBDS)
        back = measure_workload(workload, BACKTRACKING)
        rows.append((merges, dbds, back))
    return rows


def test_backtracking_compile_time_scaling(benchmark):
    rows = benchmark.pedantic(_scaling_rows, rounds=1, iterations=1)
    lines = [
        "=== Backtracking vs simulation (paper: copying made compilation ~10x slower) ===",
        f"{'merges':>8s}{'dbds ms':>10s}{'backtrack ms':>14s}{'factor':>9s}",
    ]
    factors = []
    for merges, dbds, back in rows:
        factor = back.compile_time / max(dbds.compile_time, 1e-9)
        factors.append(factor)
        lines.append(
            f"{merges:>8d}{dbds.compile_time * 1e3:>10.2f}"
            f"{back.compile_time * 1e3:>14.2f}{factor:>9.2f}"
        )
    record_figure("backtracking_vs_simulation", "\n".join(lines))
    assert factors[-1] > 2.0, "backtracking must fall behind on large units"
    assert factors[-1] > factors[0], "the gap must widen with unit size"


def test_cfg_copy_dominates_backtracking_cost(benchmark):
    """Micro-measurement of the paper's root cause: Algorithm 1 needs
    one whole-graph copy *per pair*; simulation covers every pair in a
    single dominator-tree traversal."""
    from repro.dbds.simulation import SimulationTier
    from repro.frontend.irbuilder import compile_source
    from repro.interp.profile import apply_profile, profile_program
    from repro.ir.copy import copy_graph
    from repro.opts.inline import InliningPhase

    workload = generate_workload(SCALA_DACAPO, "scalac")
    program = compile_source(workload.source)
    collector = profile_program(program, workload.entry, workload.profile_args)
    apply_profile(program, collector)
    graph = program.function("main")
    InliningPhase(program).run(graph)

    def one_simulation():
        return SimulationTier(graph, program).run()

    benchmark.pedantic(one_simulation, rounds=3, iterations=1)

    t0 = time.perf_counter()
    candidates = SimulationTier(graph, program).run()
    sim_time = time.perf_counter() - t0
    pair_count = max(len(candidates), 1)

    t0 = time.perf_counter()
    copy_graph(graph)
    copy_time = time.perf_counter() - t0

    backtracking_copy_cost = copy_time * pair_count
    record_figure(
        "copy_vs_simulation",
        "=== One CFG copy per pair (Algorithm 1) vs one simulation pass ===\n"
        f"pairs: {pair_count}  simulation pass: {sim_time * 1e3:.2f} ms  "
        f"copies for all pairs: {backtracking_copy_cost * 1e3:.2f} ms",
    )
    assert backtracking_copy_cost > sim_time * 0.5
