"""Static bytecode verifier over VM instruction streams.

JVM-style load-time verification for the register VM: before a
translated program — especially one rehydrated from an untrusted cache
artifact — reaches a dispatch loop, this package proves it well-formed
with purely static means.  Four layers:

* **CFG recovery + dataflow** (:mod:`.cfg`, :mod:`.dataflow`) — block
  structure decoded through the :mod:`repro.vm.opspec` registry, a
  forward/backward worklist engine over a small lattice API, and
  must-defined / liveness / constant-propagation analyses.
* **Structural checks** (:mod:`.checks`) — tuple layouts, operand
  ranges, branch targets, handler coverage of the full specialized
  opcode space, padding reachability.
* **Conservation + equivalence** — fused superinstruction costs and
  step weights equal their unfused constituents; quickened forms are
  cost-identical to their generic origins; the fast stream decompiles
  field-by-field to the plain code stream; optionally the whole
  function matches a deterministic fresh translation of the program.
* **Codegen lint** (:mod:`.lint`) — the closure engine's exec-generated
  source and the megaunit engine's whole-program module are checked
  for banned names, leaked globals, balanced accounting and (for the
  megaunit module) direct-call targets against the program's function
  table, without being executed.

Entry points: :func:`verify_bytecode` (full verification of a
:class:`~repro.vm.bytecode.BytecodeProgram`, optionally also of a
quickened clone of every function), :func:`verify_artifact` (the
cache-load profile: retranslate + compare, no codegen lint), and
:func:`run_bc_checkers` for one function.  CLI: ``--check-bc`` and
``repro check --verify-bytecode``; see docs/ANALYSIS.md.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ...obs.metrics import current_registry
from ...vm.quicken import quicken_function
from ..core import CheckReport, Severity, Violation
from .cfg import (
    BCBlock,
    BytecodeCFG,
    DecodeError,
    build_cfg,
    instruction_events,
    spec_of,
)
from .checks import BcCheckerContext, run_bc_checkers
from .corrupt import CorruptionRecord, CorruptionReport, corruption_campaign
from .dataflow import (
    ConstProp,
    DataflowResult,
    Liveness,
    MustDefined,
    solve,
    solve_backward,
    solve_forward,
)
from .lint import BANNED_NAMES, lint_closure_source, lint_megaunit_source

#: ``--check-bc`` modes: "load" verifies cache-loaded artifacts only,
#: "rewrite" additionally verifies freshly built fused streams (and a
#: quickened clone) after every translation.
CHECK_BC_MODES = ("off", "load", "rewrite")


@dataclass
class BcVerifyReport:
    """Outcome of one whole-program verification."""

    reports: list[CheckReport] = field(default_factory=list)
    #: program-level violations (e.g. globals_init mismatch)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors()

    def errors(self) -> list[Violation]:
        found = [
            v for v in self.violations if v.severity is Severity.ERROR
        ]
        for report in self.reports:
            found.extend(report.errors())
        return found

    def all_violations(self) -> list[Violation]:
        found = list(self.violations)
        for report in self.reports:
            found.extend(report.violations)
        return found

    def summary(self) -> str:
        errors = self.errors()
        if not errors:
            return f"bytecode verification ok ({len(self.reports)} stream(s))"
        return (
            f"bytecode verification failed: {len(errors)} error(s); "
            f"first: {errors[0].format()}"
        )

    def format(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {v.format()}" for v in self.all_violations())
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors()),
            "violations": [
                {
                    "checker": v.checker,
                    "severity": v.severity.value,
                    "graph": v.graph,
                    "block": v.block,
                    "message": v.message,
                }
                for v in self.all_violations()
            ],
            "functions": [r.graph for r in self.reports],
        }


class BytecodeVerificationError(Exception):
    """Raised by checked-mode pipelines when verification fails."""

    def __init__(self, report: BcVerifyReport) -> None:
        self.report = report
        super().__init__(report.summary())


def _quickened_clone(fn):
    clone = copy.copy(fn)
    clone.xcode = list(fn.xcode)
    quicken_function(clone)
    return clone


def verify_bytecode(
    bytecode,
    program=None,
    *,
    retranslate: Optional[bool] = None,
    lint: bool = True,
    quicken: bool = False,
    checkers: Optional[Iterable[str]] = None,
    disable: Sequence[str] = (),
    fail_fast: bool = False,
) -> BcVerifyReport:
    """Statically verify every function of a translated program.

    With ``program`` and ``retranslate`` (the default when a program is
    supplied), the program is re-translated — translation is
    deterministic — and every function is compared against the fresh
    result, including the flattened ``globals_init``; this assumes the
    default cost model, which is what every pipeline translation uses.
    With ``quicken``, a quickened *clone* of each fused function is
    additionally verified (the artifact itself is never mutated), so
    in-place quickening rewrites get the same checks as fusion ones.
    """
    start = time.perf_counter()
    if retranslate is None:
        retranslate = program is not None
    result = BcVerifyReport()
    disable = tuple(disable)
    if not lint:
        disable = disable + ("bc-codegen-lint",)

    fresh = None
    if retranslate and program is not None:
        from ...vm.translate import translate_program

        fresh = translate_program(program, fuse=False)
        if tuple(bytecode.globals_init) != tuple(fresh.globals_init):
            result.violations.append(
                Violation(
                    checker="bc-retranslate",
                    severity=Severity.ERROR,
                    graph="<program>",
                    message=(
                        "globals_init differs from a fresh translation"
                    ),
                )
            )
        fresh_names = set(fresh.functions)
        mine_names = set(bytecode.functions)
        if fresh_names != mine_names:
            result.violations.append(
                Violation(
                    checker="bc-retranslate",
                    severity=Severity.ERROR,
                    graph="<program>",
                    message=(
                        f"function set {sorted(mine_names)} differs from "
                        f"a fresh translation {sorted(fresh_names)}"
                    ),
                )
            )

    for name, fn in bytecode.functions.items():
        fresh_fn = fresh.functions.get(name) if fresh is not None else None
        report = run_bc_checkers(
            fn,
            bytecode,
            fresh_fn=fresh_fn,
            checkers=checkers,
            disable=disable,
            fail_fast=fail_fast,
        )
        result.reports.append(report)
        if fail_fast and not report.ok:
            break
        if quicken and fn.xcode is not None and fn.blocks:
            qreport = run_bc_checkers(
                _quickened_clone(fn),
                bytecode,
                label=f"{name} [quickened]",
                checkers=checkers,
                disable=tuple(
                    set(disable) | {"bc-codegen-lint", "bc-retranslate"}
                ),
                fail_fast=fail_fast,
            )
            result.reports.append(qreport)
            if fail_fast and not qreport.ok:
                break

    # Whole-program codegen lint: the megaunit module is one exec unit
    # over the entire function table, so its lint is program-level
    # (skipped when per-function verification already failed — linting
    # source generated from a known-bad table proves nothing).
    if (
        "bc-codegen-lint" not in disable
        and (checkers is None or "bc-codegen-lint" in checkers)
        and result.ok
    ):
        for message in lint_megaunit_source(bytecode):
            result.violations.append(
                Violation(
                    checker="bc-codegen-lint",
                    severity=Severity.ERROR,
                    graph="<megaunit>",
                    message=message,
                )
            )

    registry = current_registry()
    if registry.enabled:
        registry.inc(
            "repro_bcverify_runs_total",
            result="ok" if result.ok else "fail",
        )
        registry.observe(
            "repro_bcverify_seconds", time.perf_counter() - start
        )
    return result


def verify_artifact(program, bytecode) -> BcVerifyReport:
    """The cache-load profile: structural + dataflow + conservation +
    retranslation-equivalence checks over an untrusted artifact.

    The codegen lint is skipped (closure source is generated fresh from
    the — now verified — bytecode, not loaded from the artifact), and
    quickening clones are not re-checked (cached streams are stored
    unquickened; ``--check-bc=rewrite`` covers live rewrites).
    """
    return verify_bytecode(
        bytecode, program, retranslate=True, lint=False, quicken=False
    )


__all__ = [
    "BANNED_NAMES",
    "BCBlock",
    "BcCheckerContext",
    "BcVerifyReport",
    "BytecodeCFG",
    "BytecodeVerificationError",
    "CHECK_BC_MODES",
    "ConstProp",
    "CorruptionRecord",
    "CorruptionReport",
    "DataflowResult",
    "DecodeError",
    "Liveness",
    "MustDefined",
    "build_cfg",
    "corruption_campaign",
    "instruction_events",
    "lint_closure_source",
    "lint_megaunit_source",
    "run_bc_checkers",
    "solve",
    "solve_backward",
    "solve_forward",
    "spec_of",
    "verify_artifact",
    "verify_bytecode",
]
