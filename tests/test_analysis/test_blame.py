"""Phase-guard tests: blame the phase that broke the IR."""

from __future__ import annotations

import pytest

from repro.analysis import PhaseBlameError, PhaseGuard, use_guard
from repro.analysis.blame import CHECK_BOUNDARIES
from repro.ir.stamps import IntStamp
from repro.obs.sinks import event_to_dict, validate_record
from repro.obs.tracer import Tracer, use_tracer
from repro.opts.base import Phase
from repro.opts.canonicalize import CanonicalizerPhase


class BadProbabilityPhase(Phase):
    """A phase that silently corrupts the entry If's probability."""

    name = "bad-probability"

    def run(self, graph):
        graph.entry.terminator.true_probability = 3.0


class BadPhiPhase(Phase):
    name = "bad-phi"

    def run(self, graph):
        for block in graph.blocks:
            for phi in block.phis:
                phi._remove_input_at(0)
                return


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown check mode"):
        PhaseGuard("bogus")


def test_clean_phase_passes_under_guard(diamond):
    guard = PhaseGuard("each-phase")
    with use_guard(guard):
        CanonicalizerPhase().run(diamond["graph"])
    assert not guard.failures
    assert guard.checks >= 1


def test_bad_phase_is_blamed_with_checker_and_diff(diamond):
    with use_guard(PhaseGuard("each-phase")):
        with pytest.raises(PhaseBlameError) as info:
            BadProbabilityPhase().run(diamond["graph"])
    error = info.value
    assert error.phase == "bad-probability"
    assert error.graph == "foo"
    assert error.checkers == ["block-structure"]
    blame = error.format_blame()
    assert "phase 'bad-probability' broke" in blame
    assert "error[block-structure]" in blame
    assert "IR before/after the blamed phase:" in blame
    assert "+" in error.diff and "-" in error.diff  # a real unified diff


def test_bad_phi_phase_blames_phi_inputs(diamond):
    with use_guard(PhaseGuard("each-phase")):
        with pytest.raises(PhaseBlameError) as info:
            BadPhiPhase().run(diamond["graph"])
    assert info.value.checkers == ["phi-inputs"]


CORRUPTIONS = [
    (
        "block-structure",
        lambda d: setattr(d["graph"].entry.terminator, "true_probability", 9.0),
    ),
    ("phi-inputs", lambda d: d["phi"]._remove_input_at(0)),
    ("use-lists", lambda d: d["phi"].uses.clear()),
    ("stamp-soundness", lambda d: setattr(d["add"], "stamp", IntStamp(0, 1))),
]


@pytest.mark.parametrize(
    "expected,corrupt", CORRUPTIONS, ids=[c[0] for c in CORRUPTIONS]
)
def test_each_corruption_is_blamed_on_the_corrupting_phase(
    diamond, expected, corrupt
):
    class CorruptingPhase(Phase):
        name = "corruptor"

        def run(self, graph):
            corrupt(diamond)

    with use_guard(PhaseGuard("each-phase")):
        with pytest.raises(PhaseBlameError) as info:
            CorruptingPhase().run(diamond["graph"])
    assert info.value.phase == "corruptor"
    assert info.value.checkers == [expected]
    assert "phase 'corruptor' broke" in info.value.format_blame()


def test_keep_going_collects_instead_of_raising(diamond):
    guard = PhaseGuard("each-phase", fail_fast=False)
    with use_guard(guard):
        BadProbabilityPhase().run(diamond["graph"])
        # Compilation continues; the next phase re-detects the damage.
        CanonicalizerPhase().run(diamond["graph"])
    assert len(guard.failures) >= 2
    assert guard.failures[0].phase == "bad-probability"
    assert guard.failures[1].phase == "canonicalize"


def test_boundaries_mode_skips_phases_but_checks_boundaries(diamond):
    guard = PhaseGuard(CHECK_BOUNDARIES, fail_fast=False)
    with use_guard(guard):
        BadProbabilityPhase().run(diamond["graph"])
    assert not guard.failures  # phases are not bracketed in this mode
    guard.check_boundary("pipeline-exit", diamond["graph"])
    assert [f.phase for f in guard.failures] == ["pipeline-exit"]


def test_guard_emits_structured_events_and_profile_span(diamond):
    tracer = Tracer()
    guard = PhaseGuard("each-phase", fail_fast=False)
    with use_tracer(tracer), use_guard(guard):
        BadProbabilityPhase().run(diamond["graph"])
    names = [e.name for e in tracer.events]
    assert "analysis.violation" in names
    assert "analysis.blame" in names
    assert tracer.counter("analysis.blame") == 1
    # The check cost shows up as its own phase span for --profile-compile.
    assert any(
        e.name == "phase" and e.attrs.get("phase") == "ir-check"
        for e in tracer.events
        if e.kind == "span"
    )
    # Every emitted record satisfies the trace schema.
    for event in tracer.events:
        assert validate_record(event_to_dict(event)) == []
    blame = next(e for e in tracer.events if e.name == "analysis.blame")
    assert blame.attrs["phase"] == "bad-probability"
    assert blame.attrs["checkers"] == ["block-structure"]
