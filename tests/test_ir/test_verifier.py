"""Tests that the verifier catches each class of broken invariant."""

import pytest

from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
    VerificationError,
    verify_graph,
)
from tests.helpers import build_diamond


class TestValidGraphs:
    def test_diamond_passes(self, diamond):
        verify_graph(diamond["graph"])

    def test_empty_function(self):
        g = Graph("f", [], INT)
        g.entry.set_terminator(Return(g.const_int(0)))
        verify_graph(g)


class TestStructuralViolations:
    def test_missing_terminator(self):
        g = Graph("f", [], INT)
        with pytest.raises(VerificationError, match="no terminator"):
            verify_graph(g)

    def test_if_identical_targets(self):
        g = Graph("f", [("x", INT)], INT)
        t = g.new_block()
        cond = g.entry.append(Compare(CmpOp.GT, g.parameters[0], g.const_int(0)))
        branch = If(cond, t, t)
        g.entry.terminator = branch
        branch.block = g.entry
        t.add_predecessor(g.entry)
        t.add_predecessor(g.entry)
        t.set_terminator(Return(None))
        with pytest.raises(VerificationError, match="identical targets"):
            verify_graph(g)

    def test_bad_probability(self, diamond):
        diamond["graph"].entry.terminator.true_probability = 1.5
        with pytest.raises(VerificationError, match="probability"):
            verify_graph(diamond["graph"])

    def test_phi_input_count_mismatch(self, diamond):
        diamond["phi"]._append_input(diamond["graph"].const_int(5))
        with pytest.raises(VerificationError, match="inputs"):
            verify_graph(diamond["graph"])

    def test_critical_edge_detected(self):
        g = Graph("f", [("x", INT)], INT)
        other, merge = g.new_block(), g.new_block()
        cond = g.entry.append(Compare(CmpOp.GT, g.parameters[0], g.const_int(0)))
        g.entry.set_terminator(If(cond, merge, other))
        other.set_terminator(Goto(merge))
        merge.set_terminator(Return(g.const_int(0)))
        with pytest.raises(VerificationError, match="critical edge"):
            verify_graph(g)

    def test_wrong_block_link(self, diamond):
        g = diamond["graph"]
        add = diamond["add"]
        add.block = diamond["true_block"]
        with pytest.raises(VerificationError, match="block link"):
            verify_graph(g)


class TestSsaViolations:
    def test_use_not_dominated(self):
        g = Graph("f", [("x", INT)], INT)
        x = g.parameters[0]
        a, b, join = g.new_block(), g.new_block(), g.new_block()
        cond = g.entry.append(Compare(CmpOp.GT, x, g.const_int(0)))
        g.entry.set_terminator(If(cond, a, b))
        definition = a.append(ArithOp(BinOp.ADD, x, g.const_int(1)))
        a.set_terminator(Goto(join))
        b.set_terminator(Goto(join))
        user = join.append(ArithOp(BinOp.MUL, definition, definition))
        join.set_terminator(Return(user))
        with pytest.raises(VerificationError, match="dominate"):
            verify_graph(g)

    def test_use_before_def_in_block(self):
        g = Graph("f", [("x", INT)], INT)
        x = g.parameters[0]
        late = ArithOp(BinOp.ADD, x, g.const_int(1))
        early = ArithOp(BinOp.MUL, late, late)
        g.entry.append(early)
        g.entry.append(late)
        g.entry.set_terminator(Return(early))
        with pytest.raises(VerificationError, match="before its definition"):
            verify_graph(g)

    def test_entry_with_predecessors(self):
        g = Graph("f", [], INT)
        g.entry.set_terminator(Return(g.const_int(0)))
        g.entry.add_predecessor(g.entry)
        with pytest.raises(VerificationError, match="entry"):
            verify_graph(g)

    def test_phi_input_from_pred_is_legal(self):
        # A phi input defined inside the predecessor block is consumed
        # at the end of that block: this must verify.
        g = Graph("f", [("n", INT)], INT)
        header, body, exit_ = g.new_block(), g.new_block(), g.new_block()
        g.entry.set_terminator(Goto(header))
        phi = Phi(header, INT, [g.const_int(0)])
        header.add_phi(phi)
        cond = header.append(Compare(CmpOp.LT, phi, g.parameters[0]))
        header.set_terminator(If(cond, body, exit_))
        inc = body.append(ArithOp(BinOp.ADD, phi, g.const_int(1)))
        body.set_terminator(Goto(header))
        phi._append_input(inc)
        exit_.set_terminator(Return(phi))
        verify_graph(g)
