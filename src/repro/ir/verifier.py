"""Structural and SSA verifier.

Run between phases (and inside tests) to catch broken invariants as
close to their origin as possible.  Raises :class:`VerificationError`
with a description of the first violated property.
"""

from __future__ import annotations

from .block import Block
from .cfgutils import reachable_blocks
from .dominators import DominatorTree
from .graph import Graph
from .nodes import Constant, Goto, If, Instruction, Parameter, Phi, Terminator, Value


class VerificationError(Exception):
    """An IR invariant does not hold."""


def _fail(graph: Graph, message: str) -> None:
    raise VerificationError(f"{graph.name}: {message}")


def verify_graph(graph: Graph, check_dominance: bool = True) -> None:
    """Verify all structural invariants of one function graph."""
    reachable = reachable_blocks(graph)

    if graph.entry.predecessors:
        _fail(graph, "entry block has predecessors")

    block_set = set(graph.blocks)
    for block in graph.blocks:
        _verify_block_structure(graph, block, block_set)

    for block in reachable:
        _verify_edges(graph, block)
        _verify_phis(graph, block)

    if check_dominance:
        _verify_ssa_dominance(graph, reachable)


def _verify_block_structure(graph: Graph, block: Block, block_set: set) -> None:
    if block.terminator is None:
        _fail(graph, f"{block.name} has no terminator")
    if block.terminator.block is not block:
        _fail(graph, f"terminator of {block.name} has wrong block link")
    for target in block.terminator.targets:
        if target not in block_set:
            _fail(graph, f"{block.name} targets removed block {target.name}")
    term = block.terminator
    if isinstance(term, If):
        if term.true_target is term.false_target:
            _fail(graph, f"If in {block.name} has identical targets")
        if not (0.0 <= term.true_probability <= 1.0):
            _fail(graph, f"If in {block.name} has probability {term.true_probability}")
    for ins in block.instructions:
        if ins.block is not block:
            _fail(graph, f"{ins!r} in {block.name} has wrong block link")
        if isinstance(ins, Phi):
            _fail(graph, f"phi {ins!r} stored in instruction list of {block.name}")
    for phi in block.phis:
        if phi.block is not block:
            _fail(graph, f"{phi!r} in {block.name} has wrong block link")


def _verify_edges(graph: Graph, block: Block) -> None:
    # Every successor must list this block as predecessor exactly once
    # per edge (targets are distinct, so once).
    for succ in block.successors:
        count = sum(1 for p in succ.predecessors if p is block)
        if count != 1:
            _fail(
                graph,
                f"edge {block.name}->{succ.name} recorded {count} times in predecessors",
            )
    for pred in block.predecessors:
        if block not in pred.successors:
            _fail(graph, f"{pred.name} listed as predecessor of {block.name} but has no such edge")
    # Critical-edge invariant: predecessors of merges end in Goto.
    if block.is_merge():
        for pred in block.predecessors:
            if not isinstance(pred.terminator, Goto):
                _fail(
                    graph,
                    f"merge {block.name} has non-Goto predecessor {pred.name} "
                    "(critical edge not split)",
                )


def _verify_phis(graph: Graph, block: Block) -> None:
    for phi in block.phis:
        if len(phi.inputs) != len(block.predecessors):
            _fail(
                graph,
                f"{phi!r} has {len(phi.inputs)} inputs but {block.name} has "
                f"{len(block.predecessors)} predecessors",
            )


def _users_are_consistent(value: Value, user=None) -> bool:
    for recorded_user, count in value.uses.items():
        actual = sum(1 for v in recorded_user.inputs if v is value)
        if actual != count:
            return False
    if user is not None:
        # The reverse direction: this user's operand slots must be
        # reflected in the value's use map (a cleared map is corrupt).
        actual = sum(1 for v in user.inputs if v is value)
        if value.uses.get(user, 0) != actual:
            return False
    return True


def _verify_ssa_dominance(graph: Graph, reachable: set) -> None:
    dom = DominatorTree(graph)
    position: dict[Instruction, int] = {}
    for block in reachable:
        for i, ins in enumerate(block.instructions):
            position[ins] = i

    def check_use(user, operand: Value, use_block: Block, user_desc: str) -> None:
        if isinstance(operand, (Constant, Parameter)):
            return
        if not isinstance(operand, Instruction):
            _fail(graph, f"{user_desc} uses non-instruction {operand!r}")
        def_block = operand.block
        if def_block is None or def_block not in reachable:
            _fail(graph, f"{user_desc} uses {operand!r} from removed/unreachable block")
        if not _users_are_consistent(operand, user):
            _fail(graph, f"use-count bookkeeping broken for {operand!r}")
        if def_block is use_block:
            if isinstance(operand, Phi):
                return  # phis precede all instructions of the block
            if isinstance(user, (Terminator, Phi)):
                # Terminators come last; a phi input is consumed at the
                # *end* of the predecessor block — both see every def.
                return
            if position[operand] >= position.get(user, 1 << 30):
                _fail(graph, f"{user_desc} uses {operand!r} before its definition")
            return
        if not dom.dominates(def_block, use_block):
            _fail(
                graph,
                f"{user_desc} in {use_block.name} uses {operand!r} defined in "
                f"{def_block.name} which does not dominate it",
            )

    for block in reachable:
        for phi in block.phis:
            for slot, operand in enumerate(phi.inputs):
                pred = block.predecessors[slot]
                check_use(phi, operand, pred, f"{phi!r} (input {slot})")
        for ins in block.instructions:
            for operand in ins.inputs:
                check_use(ins, operand, block, repr(ins))
        for operand in block.terminator.inputs:
            check_use(block.terminator, operand, block, f"terminator of {block.name}")


def verify_program(program) -> None:
    """Verify all functions of a program."""
    for graph in program.functions.values():
        verify_graph(graph)
