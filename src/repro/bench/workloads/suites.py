"""The four benchmark suites of the paper's evaluation (Section 6.1).

Each paper benchmark gets a synthetic MiniLang stand-in generated from a
suite profile (kernel mix, program size, iteration counts).  Names match
Figures 5–8 one-to-one so the harness prints the same rows.

Suite characters (justifying the opportunity mixes — see DESIGN.md):

* **Java DaCapo** — mature Java applications: moderate opportunity
  density, a substantial neutral-compute fraction, which is why the
  paper measures only ~1 % mean speedup there.
* **Scala DaCapo** — "Scala workloads typically differ … in their type
  and class hierarchy behaviour": heavy on boxing (PEA) and repeated
  type/null checks (CE).
* **Micro** — "novel JVM features … like streams and lambdas": small
  kernels, almost every merge is an opportunity; the 5–40 % band.
* **Octane** — larger JS-flavoured programs, array/numeric loops plus
  dynamic-dispatch-like null-check chains.

A fifth, harness-facing suite rides along: **recursion** is not a paper
suite but the call-dominated stress mix (self-recursion and binary call
trees) that guards the whole-program megaunit engine against regressing
call-heavy programs — see docs/VM.md and the CI bench gates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .kernels import Kernel, build_kernel


@dataclass
class Workload:
    """A generated benchmark: source text plus how to run it."""

    name: str
    suite: str
    source: str
    entry: str = "main"
    profile_args: list[list[int]] = field(default_factory=list)
    measure_args: list[list[int]] = field(default_factory=list)
    kinds: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class SuiteProfile:
    """Generation parameters of one suite."""

    suite: str
    benchmark_names: tuple[str, ...]
    #: (kind, relative weight) — the opportunity mix
    kernel_mix: tuple[tuple[str, float], ...]
    kernels_min: int
    kernels_max: int
    #: main-loop iterations for the measured run
    run_iterations: int
    #: main-loop iterations for the profiling run
    profile_iterations: int


JAVA_DACAPO = SuiteProfile(
    suite="java-dacapo",
    benchmark_names=(
        "avrora", "batik", "fop", "h2", "jython",
        "luindex", "lusearch", "pmd", "sunflow", "xalan",
    ),
    kernel_mix=(
        ("neutral", 6.0),
        ("cold-path", 2.0),
        ("constant-folding", 1.0),
        ("conditional-elimination", 1.0),
        ("read-elimination", 1.0),
        ("field-chain", 1.0),
    ),
    kernels_min=8,
    kernels_max=14,
    run_iterations=60,
    profile_iterations=20,
)

SCALA_DACAPO = SuiteProfile(
    suite="scala-dacapo",
    benchmark_names=(
        "actors", "apparat", "factorie", "kiama", "scalac", "scaladoc",
        "scalap", "scalariform", "scalatest", "scalaxb", "specs", "tmt",
    ),
    kernel_mix=(
        ("neutral", 4.0),
        ("cold-path", 1.0),
        ("partial-escape-analysis", 3.0),
        ("type-check", 3.0),
        ("conditional-elimination", 1.0),
        ("field-chain", 1.0),
    ),
    kernels_min=8,
    kernels_max=14,
    run_iterations=60,
    profile_iterations=20,
)

MICRO = SuiteProfile(
    suite="micro",
    benchmark_names=(
        "akkaPP", "bufdecode", "charcount", "charhist", "chisquare",
        "groupbyrem", "kmeanCPCA", "streamPerson", "wordcount",
    ),
    kernel_mix=(
        ("neutral", 2.0),
        ("constant-folding", 1.0),
        ("conditional-elimination", 1.0),
        ("partial-escape-analysis", 2.0),
        ("strength-reduction", 1.0),
        ("read-elimination", 1.0),
        ("type-check", 1.0),
    ),
    kernels_min=3,
    kernels_max=5,
    run_iterations=120,
    profile_iterations=30,
)

OCTANE = SuiteProfile(
    suite="octane",
    benchmark_names=(
        "box2d", "code-load", "deltablue", "earley-boyer", "gameboy",
        "mandreel", "navier-stokes", "pdfjs", "raytrace", "regexp",
        "richards", "splay", "typescript", "zlib",
    ),
    kernel_mix=(
        ("neutral", 2.0),
        ("cold-path", 1.0),
        ("array-loop", 2.0),
        ("array-box", 2.0),
        ("type-check", 2.0),
        ("constant-folding", 1.0),
        ("strength-reduction", 1.0),
        ("field-chain", 1.0),
    ),
    kernels_min=10,
    kernels_max=18,
    run_iterations=40,
    profile_iterations=15,
)

RECURSION = SuiteProfile(
    suite="recursion",
    benchmark_names=(
        "ackers", "calltree", "descent", "fibtree", "unwind",
    ),
    kernel_mix=(
        ("recursion", 3.0),
        ("call-tree", 2.0),
        ("neutral", 1.0),
    ),
    kernels_min=2,
    kernels_max=4,
    run_iterations=80,
    profile_iterations=20,
)

ALL_SUITES = {
    p.suite: p
    for p in (JAVA_DACAPO, SCALA_DACAPO, MICRO, OCTANE, RECURSION)
}

#: the four suites of the paper's evaluation — what ``repro evaluate``
#: measures by default (the recursion suite is a harness stress mix,
#: not a paper figure)
PAPER_SUITES = ("java-dacapo", "scala-dacapo", "micro", "octane")


def _pick_kinds(profile: SuiteProfile, rng: random.Random) -> list[str]:
    count = rng.randint(profile.kernels_min, profile.kernels_max)
    kinds = [k for k, _ in profile.kernel_mix]
    weights = [w for _, w in profile.kernel_mix]
    return rng.choices(kinds, weights=weights, k=count)


def generate_workload(profile: SuiteProfile, benchmark: str, seed: int = 0) -> Workload:
    """Deterministically generate one benchmark program."""
    rng = random.Random(f"{profile.suite}/{benchmark}/{seed}")
    kinds = _pick_kinds(profile, rng)
    kernels: list[Kernel] = []
    for index, kind in enumerate(kinds):
        kernels.append(build_kernel(kind, f"k{index}", rng, class_id=index))

    declarations = "".join(k.declarations for k in kernels)
    functions = "".join(k.function for k in kernels)
    calls = " + ".join(k.call for k in kernels)
    source = f"""// generated benchmark {profile.suite}/{benchmark} (seed {seed})
{declarations}
{functions}
fn main(n: int) -> int {{
  var acc: int = 0;
  var i: int = 0;
  while (i < n) {{
    acc = acc + {calls};
    i = i + 1;
  }}
  return acc;
}}
"""
    return Workload(
        name=benchmark,
        suite=profile.suite,
        source=source,
        profile_args=[[profile.profile_iterations]],
        measure_args=[[profile.run_iterations]],
        kinds=[k.kind for k in kernels],
    )


def generate_suite(profile: SuiteProfile, seed: int = 0) -> list[Workload]:
    """All benchmarks of one suite."""
    return [
        generate_workload(profile, name, seed) for name in profile.benchmark_names
    ]


def workload_by_name(suite: str, benchmark: str, seed: int = 0) -> Workload:
    return generate_workload(ALL_SUITES[suite], benchmark, seed)
