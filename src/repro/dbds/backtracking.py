"""The backtracking baseline (Algorithm 1, Section 3.1).

Tentatively duplicates at every predecessor-merge pair, runs the full
optimization phases, and rolls back to a saved CFG copy when nothing
improved.  The paper measures that the CFG copy alone made compilation
~10× slower in Graal — benchmark B1 reproduces exactly that comparison
against the simulation-based DBDS phase.

Because rollback replaces the whole graph object, ``run`` *returns* the
graph to use afterwards; callers must rebind (the pipeline does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..costmodel.estimator import graph_code_size
from ..ir.copy import copy_graph
from ..ir.graph import Graph, Program
from ..obs.metrics import current_registry
from ..opts.canonicalize import CanonicalizerPhase
from ..opts.condelim import ConditionalEliminationPhase
from ..opts.pea import PartialEscapeAnalysisPhase
from ..opts.readelim import ReadEliminationPhase
from .duplicate import can_duplicate, duplicate_into


@dataclass
class BacktrackingStats:
    attempts: int = 0
    kept: int = 0
    rolled_back: int = 0
    cfg_copies: int = 0


class BacktrackingDuplication:
    """Algorithm 1: duplicate → optimize → keep or restore the copy."""

    name = "backtracking-duplication"

    def __init__(
        self,
        program: Optional[Program] = None,
        max_duplications: int = 50,
        size_budget_factor: float = 1.5,
    ) -> None:
        self.program = program
        self.max_duplications = max_duplications
        self.size_budget_factor = size_budget_factor
        self.stats = BacktrackingStats()

    def run(self, graph: Graph) -> Graph:
        kept_before = self.stats.kept
        rolled_before = self.stats.rolled_back
        try:
            return self._run(graph)
        finally:
            registry = current_registry()
            kept = self.stats.kept - kept_before
            rolled = self.stats.rolled_back - rolled_before
            if kept:
                registry.inc(
                    "repro_dbds_backtrack_total", kept, outcome="kept"
                )
            if rolled:
                registry.inc(
                    "repro_dbds_backtrack_total", rolled, outcome="rolled_back"
                )

    def _run(self, graph: Graph) -> Graph:
        initial_size = graph_code_size(graph)
        size_limit = initial_size * self.size_budget_factor
        # Index of the next predecessor-merge pair to try.  A rollback
        # replaces the whole graph object, so the position (not block
        # identity) carries across — copy_graph preserves block order.
        skip = 0
        while self.stats.kept < self.max_duplications:
            pairs = [
                (merge, pred)
                for merge in graph.merge_blocks()
                for pred in merge.predecessors
            ]
            if skip >= len(pairs):
                break  # full pass without progress: fixpoint
            loops = graph.loop_forest()
            restarted = False
            for index in range(skip, len(pairs)):
                merge, pred = pairs[index]
                if graph_code_size(graph) >= size_limit:
                    return graph
                if not can_duplicate(graph, pred, merge, loops):
                    skip = index + 1
                    continue
                # The expensive step: copy the *entire* CFG as the
                # backup — "we need to copy the entire IR and not only
                # the portions which are relevant for duplication".
                backup, _ = copy_graph(graph)
                self.stats.cfg_copies += 1
                self.stats.attempts += 1
                duplicate_into(graph, pred, merge)
                if self._optimizations_triggered(graph):
                    # Algorithm 1's `continue outer`: the CFG and block
                    # list changed, restart from the first merge.
                    self.stats.kept += 1
                    skip = 0
                    restarted = True
                    break
                # Backtrack to the pristine copy and advance one pair.
                graph = backup
                self.stats.rolled_back += 1
                skip = index + 1
                restarted = True
                break
            if not restarted:
                break
        return graph

    def _optimizations_triggered(self, graph: Graph) -> bool:
        """Run the full phases; report whether anything fired."""
        changes = 0
        changes += CanonicalizerPhase().run(graph)
        changes += ConditionalEliminationPhase().run(graph)
        changes += ReadEliminationPhase(self.program).run(graph)
        if self.program is not None:
            changes += PartialEscapeAnalysisPhase(self.program).run(graph)
        return changes > 0
