"""Experiment T5 — Figure 5: Java DaCapo under baseline / DBDS / dupalot.

Paper geomeans: DBDS +0.99% perf / +24.92% compile time / +15.90% size;
dupalot −0.14% perf / +50.08% compile time / +38.22% size.

Shape checks (absolute numbers are not expected to match a Xeon+HotSpot
testbed; see DESIGN.md/EXPERIMENTS.md):
* DBDS does not lose performance on the suite geomean;
* dupalot produces at least as much code as DBDS;
* this suite benefits the least of the four (checked in bench_headline).
"""

from _support import record_figure

from repro.bench.harness import format_suite_report, run_suite
from repro.bench.workloads.suites import JAVA_DACAPO


def test_fig5_java_dacapo(benchmark):
    report = benchmark.pedantic(
        lambda: run_suite(JAVA_DACAPO), rounds=1, iterations=1
    )
    record_figure("fig5_java_dacapo", format_suite_report(report))
    assert report.geomean_speedup("dbds") > -1.0
    assert (
        report.geomean_code_size("dupalot")
        >= report.geomean_code_size("dbds") - 1e-6
    )
