"""Experiment P2 — loop peeling as duplication at loop headers.

DBDS excludes loop headers from its candidate set (duplicating a merge
with a back edge is loop peeling).  This bench measures what that
exclusion leaves on the table: the ``peel-dbds`` configuration peels
constant-entry loops before running DBDS, so the first iteration
specializes exactly like an ordinary duplicated merge would.

Shape checks: peeling never loses performance versus plain DBDS on the
geomean, and costs extra code size (the peeled copies).
"""

from _support import record_figure

from repro.bench.harness import measure_workload
from repro.bench.stats import format_percent, geometric_mean
from repro.bench.workloads.suites import JAVA_DACAPO, OCTANE, generate_suite
from repro.pipeline.config import BASELINE, DBDS, PEEL_DBDS


def _run():
    rows = []
    for profile in (JAVA_DACAPO, OCTANE):
        for workload in generate_suite(profile):
            base = measure_workload(workload, BASELINE)
            plain = measure_workload(workload, DBDS)
            peel = measure_workload(workload, PEEL_DBDS)
            rows.append((f"{profile.suite}/{workload.name}", base, plain, peel))
    return rows


def test_peeling_extension(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "=== Loop peeling + DBDS (duplication at loop headers) ===",
        f"{'workload':<26s}{'dbds perf':>11s}{'peel perf':>11s}"
        f"{'dbds size':>11s}{'peel size':>11s}",
    ]
    plain_perf, peel_perf, plain_size, peel_size = [], [], [], []
    for name, base, plain, peel in rows:
        plain_perf.append(base.cycles / plain.cycles)
        peel_perf.append(base.cycles / peel.cycles)
        plain_size.append(plain.code_size / base.code_size)
        peel_size.append(peel.code_size / base.code_size)
        lines.append(
            f"{name:<26s}"
            f"{format_percent((plain_perf[-1] - 1) * 100):>11s}"
            f"{format_percent((peel_perf[-1] - 1) * 100):>11s}"
            f"{format_percent((plain_size[-1] - 1) * 100):>11s}"
            f"{format_percent((peel_size[-1] - 1) * 100):>11s}"
        )
    plain_mean = (geometric_mean(plain_perf) - 1) * 100
    peel_mean = (geometric_mean(peel_perf) - 1) * 100
    size_plain = (geometric_mean(plain_size) - 1) * 100
    size_peel = (geometric_mean(peel_size) - 1) * 100
    lines.append(
        f"geomean perf: dbds {format_percent(plain_mean)}  "
        f"peel-dbds {format_percent(peel_mean)}  |  size: "
        f"{format_percent(size_plain)} vs {format_percent(size_peel)}"
    )
    record_figure("peeling", "\n".join(lines))
    assert peel_mean > plain_mean - 2.0
    assert size_peel >= size_plain - 1.0
