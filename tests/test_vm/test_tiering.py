"""Tiered adaptive execution: threshold boundaries, swap invariants.

The contract under test (docs/TIERING.md): every function starts in
the unfused tier-0 baseline with zero-cost hotness counters; at
``calls + backedges >= threshold`` it is promoted exactly once —
recompiled from the live profile, optionally verified by the
``bcverify`` rewrite checkers, hot-swapped at call boundaries — and
promotion never perturbs steps, cycles, values or budget timing.
"""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import BudgetExceeded
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracer import Tracer, use_tracer
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.compiler import compile_and_profile, make_engine
from repro.pipeline.config import DBDS
from repro.vm import (
    DEFAULT_TIER_THRESHOLD,
    TieredVirtualMachine,
    TieringPolicy,
    VirtualMachine,
    translate_program,
)

LOOPY = """
fn hot(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) {
    acc = acc + i * 3;
    i = i + 1;
  }
  return acc;
}

fn cold(x: int) -> int {
  return x + 41;
}

fn main(n: int) -> int {
  return hot(n) + cold(1);
}
"""

RECURSIVE = """
fn fib(n: int) -> int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

fn main(n: int) -> int {
  return fib(n);
}
"""


def optimized(source, entry="main", profile_args=((8,),)):
    program, _ = compile_and_profile(
        source, entry, [list(a) for a in profile_args], DBDS
    )
    return program


def tiered(program, threshold, **kwargs):
    return TieredVirtualMachine(
        program,
        metered=True,
        policy=TieringPolicy(threshold=threshold, **kwargs.pop("policy_kw", {})),
        **kwargs,
    )


def vm_baseline(program, entry, args):
    vm = VirtualMachine(translate_program(program), metered=True)
    result = vm.run(entry, list(args))
    return result, vm


# ----------------------------------------------------------------------
# Threshold boundaries
# ----------------------------------------------------------------------
def test_exactly_at_threshold_promotes_on_entry():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=3)
    # Two calls stay cold (hotness 1, then 2 plus backedges — use a
    # loop-free argument so backedges stay at zero).
    for _ in range(2):
        machine.reset()
        machine.run("hot", [0])
    assert machine.controller.promotions == []
    # The third call makes hotness == threshold exactly: promoted at
    # the call boundary, and the promoting call itself runs optimized.
    machine.reset()
    machine.run("hot", [0])
    [promo] = machine.controller.promotions
    assert promo["function"] == "hot"
    assert promo["trigger"] == "entry"
    assert promo["hotness"] == 3
    assert machine.bytecode.functions["hot"].xcode is not None


def test_one_below_threshold_stays_cold():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=3)
    for _ in range(2):
        machine.reset()
        machine.run("hot", [0])
    assert machine.controller.promotions == []
    assert machine.bytecode.functions["hot"].xcode is None


def test_backedges_count_toward_hotness():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=10)
    # One call plus >=9 loop back edges crosses the threshold inside
    # the frame: a backedge-triggered promotion.
    machine.run("hot", [20])
    [promo] = machine.controller.promotions
    assert promo["trigger"] == "backedge"
    assert promo["backedges"] >= 9


def test_cold_function_stays_sub_threshold():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=50)
    for _ in range(10):
        machine.reset()
        machine.run("main", [30])
    promoted = {p["function"] for p in machine.controller.promotions}
    # The loop (in main, or in hot when the optimizer kept the call)
    # crosses 50 via back edges on the first run; cold — at most one
    # call per run, no loops — stays far below threshold, in tier-0.
    assert promoted & {"main", "hot"}
    assert "cold" not in promoted
    assert machine.bytecode.functions["cold"].xcode is None


def test_never_called_function_stays_tier0():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=2)
    for _ in range(10):
        machine.reset()
        machine.run("hot", [10])
    assert machine.bytecode.functions["cold"].xcode is None
    assert "cold" not in machine.controller.states


def test_recursive_function_promotes_exactly_once():
    program = optimized(RECURSIVE, profile_args=((10,),))
    machine = tiered(program, threshold=16)
    machine.run("main", [12])
    promos = [p for p in machine.controller.promotions if p["function"] == "fib"]
    assert len(promos) == 1
    # Deep recursion means many tier-0 frames were live at the swap:
    # none of them may re-promote.
    machine.reset()
    machine.run("main", [12])
    assert len(machine.controller.promotions) == len(promos)


def test_backedge_promotion_swaps_only_at_call_boundaries():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=10)
    fn = machine.bytecode.functions["hot"]
    result = machine.run("hot", [50])
    # Promotion happened mid-frame; the frame that triggered it ran to
    # completion in tier-0, and the swap is in place for the next call.
    assert fn.xcode is not None
    expected, _ = vm_baseline(program, "hot", [50])
    assert (result.value, result.steps, result.cycles) == (
        expected.value, expected.steps, expected.cycles,
    )
    machine.reset()
    again = machine.run("hot", [50])
    assert (again.value, again.steps, again.cycles) == (
        expected.value, expected.steps, expected.cycles,
    )


# ----------------------------------------------------------------------
# Accounting invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("threshold", [1, 2, 3, 7, 64])
def test_counters_cost_zero_steps_and_cycles(threshold):
    program = optimized(LOOPY)
    expected, _ = vm_baseline(program, "main", [9])
    machine = tiered(program, threshold=threshold)
    for _ in range(3):
        machine.reset()
        result = machine.run("main", [9])
        assert (result.value, result.steps, result.cycles) == (
            expected.value, expected.steps, expected.cycles,
        )


@pytest.mark.parametrize("budget", [5, 37, 150, 600])
def test_budget_stops_identically_mid_promotion(budget):
    # Budget exhaustion must land on the same step whether or not the
    # run promoted first — including budgets that stop the run in the
    # middle of the frame whose back edge triggered promotion.
    program = optimized(LOOPY)
    baseline = VirtualMachine(
        translate_program(program), metered=True, max_steps=budget
    )
    with pytest.raises(BudgetExceeded) as ref_exc:
        baseline.run("main", [200])
    machine = tiered(program, threshold=8, max_steps=budget)
    with pytest.raises(BudgetExceeded) as tier_exc:
        machine.run("main", [200])
    assert str(tier_exc.value) == str(ref_exc.value)
    assert machine.state.steps == baseline.state.steps


def test_promotions_survive_reset():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=4)
    machine.run("hot", [30])
    assert machine.controller.promotions
    machine.reset()
    # Globals and meters reset; tiering state (a property of the
    # machine, not of one run) does not.
    assert machine.bytecode.functions["hot"].xcode is not None
    assert machine.controller.promotions


# ----------------------------------------------------------------------
# Verification, events, metrics
# ----------------------------------------------------------------------
def test_rewrite_mode_verifies_promoted_streams():
    program = optimized(LOOPY)
    machine = tiered(program, threshold=4, policy_kw={"check_bc": "rewrite"})
    result = machine.run("hot", [30])
    assert machine.controller.promotions
    expected, _ = vm_baseline(program, "hot", [30])
    assert (result.value, result.steps, result.cycles) == (
        expected.value, expected.steps, expected.cycles,
    )


def test_promotion_emits_events_and_metrics():
    from repro.obs.sinks import validate_record, event_to_dict

    program = optimized(LOOPY)
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        machine = tiered(program, threshold=4)
        machine.run("hot", [30])
    names = [e.name for e in tracer.events]
    assert "tier.promote" in names
    assert "tier.compile" in names
    assert tracer.counters.get("tier.promote") == len(
        machine.controller.promotions
    )
    for event in tracer.events:
        assert validate_record(event_to_dict(event)) == []
    snapshot = registry.snapshot().to_json()
    assert "repro_tier_promotions_total" in snapshot["counters"]
    assert "repro_tier_compile_seconds" in snapshot["histograms"]


def test_plan_cache_round_trip(tmp_path):
    program = optimized(LOOPY)
    cache = ArtifactCache(tmp_path / "cache")
    first = TieredVirtualMachine(
        program, metered=True,
        policy=TieringPolicy(threshold=4), plan_cache=cache,
    )
    first.run("hot", [30])
    [promo] = first.controller.promotions
    assert promo["plan_cached"] is False
    # A second machine over a fresh translation of the same program
    # reaches the same profile fingerprint and reuses the stored plan.
    second = TieredVirtualMachine(
        program, metered=True,
        policy=TieringPolicy(threshold=4), plan_cache=cache,
    )
    second.run("hot", [30])
    [promo2] = second.controller.promotions
    assert promo2["plan_cached"] is True
    assert promo2["plan"] == promo["plan"]
    assert promo2["digest"] == promo["digest"]
    assert cache.stats.hits >= 1


def test_policy_fingerprint_tracks_knobs():
    a = TieringPolicy(threshold=8)
    b = TieringPolicy(threshold=8)
    c = TieringPolicy(threshold=9)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()
    assert TieringPolicy().threshold == DEFAULT_TIER_THRESHOLD


def test_make_engine_constructs_cold_tiered_machine():
    program = optimized(LOOPY)
    machine = make_engine("tiered", program)
    assert isinstance(machine, TieredVirtualMachine)
    # Even when a fused artifact exists, the tiered engine starts cold.
    fused = translate_program(program)
    machine = make_engine("tiered", program, bytecode=fused)
    assert all(
        fn.xcode is None for fn in machine.bytecode.functions.values()
    )


def test_hooked_runs_pause_tiering():
    events = []
    program = optimized(LOOPY)
    machine = TieredVirtualMachine(
        program, metered=True,
        policy=TieringPolicy(threshold=1),
        observer=lambda node, value: events.append((node, value)),
    )
    machine.run("hot", [10])
    assert events  # the observer saw the run...
    assert machine.controller.promotions == []  # ...and tiering paused
