"""Static bytecode verifier: checkers, tampering, orchestrator."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.bcverify import (
    BytecodeVerificationError,
    lint_closure_source,
    run_bc_checkers,
    verify_artifact,
    verify_bytecode,
)
from repro.analysis.bcverify.lint import BANNED_NAMES, _lint_names
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import CONFIGURATIONS
from repro.vm.bytecode import OP_ADD, OP_CALL, OP_RETURN
from repro.vm.translate import translate_program

LOOP_SOURCE = """
fn helper(x: int) -> int {
  if (x < 2) { return x; }
  return helper(x - 1) + x * 3;
}
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) {
    if (i % 2 == 0) { acc = acc + helper(i); }
    else { acc = acc - 1; }
    i = i + 1;
  }
  return acc;
}
"""


@pytest.fixture(scope="module")
def compiled():
    program, _report = compile_and_profile(
        LOOP_SOURCE, "main", [[8]], CONFIGURATIONS["dbds"]
    )
    return program


@pytest.fixture()
def bytecode(compiled):
    # Translated fresh per test: mutation tests tamper with it.
    return translate_program(compiled)


def _replace(fn, pc, ins):
    code = list(fn.code)
    code[pc] = ins
    fn.code = tuple(code)


# ----------------------------------------------------------------------
# Clean programs verify clean
# ----------------------------------------------------------------------
def test_clean_program_verifies(compiled, bytecode):
    report = verify_bytecode(bytecode, compiled, quicken=True)
    assert report.ok, report.format()
    # one plain report and one quickened-clone report per function
    assert len(report.reports) == 2 * len(bytecode.functions)


def test_verify_artifact_profile(compiled, bytecode):
    report = verify_artifact(compiled, bytecode)
    assert report.ok, report.format()
    # the artifact profile skips codegen lint but keeps retranslation
    checkers = {v.checker for r in report.reports for v in r.violations}
    assert "bc-codegen-lint" not in checkers


def test_report_json_shape(compiled, bytecode):
    payload = verify_bytecode(bytecode, compiled).to_json()
    assert payload["ok"] is True
    assert payload["errors"] == 0
    assert "main" in payload["functions"]


# ----------------------------------------------------------------------
# bc-structure
# ----------------------------------------------------------------------
def test_structure_rejects_unknown_opcode(bytecode):
    fn = bytecode.function("main")
    _replace(fn, 0, (99_999,) + fn.code[0][1:])
    report = run_bc_checkers(fn, bytecode)
    assert not report.ok
    assert any(v.checker == "bc-structure" for v in report.errors())


def test_structure_rejects_truncated_tuple(bytecode):
    fn = bytecode.function("main")
    pc = next(i for i, ins in enumerate(fn.code) if ins[0] == OP_ADD)
    _replace(fn, pc, fn.code[pc][:-1])
    report = run_bc_checkers(fn, bytecode)
    assert any(v.checker == "bc-structure" for v in report.errors())


def test_structure_rejects_out_of_range_register(bytecode):
    fn = bytecode.function("main")
    pc = next(i for i, ins in enumerate(fn.code) if ins[0] == OP_ADD)
    ins = fn.code[pc]
    _replace(fn, pc, ins[:4] + (fn.nregs + 7,) + ins[5:])
    report = run_bc_checkers(fn, bytecode)
    assert any(
        "out-of-range" in v.message
        for v in report.errors()
        if v.checker == "bc-structure"
    )


def test_structure_rejects_foreign_call_target(bytecode):
    import copy

    fn = bytecode.function("main")
    pc = next(i for i, ins in enumerate(fn.code) if ins[0] == OP_CALL)
    ins = fn.code[pc]
    foreign = copy.copy(ins[4])
    _replace(fn, pc, ins[:4] + (foreign,) + ins[5:])
    report = run_bc_checkers(fn, bytecode)
    assert any(
        "not the program's function" in v.message for v in report.errors()
    )


def test_structure_rejects_bad_weight(bytecode):
    fn = bytecode.function("main")
    ins = fn.xcode[0]
    fn.xcode[0] = ins[:-1] + (ins[-1] + 1,)
    report = run_bc_checkers(fn, bytecode)
    assert any(v.checker == "bc-structure" for v in report.errors())


# ----------------------------------------------------------------------
# bc-accounting / bc-xcode-equivalence
# ----------------------------------------------------------------------
def _fused_site(fn):
    pc = 0
    while pc < len(fn.xcode):
        ins = fn.xcode[pc]
        if ins[-1] >= 2:
            return pc, ins
        pc += ins[-1]
    pytest.skip("no fused site in this function")


def test_accounting_rejects_cost_drift(bytecode):
    fn = bytecode.function("main")
    pc, ins = _fused_site(fn)
    fn.xcode[pc] = ins[:1] + (ins[1] + 1,) + ins[2:]
    report = run_bc_checkers(fn, bytecode)
    assert any(v.checker == "bc-accounting" for v in report.errors())


def test_accounting_rejects_dropped_halves(bytecode):
    fn = bytecode.function("main")
    pc, ins = _fused_site(fn)
    fn.xcode[pc] = ins[:-2] + ((), ins[-1])
    report = run_bc_checkers(fn, bytecode)
    assert not report.ok


def test_equivalence_rejects_padding_tamper(bytecode):
    fn = bytecode.function("main")
    pc, ins = _fused_site(fn)
    # the slot after a weight-2 superinstruction is unreachable padding
    pad = fn.xcode[pc + 1]
    fn.xcode[pc + 1] = pad[:1] + (pad[1] + 5,) + pad[2:]
    report = run_bc_checkers(fn, bytecode)
    assert any(
        v.checker == "bc-xcode-equivalence" for v in report.errors()
    )


def test_equivalence_rejects_code_xcode_divergence(bytecode):
    fn = bytecode.function("main")
    pc = next(i for i, ins in enumerate(fn.code) if ins[0] == OP_ADD)
    ins = fn.code[pc]
    # change the code stream only: the fast stream no longer decompiles
    _replace(fn, pc, ins[:1] + (ins[1] + 2,) + ins[2:])
    report = run_bc_checkers(fn, bytecode)
    assert not report.ok


# ----------------------------------------------------------------------
# bc-retranslate (orchestrator-level)
# ----------------------------------------------------------------------
def test_retranslate_catches_template_tamper(compiled, bytecode):
    fn = bytecode.function("main")
    for reg in range(fn.const_base, fn.const_base + fn.const_count):
        if type(fn.template[reg]) is int:
            fn.template = list(fn.template)
            fn.template[reg] += 3
            break
    else:
        pytest.skip("no integer constant in template")
    report = verify_bytecode(bytecode, compiled)
    assert any(v.checker == "bc-retranslate" for v in report.errors())


def test_retranslate_catches_dropped_blocks(compiled, bytecode):
    bytecode.function("main").blocks = ()
    report = verify_bytecode(bytecode, compiled)
    assert not report.ok


def test_retranslate_catches_missing_function(compiled, bytecode):
    del bytecode.functions["helper"]
    report = verify_bytecode(bytecode, compiled)
    assert any("function set" in v.message for v in report.errors())


# ----------------------------------------------------------------------
# bc-defuse
# ----------------------------------------------------------------------
def test_defuse_rejects_read_before_write(bytecode):
    fn = bytecode.function("main")
    pc = next(i for i, ins in enumerate(fn.code) if ins[0] == OP_ADD)
    ins = fn.code[pc]
    # redirect an operand to a scratch register no path has written
    scratch = fn.nregs
    fn.nregs += 1
    fn.template = list(fn.template) + [None]
    _replace(fn, pc, ins[:5] + (scratch,) + ins[6:])
    report = run_bc_checkers(fn, bytecode)
    assert any(v.checker == "bc-defuse" for v in report.errors())


# ----------------------------------------------------------------------
# bc-codegen-lint
# ----------------------------------------------------------------------
def test_lint_accepts_generated_source(bytecode):
    for fn in bytecode.functions.values():
        assert lint_closure_source(fn) == []


def test_lint_flags_banned_names():
    assert "eval" in BANNED_NAMES and "exec" in BANNED_NAMES
    tree = ast.parse("def _blk_0(vm, r, m, state):\n    eval('1')\n")
    messages: list[str] = []
    _lint_names(tree.body[0], messages)
    assert any("banned name 'eval'" in m for m in messages)


def test_lint_flags_unknown_globals():
    tree = ast.parse("def _blk_0(vm, r, m, state):\n    r[0] = os\n")
    messages: list[str] = []
    _lint_names(tree.body[0], messages)
    assert any("unexpected global 'os'" in m for m in messages)


def test_lint_catches_block_table_tamper(bytecode):
    fn = bytecode.function("main")
    # claim an extra instruction in the entry block: codegen (or its
    # accounting) no longer agrees with the block spans
    start, count, name = fn.blocks[0]
    fn.blocks = ((start, count + 1, name),) + tuple(fn.blocks[1:])
    assert lint_closure_source(fn) != []


def test_lint_catches_unbalanced_accounting():
    from repro.analysis.bcverify.lint import _lint_accounting

    func = ast.parse(
        "def _blk_0(vm, r, m, state):\n"
        "    m[0] += 2\n"
        "    m[1] += 5\n"
    ).body[0]
    code = ((0, 7, None, 0, 1, 2),) * 3
    messages: list[str] = []
    # the block claims 3 instructions costing 21 cycles; the closure
    # only accounts for 2 steps and 5 cycles
    _lint_accounting(func, 0, {0: 3}, code, True, messages)
    assert any("step increments sum to 2" in m for m in messages)

    messages = []
    steps_ok = ast.parse(
        "def _blk_0(vm, r, m, state):\n"
        "    m[0] += 3\n"
        "    m[1] += 5\n"
    ).body[0]
    _lint_accounting(steps_ok, 0, {0: 3}, code, True, messages)
    assert any("cycle increments sum to 5" in m for m in messages)


def test_lint_catches_missing_trap_flush():
    from repro.analysis.bcverify.lint import _lint_trap_flushes

    func = ast.parse(
        "def _blk_0(vm, r, m, state):\n"
        "    if r[0] == 0:\n"
        "        raise EvaluationTrap('division by zero')\n"
    ).body[0]
    messages: list[str] = []
    _lint_trap_flushes(func, messages)
    assert any("state.steps flush" in m for m in messages)

    flushed = ast.parse(
        "def _blk_0(vm, r, m, state):\n"
        "    if r[0] == 0:\n"
        "        state.steps = m[0] + 1\n"
        "        raise EvaluationTrap('division by zero')\n"
    ).body[0]
    messages = []
    _lint_trap_flushes(flushed, messages)
    assert messages == []


# ----------------------------------------------------------------------
# translate_program(check_bc=...)
# ----------------------------------------------------------------------
def test_checked_translate_passes_clean(compiled):
    bytecode = translate_program(compiled, check_bc="rewrite")
    assert bytecode.function("main").code


def test_checked_translate_raises_on_violation(compiled, monkeypatch):
    import repro.vm.fusion as fusion

    real = fusion.fuse_function

    def sabotage(fn, plan):
        result = real(fn, plan)
        if fn.xcode is not None and fn.name == "main":
            ins = fn.xcode[0]
            fn.xcode[0] = ins[:1] + (ins[1] + 1,) + ins[2:]
        return result

    monkeypatch.setattr(fusion, "fuse_function", sabotage)
    with pytest.raises(BytecodeVerificationError) as excinfo:
        translate_program(compiled, check_bc="rewrite")
    assert not excinfo.value.report.ok


def test_return_terminates_every_function(bytecode):
    for fn in bytecode.functions.values():
        assert any(ins[0] == OP_RETURN for ins in fn.code)
