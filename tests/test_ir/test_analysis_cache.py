"""Graph-level analysis caching and invalidation.

The accessors ``dominator_tree``/``loop_forest``/``block_frequencies``
memoize on the graph and count each fresh computation on the ambient
tracer, so a straight-line compile can be asserted to compute each
analysis at most once per phase.
"""

import pickle

from repro.frontend.irbuilder import compile_source
from repro.ir.cfgutils import insert_block_on_edge
from repro.obs.tracer import Tracer, use_tracer
from repro.pipeline.compiler import Compiler
from repro.pipeline.config import DBDS

LOOPY = """
fn main(n: int) -> int {
  var i: int = 0;
  var s: int = 0;
  while (i < n) {
    if (i % 3 == 0) { s = s + i; } else { s = s + 1; }
    i = i + 1;
  }
  return s;
}
"""

COUNTERS = ("analysis.dominators", "analysis.loops", "analysis.frequency")


def fresh_graph():
    return compile_source(LOOPY).function("main")


def test_accessors_memoize():
    graph = fresh_graph()
    tracer = Tracer(enabled=False)
    with use_tracer(tracer):
        dom = graph.dominator_tree()
        assert graph.dominator_tree() is dom
        forest = graph.loop_forest()
        assert graph.loop_forest() is forest
        freqs = graph.block_frequencies()
        assert graph.block_frequencies() is freqs
    assert all(tracer.counters[c] == 1 for c in COUNTERS)


def test_derived_analyses_reuse_cached_prerequisites():
    graph = fresh_graph()
    tracer = Tracer(enabled=False)
    with use_tracer(tracer):
        # frequency pulls in loops pulls in dominators — each once.
        graph.block_frequencies()
    assert all(tracer.counters[c] == 1 for c in COUNTERS)


def test_new_block_invalidates():
    graph = fresh_graph()
    dom = graph.dominator_tree()
    graph.new_block("fresh")
    assert graph.dominator_tree() is not dom


def test_edge_mutation_invalidates():
    graph = fresh_graph()
    forest = graph.loop_forest()
    header = forest.loops[0].header
    pred = next(
        p for p in header.predecessors
        if p not in forest.loops[0].back_edge_predecessors
    )
    insert_block_on_edge(graph, pred, header)
    assert graph.loop_forest() is not forest


def test_block_removal_invalidates():
    graph = fresh_graph()
    tracer = Tracer(enabled=False)
    with use_tracer(tracer):
        graph.dominator_tree()
        dead = graph.new_block("dead")
        graph.dominator_tree()
        graph.remove_block(dead)
        graph.dominator_tree()
    # new_block and remove_block each cleared the cache.
    assert tracer.counters["analysis.dominators"] == 3


def test_pickle_drops_cached_analyses():
    graph = fresh_graph()
    graph.dominator_tree()
    graph.loop_forest()
    rehydrated = pickle.loads(pickle.dumps(compile_source(LOOPY))).function("main")
    assert rehydrated._analysis_cache == {}


def test_straightline_compile_computes_each_analysis_once_per_phase():
    """The satellite acceptance assertion: compiling a straight-line
    function must not recompute any CFG analysis within a phase —
    with no CFG mutations, each analysis is computed at most once
    TOTAL across the whole pipeline (strictly stronger than the
    per-phase bound)."""
    source = "fn main(x: int) -> int { return x * 2 + 1; }"
    program = compile_source(source)
    tracer = Tracer(enabled=False)
    with use_tracer(tracer):
        Compiler(DBDS).compile_program(program)
    for counter in COUNTERS:
        assert tracer.counters.get(counter, 0) <= 1, (
            counter, dict(tracer.counters)
        )


def test_loopy_compile_bounded_by_mutation_count():
    """Phases that mutate the CFG may recompute, but a DBDS compile of a
    small loop must stay within a small number of recomputations —
    the cached accessors cap each phase at one compute per mutation."""
    program = compile_source(LOOPY)
    tracer = Tracer(enabled=False)
    with use_tracer(tracer):
        Compiler(DBDS).compile_program(program)
    for counter in COUNTERS:
        assert tracer.counters.get(counter, 0) <= 25, (
            counter, dict(tracer.counters)
        )
