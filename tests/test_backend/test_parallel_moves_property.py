"""Hypothesis property: parallel-move sequentialization is always a
correct implementation of the simultaneous assignment semantics —
including arbitrary permutations (pure cycles) and shared sources."""

from hypothesis import given, strategies as st

from repro.backend.lir import Immediate, LirMove, VReg
from repro.backend.lowering import sequentialize_parallel_moves


def run_sequential(moves, initial):
    state = dict(initial)
    for move in moves:
        assert isinstance(move, LirMove)
        value = (
            move.src.value
            if isinstance(move.src, Immediate)
            else state[move.src]
        )
        state[move.dst] = value
    return state


@st.composite
def parallel_move_sets(draw):
    """Random move sets over a small register pool: destinations are
    unique (phi destinations are), sources arbitrary (registers or
    immediates, shared freely)."""
    pool = [VReg(id=1_000_000 + i, hint=f"t{i}") for i in range(6)]
    dst_count = draw(st.integers(min_value=1, max_value=6))
    dsts = draw(
        st.lists(
            st.sampled_from(pool), min_size=dst_count, max_size=dst_count,
            unique=True,
        )
    )
    moves = []
    for dst in dsts:
        if draw(st.booleans()):
            moves.append((dst, draw(st.sampled_from(pool))))
        else:
            moves.append((dst, Immediate(draw(st.integers(0, 99)))))
    return pool, moves


@given(parallel_move_sets())
def test_sequentialization_matches_parallel_semantics(case):
    pool, moves = case
    initial = {reg: 100 + i for i, reg in enumerate(pool)}

    # Parallel semantics: all sources read from the initial state.
    expected = dict(initial)
    for dst, src in moves:
        expected[dst] = src.value if isinstance(src, Immediate) else initial[src]

    emitted = sequentialize_parallel_moves(moves)
    final = run_sequential(emitted, initial)

    for reg in pool:
        assert final.get(reg, initial[reg]) == expected[reg] or reg not in {
            d for d, _ in moves
        }, f"register {reg} corrupted"
    for dst, _ in moves:
        assert final[dst] == expected[dst]


@given(st.permutations(list(range(5))))
def test_pure_permutations(perm):
    """dst_i <- src_perm(i): every permutation (cycles included)."""
    regs = [VReg(id=2_000_000 + i) for i in range(5)]
    moves = [(regs[i], regs[perm[i]]) for i in range(5)]
    initial = {reg: i for i, reg in enumerate(regs)}
    emitted = sequentialize_parallel_moves(moves)
    final = run_sequential(emitted, initial)
    for i in range(5):
        assert final[regs[i]] == perm[i]
