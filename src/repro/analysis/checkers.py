"""The IR checker suite.

Ported-and-extended versions of the historical ``repro.ir.verifier``
checks (message texts are preserved — :func:`repro.ir.verifier.verify_graph`
is now a thin shim over this registry) plus checkers the monolith never
had: per-slot phi/predecessor ordering, static stamp soundness,
loop-structure integrity and block-frequency sanity.

Checker disjointness is deliberate: each invariant has exactly one
owner, so a corrupted graph names the checker that guards the broken
property instead of producing a cascade.  Derived-state checkers
(loop-structure, block-frequency) guard on the structural invariants
they assume and stay silent when a structural checker already owns the
failure.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ir.block import Block
from ..ir.nodes import (
    ArithOp,
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    Parameter,
    Phi,
    Terminator,
    Value,
)
from ..ir.stamps import BoolStamp, IntStamp, ObjectStamp, VoidStamp
from ..opts.stampmath import arith_stamp, compare_stamps
from .core import CheckerContext, Severity, checker

#: checkers equivalent to the historical ``verify_graph`` (shim set)
CORE_CHECKERS = (
    "block-structure",
    "edge-consistency",
    "phi-inputs",
    "phi-ordering",
    "ssa-dominance",
    "use-lists",
)

#: the ``verify_graph(check_dominance=False)`` subset
STRUCTURAL_CHECKERS = ("block-structure", "edge-consistency", "phi-inputs")


# ----------------------------------------------------------------------
# Structural checkers (ported from the old verifier)
# ----------------------------------------------------------------------
@checker("block-structure", description="terminators, block links, If shape")
def check_block_structure(ctx: CheckerContext) -> None:
    graph = ctx.graph
    if graph.entry.predecessors:
        ctx.report("entry block has predecessors", block=graph.entry)
    block_set = set(graph.blocks)
    for block in graph.blocks:
        if block.terminator is None:
            ctx.report(f"{block.name} has no terminator", block=block)
            continue
        if block.terminator.block is not block:
            ctx.report(
                f"terminator of {block.name} has wrong block link", block=block
            )
        for target in block.terminator.targets:
            if target not in block_set:
                ctx.report(
                    f"{block.name} targets removed block {target.name}",
                    block=block,
                )
        term = block.terminator
        if isinstance(term, If):
            if term.true_target is term.false_target:
                ctx.report(f"If in {block.name} has identical targets", block=block)
            if not (0.0 <= term.true_probability <= 1.0):
                ctx.report(
                    f"If in {block.name} has probability {term.true_probability}",
                    block=block,
                )
        for ins in block.instructions:
            if ins.block is not block:
                ctx.report(
                    f"{ins!r} in {block.name} has wrong block link", block=block
                )
            if isinstance(ins, Phi):
                ctx.report(
                    f"phi {ins!r} stored in instruction list of {block.name}",
                    block=block,
                )
        for phi in block.phis:
            if phi.block is not block:
                ctx.report(
                    f"{phi!r} in {block.name} has wrong block link", block=block
                )


@checker("edge-consistency", description="pred/succ symmetry, split critical edges")
def check_edge_consistency(ctx: CheckerContext) -> None:
    for block in ctx.reachable:
        # Every successor must list this block as predecessor exactly
        # once per edge (targets are distinct, so once).
        for succ in block.successors:
            count = sum(1 for p in succ.predecessors if p is block)
            if count != 1:
                ctx.report(
                    f"edge {block.name}->{succ.name} recorded {count} times "
                    "in predecessors",
                    block=block,
                )
        for pred in block.predecessors:
            if block not in pred.successors:
                ctx.report(
                    f"{pred.name} listed as predecessor of {block.name} "
                    "but has no such edge",
                    block=block,
                )
        # Critical-edge invariant: predecessors of merges end in Goto.
        if block.is_merge():
            for pred in block.predecessors:
                if not isinstance(pred.terminator, Goto):
                    ctx.report(
                        f"merge {block.name} has non-Goto predecessor "
                        f"{pred.name} (critical edge not split)",
                        block=block,
                    )


@checker("phi-inputs", description="one phi input per ordered predecessor")
def check_phi_inputs(ctx: CheckerContext) -> None:
    for block in ctx.reachable:
        for phi in block.phis:
            if len(phi.inputs) != len(block.predecessors):
                ctx.report(
                    f"{phi!r} has {len(phi.inputs)} inputs but {block.name} "
                    f"has {len(block.predecessors)} predecessors",
                    block=block,
                )


# ----------------------------------------------------------------------
# Data-flow checkers
# ----------------------------------------------------------------------
def _operand_def_ok(
    ctx: CheckerContext, operand: Value, user_desc: str, block: Block
) -> Optional[Block]:
    """Shared preamble of a use check: the operand must be an
    instruction defined in a reachable block.  Returns its defining
    block, or None when the operand is exempt or already reported."""
    if isinstance(operand, (Constant, Parameter)):
        return None
    if not isinstance(operand, Instruction):
        ctx.report(f"{user_desc} uses non-instruction {operand!r}", block=block)
        return None
    def_block = operand.block
    if def_block is None or def_block not in ctx.reachable:
        ctx.report(
            f"{user_desc} uses {operand!r} from removed/unreachable block",
            block=block,
        )
        return None
    return def_block


@checker("phi-ordering", description="phi inputs match predecessor order")
def check_phi_ordering(ctx: CheckerContext) -> None:
    """A phi input is consumed at the *end* of its slot's predecessor,
    so each input must be defined in a block dominating that
    predecessor.  Mis-ordered predecessor lists surface here: the input
    built for one incoming edge is suddenly checked against another."""
    for block in ctx.reachable:
        for phi in block.phis:
            if len(phi.inputs) != len(block.predecessors):
                continue  # phi-inputs owns the arity violation
            for slot, operand in enumerate(phi.inputs):
                pred = block.predecessors[slot]
                user_desc = f"{phi!r} (input {slot})"
                def_block = _operand_def_ok(ctx, operand, user_desc, block)
                if def_block is None:
                    continue
                if def_block is pred:
                    continue  # every def of pred is visible at its end
                if not ctx.dom.dominates(def_block, pred):
                    ctx.report(
                        f"{user_desc} in {pred.name} uses {operand!r} defined "
                        f"in {def_block.name} which does not dominate it",
                        block=block,
                    )


@checker("ssa-dominance", description="defs dominate uses")
def check_ssa_dominance(ctx: CheckerContext) -> None:
    """Schedule-order and dominance checks for instruction and
    terminator operands (phi operands are owned by phi-ordering)."""
    position: dict[Instruction, int] = {}
    for block in ctx.reachable:
        for i, ins in enumerate(block.instructions):
            position[ins] = i

    def check_use(user, operand: Value, use_block: Block, user_desc: str) -> None:
        def_block = _operand_def_ok(ctx, operand, user_desc, use_block)
        if def_block is None:
            return
        if def_block is use_block:
            if isinstance(operand, Phi):
                return  # phis precede all instructions of the block
            if isinstance(user, Terminator):
                return  # terminators come last and see every def
            if position[operand] >= position.get(user, 1 << 30):
                ctx.report(
                    f"{user_desc} uses {operand!r} before its definition",
                    block=use_block,
                )
            return
        if not ctx.dom.dominates(def_block, use_block):
            ctx.report(
                f"{user_desc} in {use_block.name} uses {operand!r} defined in "
                f"{def_block.name} which does not dominate it",
                block=use_block,
            )

    for block in ctx.reachable:
        for ins in block.instructions:
            for operand in ins.inputs:
                check_use(ins, operand, block, repr(ins))
        if block.terminator is None:
            continue  # block-structure owns the missing terminator
        for operand in block.terminator.inputs:
            check_use(
                block.terminator, operand, block, f"terminator of {block.name}"
            )


@checker("use-lists", description="use-def bookkeeping consistency")
def check_use_lists(ctx: CheckerContext) -> None:
    """Both directions of the eager use-def chains: every operand slot
    must be recorded in the operand's use map with the right count, and
    every recorded use must correspond to live operand slots."""
    graph = ctx.graph

    def users_of(block: Block):
        yield from block.phis
        yield from block.instructions
        if block.terminator is not None:
            yield block.terminator

    # Forward: user slots -> recorded counts.
    for block in ctx.reachable:
        for user in users_of(block):
            for operand in set(user.inputs):
                actual = sum(1 for v in user.inputs if v is operand)
                if operand.uses.get(user, 0) != actual:
                    ctx.report(
                        f"use-count bookkeeping broken for {operand!r}",
                        block=block,
                    )

    # Reverse: recorded users -> actual slots.
    def check_value(value: Value, block: Optional[Block]) -> None:
        for recorded_user, count in value.uses.items():
            actual = sum(1 for v in recorded_user.inputs if v is value)
            if actual != count:
                ctx.report(
                    f"use-count bookkeeping broken for {value!r}", block=block
                )
            elif getattr(recorded_user, "block", None) is None:
                ctx.report(
                    f"{value!r} is recorded as used by {recorded_user!r} "
                    "which is not attached to any block",
                    block=block,
                    severity=Severity.WARNING,
                )

    for param in graph.parameters:
        check_value(param, None)
    for const in graph._constants.values():
        check_value(const, None)
    for block in ctx.reachable:
        for ins in block.all_instructions():
            check_value(ins, block)


# ----------------------------------------------------------------------
# Stamp soundness
# ----------------------------------------------------------------------
def stamp_admits(stamp, value) -> bool:
    """Whether a runtime ``value`` is within what ``stamp`` declares."""
    if isinstance(stamp, IntStamp):
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and stamp.contains(value)
        )
    if isinstance(stamp, BoolStamp):
        if not isinstance(value, bool):
            return False
        return stamp.can_be_true if value else stamp.can_be_false
    if isinstance(stamp, ObjectStamp):
        if value is None:
            return not stamp.non_null
        return not stamp.always_null
    if isinstance(stamp, VoidStamp):
        return value is None
    return True


def check_stamp_dynamic(instruction: Instruction, value) -> Optional[str]:
    """Dynamic stamp check for the interpreter's observer hook: the
    declared stamp must admit the value actually produced."""
    if stamp_admits(instruction.stamp, value):
        return None
    return (
        f"{instruction!r} produced {value!r} outside its declared "
        f"stamp {instruction.stamp!r}"
    )


@checker("stamp-soundness", description="declared stamps over-approximate values")
def check_stamp_soundness(ctx: CheckerContext) -> None:
    """Static over-approximation checks.  No phase in this compiler
    narrows a stamp in place, so a declared stamp narrower than what
    forward propagation proves reachable is always corruption."""
    graph = ctx.graph

    for const in graph._constants.values():
        if const.has_uses() and not stamp_admits(const.stamp, const.value):
            ctx.report(
                f"constant {const!r} has stamp {const.stamp!r} which does "
                f"not admit its value {const.value!r}"
            )

    for block in ctx.reachable:
        for ins in block.all_instructions():
            stamp = ins.stamp
            if stamp.is_empty():
                ctx.report(
                    f"{ins!r} in reachable code has empty stamp {stamp!r}",
                    block=block,
                )
                continue
            if isinstance(ins, ArithOp) and isinstance(stamp, IntStamp):
                xs, ys = ins.x.stamp, ins.y.stamp
                if isinstance(xs, IntStamp) and isinstance(ys, IntStamp):
                    computed = arith_stamp(ins.op, xs, ys)
                    if not computed.is_empty() and not (
                        stamp.lo <= computed.lo and computed.hi <= stamp.hi
                    ):
                        ctx.report(
                            f"{ins!r} has stamp {stamp!r} which does not "
                            f"cover the computed range {computed!r}",
                            block=block,
                        )
            elif isinstance(ins, Compare) and isinstance(stamp, BoolStamp):
                known = compare_stamps(ins.op, ins.x.stamp, ins.y.stamp)
                if known is not None and not stamp_admits(stamp, known):
                    ctx.report(
                        f"{ins!r} has stamp {stamp!r} but its operand stamps "
                        f"prove the result is {known}",
                        block=block,
                    )
            elif isinstance(ins, Phi) and isinstance(stamp, IntStamp):
                input_stamps = [v.stamp for v in ins.inputs]
                if input_stamps and all(
                    isinstance(s, IntStamp) for s in input_stamps
                ):
                    merged = input_stamps[0]
                    for s in input_stamps[1:]:
                        merged = merged.meet(s)
                    if not merged.is_empty() and not (
                        stamp.lo <= merged.lo and merged.hi <= stamp.hi
                    ):
                        ctx.report(
                            f"{ins!r} has stamp {stamp!r} which does not "
                            f"cover the merge of its inputs {merged!r}",
                            block=block,
                        )


# ----------------------------------------------------------------------
# Loop structure and frequencies
# ----------------------------------------------------------------------
def _edges_look_consistent(ctx: CheckerContext) -> bool:
    """Precondition probe for derived-state checkers: when the CFG's
    edge bookkeeping is broken, edge-consistency owns the failure and
    analyses built on top would only produce noise."""
    for block in ctx.reachable:
        if block.terminator is None:
            return False
        for succ in block.successors:
            if sum(1 for p in succ.predecessors if p is block) != 1:
                return False
        for pred in block.predecessors:
            if block not in pred.successors:
                return False
    return True


@checker("loop-structure", description="reducible loops, entries, back edges")
def check_loop_structure(ctx: CheckerContext) -> None:
    if not _edges_look_consistent(ctx):
        return
    graph = ctx.graph

    # Reducibility: every retreating edge of a DFS must target a block
    # dominating its source (i.e. be a true back edge).  LoopForest and
    # BlockFrequencies both silently assume this.
    state: dict[Block, int] = {}  # 1 = on stack, 2 = done
    stack: list[tuple[Block, int]] = [(graph.entry, 0)]
    state[graph.entry] = 1
    while stack:
        block, index = stack.pop()
        succs = block.successors
        if index < len(succs):
            stack.append((block, index + 1))
            succ = succs[index]
            seen = state.get(succ)
            if seen is None:
                state[succ] = 1
                stack.append((succ, 0))
            elif seen == 1 and not ctx.dom.dominates(succ, block):
                ctx.report(
                    f"irreducible loop: retreating edge {block.name}->"
                    f"{succ.name} whose target does not dominate its source",
                    block=block,
                )
        else:
            state[block] = 2

    for loop in ctx.loops.loops:
        header = loop.header
        back_edges = set(loop.back_edge_predecessors)
        if not any(p not in back_edges for p in header.predecessors):
            ctx.report(
                f"loop at {header.name} has no entry edge "
                "(every predecessor is a back edge)",
                block=header,
            )
        for pred in loop.back_edge_predecessors:
            if pred not in loop.blocks:
                ctx.report(
                    f"back-edge predecessor {pred.name} lies outside the "
                    f"loop body of {header.name}",
                    block=header,
                )
        has_exit = any(
            succ not in loop.blocks
            for body_block in loop.blocks
            for succ in body_block.successors
        )
        if not has_exit:
            ctx.report(
                f"loop at {header.name} has no exit edge",
                block=header,
                severity=Severity.WARNING,
            )


@checker("block-frequency", description="trip counts and frequency estimates")
def check_block_frequency(ctx: CheckerContext) -> None:
    if not _edges_look_consistent(ctx):
        return
    # Probability ranges are owned by block-structure; frequency math
    # on out-of-range probabilities would only duplicate that blame.
    for block in ctx.reachable:
        term = block.terminator
        if isinstance(term, If) and not (0.0 <= term.true_probability <= 1.0):
            return

    for loop in ctx.loops.loops:
        trips = loop.trip_count
        if not math.isfinite(trips) or trips <= 0.0:
            ctx.report(
                f"loop at {loop.header.name} has invalid trip count {trips!r}",
                block=loop.header,
            )

    frequencies = ctx.frequencies
    for block in ctx.reachable:
        freq = frequencies.frequency.get(block, 0.0)
        if not math.isfinite(freq) or freq < 0.0:
            ctx.report(
                f"{block.name} has invalid estimated frequency {freq!r}",
                block=block,
            )
        elif freq == 0.0:
            ctx.report(
                f"reachable block {block.name} has zero estimated frequency",
                block=block,
                severity=Severity.WARNING,
            )
