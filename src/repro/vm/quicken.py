"""Quickening: first-execution rewriting of generic ops in place.

CPython-3.11-style adaptive specialization for the fast stream built
by :mod:`repro.vm.fusion`.  The first time a function's frame runs
(:meth:`VirtualMachine._run_frame_fast` checks ``fn.quickened``),
:func:`quicken_function` rewrites eligible weight-1 sites of
``fn.xcode`` in place:

* **const-operand baking** — an arithmetic/compare operand living in
  the interned-constant register range is replaced by its value inside
  the tuple (``regs[x] + K`` instead of ``regs[x] + regs[y]``);
  commutative ops and mirrored compares also bake a constant *left*
  operand.  Constant registers are immutable at runtime by
  construction, so baked sites never deoptimize.  Division and modulo
  by a **non-zero** constant additionally drop the zero check.
* **guarded int fast paths** — ``add``/``sub``/``mul`` skip the wrap64
  mask while the Python result stays inside the signed 64-bit range,
  and ``eq``/``ne`` skip the reference-identity check while both
  operands are exactly ``int``.  A failed guard **deoptimizes**: the
  site is rewritten back to its generic tuple (permanently — the
  quickened tuple carries both the stream and the generic form) and
  the generic handler executes *this* occurrence, so values, metered
  cycles, steps and traps stay bit-identical to the reference
  interpreter on either side of the escape.

Every rewritten tuple keeps the original baked cycle cost and step
weight 1, so metering and budget timing are unaffected by design.
Deopts and quickened-site counts feed the ambient metrics registry
(``repro_vm_quickened_sites_total``, ``repro_vm_deopts_total``).
"""

from __future__ import annotations

from ..obs.metrics import current_registry
from .bytecode import (
    OP_ADD,
    OP_AND,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_OR,
    OP_SUB,
    OP_XOR,
    OPCODE_NAMES,
    BytecodeFunction,
)
from .machine import _HANDLERS, _MASK, _SIGN, _TWO64, _is_ref, register_xop
from .opspec import OpSpec, register_opspec


# ----------------------------------------------------------------------
# Deopt escape shared by every guarded handler.  Layout of a guarded
# tuple: (op, cost, node, dest, rx, ry, xcode_list, generic_tuple, 1).
# ----------------------------------------------------------------------
def _deopt(vm, ins, regs, pc):
    generic = ins[7]
    ins[6][pc] = generic
    current_registry().inc(
        "repro_vm_deopts_total", opcode=OPCODE_NAMES[generic[0]]
    )
    return _HANDLERS[generic[0]](vm, generic, regs, pc)


# -- guarded int fast paths --------------------------------------------
def _op_add_q(vm, ins, regs, pc):
    v = regs[ins[4]] + regs[ins[5]]
    if -9223372036854775808 <= v <= 9223372036854775807:
        regs[ins[3]] = v
        return pc + 1
    return _deopt(vm, ins, regs, pc)


def _op_sub_q(vm, ins, regs, pc):
    v = regs[ins[4]] - regs[ins[5]]
    if -9223372036854775808 <= v <= 9223372036854775807:
        regs[ins[3]] = v
        return pc + 1
    return _deopt(vm, ins, regs, pc)


def _op_mul_q(vm, ins, regs, pc):
    v = regs[ins[4]] * regs[ins[5]]
    if -9223372036854775808 <= v <= 9223372036854775807:
        regs[ins[3]] = v
        return pc + 1
    return _deopt(vm, ins, regs, pc)


def _op_eq_ii(vm, ins, regs, pc):
    a, b = regs[ins[4]], regs[ins[5]]
    if a.__class__ is int and b.__class__ is int:
        regs[ins[3]] = a == b
        return pc + 1
    return _deopt(vm, ins, regs, pc)


def _op_ne_ii(vm, ins, regs, pc):
    a, b = regs[ins[4]], regs[ins[5]]
    if a.__class__ is int and b.__class__ is int:
        regs[ins[3]] = a != b
        return pc + 1
    return _deopt(vm, ins, regs, pc)


# -- const-operand forms (never deoptimize; constants are immutable) ---
# Layout: (op, cost, node, dest, rx, const_value, 1).
def _op_add_rc(vm, ins, regs, pc):
    v = (regs[ins[4]] + ins[5]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_sub_rc(vm, ins, regs, pc):
    v = (regs[ins[4]] - ins[5]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_mul_rc(vm, ins, regs, pc):
    v = (regs[ins[4]] * ins[5]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_and_rc(vm, ins, regs, pc):
    v = (regs[ins[4]] & ins[5]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_or_rc(vm, ins, regs, pc):
    v = (regs[ins[4]] | ins[5]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_xor_rc(vm, ins, regs, pc):
    v = (regs[ins[4]] ^ ins[5]) & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_div_rc(vm, ins, regs, pc):
    # Only installed for a non-zero constant divisor: no zero check.
    a, b = regs[ins[4]], ins[5]
    q = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        q = -q
    v = q & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_mod_rc(vm, ins, regs, pc):
    a, b = regs[ins[4]], ins[5]
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    v = r & _MASK
    regs[ins[3]] = v - _TWO64 if v & _SIGN else v
    return pc + 1


def _op_eq_rc(vm, ins, regs, pc):
    a = regs[ins[4]]
    regs[ins[3]] = a is ins[5] if _is_ref(a) else a == ins[5]
    return pc + 1


def _op_ne_rc(vm, ins, regs, pc):
    a = regs[ins[4]]
    regs[ins[3]] = not (a is ins[5] if _is_ref(a) else a == ins[5])
    return pc + 1


def _op_lt_rc(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] < ins[5]
    return pc + 1


def _op_le_rc(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] <= ins[5]
    return pc + 1


def _op_gt_rc(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] > ins[5]
    return pc + 1


def _op_ge_rc(vm, ins, regs, pc):
    regs[ins[3]] = regs[ins[4]] >= ins[5]
    return pc + 1


OP_ADD_Q = register_xop(_op_add_q)
OP_SUB_Q = register_xop(_op_sub_q)
OP_MUL_Q = register_xop(_op_mul_q)
OP_EQ_II = register_xop(_op_eq_ii)
OP_NE_II = register_xop(_op_ne_ii)
OP_ADD_RC = register_xop(_op_add_rc)
OP_SUB_RC = register_xop(_op_sub_rc)
OP_MUL_RC = register_xop(_op_mul_rc)
OP_AND_RC = register_xop(_op_and_rc)
OP_OR_RC = register_xop(_op_or_rc)
OP_XOR_RC = register_xop(_op_xor_rc)
OP_DIV_RC = register_xop(_op_div_rc)
OP_MOD_RC = register_xop(_op_mod_rc)
OP_EQ_RC = register_xop(_op_eq_rc)
OP_NE_RC = register_xop(_op_ne_rc)
OP_LT_RC = register_xop(_op_lt_rc)
OP_LE_RC = register_xop(_op_le_rc)
OP_GT_RC = register_xop(_op_gt_rc)
OP_GE_RC = register_xop(_op_ge_rc)

#: generic opcode -> const-right-operand form
_RC_OPS = {
    OP_ADD: OP_ADD_RC, OP_SUB: OP_SUB_RC, OP_MUL: OP_MUL_RC,
    OP_AND: OP_AND_RC, OP_OR: OP_OR_RC, OP_XOR: OP_XOR_RC,
    OP_DIV: OP_DIV_RC, OP_MOD: OP_MOD_RC,
    OP_EQ: OP_EQ_RC, OP_NE: OP_NE_RC,
    OP_LT: OP_LT_RC, OP_LE: OP_LE_RC, OP_GT: OP_GT_RC, OP_GE: OP_GE_RC,
}

#: generic opcode -> const-LEFT-operand form: commutative ops reuse the
#: right-const form directly; ordered compares use the mirrored one
#: (``K < y`` == ``y > K``).
_SWAP_RC = {
    OP_ADD: OP_ADD_RC, OP_MUL: OP_MUL_RC,
    OP_AND: OP_AND_RC, OP_OR: OP_OR_RC, OP_XOR: OP_XOR_RC,
    OP_EQ: OP_EQ_RC, OP_NE: OP_NE_RC,
    OP_LT: OP_GT_RC, OP_LE: OP_GE_RC, OP_GT: OP_LT_RC, OP_GE: OP_LE_RC,
}

#: generic opcode -> guarded fast-path form (reg-reg operands)
_GUARD_OPS = {
    OP_ADD: OP_ADD_Q, OP_SUB: OP_SUB_Q, OP_MUL: OP_MUL_Q,
    OP_EQ: OP_EQ_II, OP_NE: OP_NE_II,
}

_CANDIDATES = frozenset(_RC_OPS) | frozenset(_SWAP_RC) | frozenset(_GUARD_OPS)

# Instruction specs for the verifier.  A const form's origin lists
# every generic opcode that may quicken into it (right-const plus the
# mirrored/commutative left-const mappings); a guarded form always has
# exactly one generic origin.
for _xop, _name in (
    (OP_ADD_Q, "add_q"), (OP_SUB_Q, "sub_q"), (OP_MUL_Q, "mul_q"),
    (OP_EQ_II, "eq_ii"), (OP_NE_II, "ne_ii"),
):
    _origin = tuple(g for g, x in sorted(_GUARD_OPS.items()) if x == _xop)
    register_opspec(_xop, OpSpec(_name, "quick-guard", origin=_origin))
for _g, _xop in sorted(_RC_OPS.items()):
    _origin = tuple(sorted(
        {g for g, x in _RC_OPS.items() if x == _xop}
        | {g for g, x in _SWAP_RC.items() if x == _xop}
    ))
    register_opspec(_xop, OpSpec(
        OPCODE_NAMES[_g] + "_rc", "quick-const", origin=_origin,
    ))
del _g, _xop, _name, _origin


def quicken_function(fn: BytecodeFunction) -> dict[str, int]:
    """Rewrite ``fn.xcode`` specializations in place; returns counts.

    Called on the function's first fast-stream execution.  Only plain
    weight-1 sites are touched — superinstructions already bake their
    costs, and their embedded halves execute through the base table.
    """
    code = fn.xcode
    lo = fn.const_base
    hi = lo + fn.const_count
    template = fn.template
    stats: dict[str, int] = {}
    n = len(code)
    pc = 0
    while pc < n:
        ins = code[pc]
        w = ins[-1]
        if w > 1:
            pc += w  # skip the superinstruction and its padding slots
            continue
        op = ins[0]
        if op in _CANDIDATES:
            rx, ry = ins[4], ins[5]
            new = None
            kind = None
            if lo <= ry < hi and op in _RC_OPS:
                value = template[ry]
                if not (op in (OP_DIV, OP_MOD) and value == 0):
                    new = (_RC_OPS[op], ins[1], ins[2], ins[3], rx, value, 1)
                    kind = "const"
            elif lo <= rx < hi and op in _SWAP_RC:
                value = template[rx]
                new = (_SWAP_RC[op], ins[1], ins[2], ins[3], ry, value, 1)
                kind = "const"
            elif op in _GUARD_OPS:
                new = (
                    _GUARD_OPS[op], ins[1], ins[2], ins[3], rx, ry,
                    code, ins, 1,
                )
                kind = "guard"
            if new is not None:
                code[pc] = new
                stats[kind] = stats.get(kind, 0) + 1
        pc += 1
    fn.quickened = True
    if stats:
        registry = current_registry()
        if registry.enabled:
            for kind, count in stats.items():
                registry.inc(
                    "repro_vm_quickened_sites_total", count, kind=kind
                )
    return stats


__all__ = [
    "OP_ADD_Q",
    "OP_ADD_RC",
    "OP_DIV_RC",
    "OP_EQ_II",
    "OP_EQ_RC",
    "OP_MUL_Q",
    "OP_SUB_Q",
    "quicken_function",
]
