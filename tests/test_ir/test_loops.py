"""Tests for natural-loop detection and nesting."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.ir import CmpOp, Compare, Goto, Graph, If, INT, Phi, Return
from repro.ir.loops import DEFAULT_TRIP_COUNT, LoopForest


def simple_loop_graph():
    g = Graph("loop", [("n", INT)], INT)
    header, body, exit_ = g.new_block("h"), g.new_block("b"), g.new_block("e")
    g.entry.set_terminator(Goto(header))
    phi = Phi(header, INT, [g.const_int(0)])
    header.add_phi(phi)
    cond = header.append(Compare(CmpOp.LT, phi, g.parameters[0]))
    header.set_terminator(If(cond, body, exit_))
    body.set_terminator(Goto(header))
    phi._append_input(phi)
    exit_.set_terminator(Return(phi))
    return g, header, body, exit_


class TestSimpleLoop:
    def test_detected(self):
        g, header, body, exit_ = simple_loop_graph()
        forest = LoopForest(g)
        assert len(forest.loops) == 1
        loop = forest.loops[0]
        assert loop.header is header
        assert loop.blocks == {header, body}
        assert loop.back_edge_predecessors == [body]

    def test_queries(self):
        g, header, body, exit_ = simple_loop_graph()
        forest = LoopForest(g)
        assert forest.is_loop_header(header)
        assert not forest.is_loop_header(body)
        assert forest.loop_depth(header) == 1
        assert forest.loop_depth(exit_) == 0
        assert forest.is_back_edge(body, header)
        assert not forest.is_back_edge(g.entry, header)
        assert forest.innermost_loop(body).header is header
        assert forest.innermost_loop(exit_) is None

    def test_default_trip_count(self):
        g, header, *_ = simple_loop_graph()
        forest = LoopForest(g)
        assert forest.loops[0].trip_count == DEFAULT_TRIP_COUNT

    def test_profiled_trip_count_attr(self):
        g, header, *_ = simple_loop_graph()
        header.profile_trip_count = 42.0
        forest = LoopForest(g)
        assert forest.loops[0].trip_count == 42.0


class TestNestedLoops:
    SOURCE = """
fn nested(n: int) -> int {
  var total: int = 0;
  var i: int = 0;
  while (i < n) {
    var j: int = 0;
    while (j < i) {
      total = total + j;
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}
"""

    def test_two_loops_with_nesting(self):
        program = compile_source(self.SOURCE)
        forest = LoopForest(program.function("nested"))
        assert len(forest.loops) == 2
        outer = next(l for l in forest.loops if l.parent is None)
        inner = next(l for l in forest.loops if l.parent is not None)
        assert inner.parent is outer
        assert inner.depth == 2 and outer.depth == 1
        assert inner.header in outer.blocks
        assert inner.blocks < outer.blocks

    def test_inner_blocks_map_to_inner_loop(self):
        program = compile_source(self.SOURCE)
        forest = LoopForest(program.function("nested"))
        inner = next(l for l in forest.loops if l.parent is not None)
        for block in inner.blocks:
            assert forest.innermost_loop(block) is inner


class TestNoLoops:
    def test_acyclic_graph_has_none(self, diamond):
        forest = LoopForest(diamond["graph"])
        assert forest.loops == []
        assert forest.innermost_loop(diamond["merge"]) is None
        assert not forest.is_loop_header(diamond["merge"])


class TestSequentialLoops:
    def test_siblings_not_nested(self):
        source = """
fn two(n: int) -> int {
  var a: int = 0;
  var i: int = 0;
  while (i < n) { a = a + i; i = i + 1; }
  var j: int = 0;
  while (j < n) { a = a + j; j = j + 1; }
  return a;
}
"""
        program = compile_source(source)
        forest = LoopForest(program.function("two"))
        assert len(forest.loops) == 2
        assert all(loop.parent is None for loop in forest.loops)
        headers = {loop.header for loop in forest.loops}
        assert len(headers) == 2
