"""Tests for linear-scan register allocation."""

import pytest

from repro.backend.lir import PReg, StackSlot, VReg
from repro.backend.liveness import compute_intervals
from repro.backend.lowering import lower_graph, lower_program
from repro.backend.machine import Machine
from repro.backend.regalloc import allocate, allocate_program
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter

HIGH_PRESSURE = """
fn f(a: int, b: int, c: int, d: int) -> int {
  var e: int = a + b;
  var g: int = c + d;
  var h: int = a * c;
  var i: int = b * d;
  var j: int = e + g;
  var k: int = h + i;
  var l: int = e * h;
  var m: int = g * i;
  return j + k + l + m + a + b + c + d;
}
"""


class TestAllocation:
    def test_no_overlapping_intervals_share_register(self):
        program = compile_source(HIGH_PRESSURE)
        fn = lower_graph(program.function("f"))
        intervals = compute_intervals(fn)
        result = allocate(fn, register_count=4)
        by_vreg = {iv.vreg: iv for iv in intervals}
        placed = [
            (iv, result.mapping[iv.vreg])
            for iv in intervals
            if isinstance(result.mapping[iv.vreg], PReg)
        ]
        for i, (iv_a, loc_a) in enumerate(placed):
            for iv_b, loc_b in placed[i + 1 :]:
                if loc_a == loc_b:
                    assert not iv_a.overlaps(iv_b), (
                        f"{iv_a} and {iv_b} share {loc_a}"
                    )

    def test_spills_under_pressure(self):
        program = compile_source(HIGH_PRESSURE)
        fn = lower_graph(program.function("f"))
        result = allocate(fn, register_count=3)
        assert result.spills > 0
        assert fn.frame_slots == result.spills

    def test_no_spills_with_plenty_of_registers(self):
        program = compile_source(
            "fn f(a: int, b: int) -> int { return a + b; }"
        )
        fn = lower_graph(program.function("f"))
        result = allocate(fn, register_count=16)
        assert result.spills == 0

    def test_all_vregs_mapped(self):
        program = compile_source(HIGH_PRESSURE)
        fn = lower_graph(program.function("f"))
        result = allocate(fn, register_count=4)
        for block in fn.blocks.values():
            for ins in block.instructions:
                for op in list(ins.uses()) + list(ins.defs()):
                    assert not isinstance(op, VReg), f"unallocated {op} in {ins!r}"

    @pytest.mark.parametrize("registers", [2, 3, 4, 8, 16])
    def test_execution_correct_at_any_pressure(self, registers):
        program = compile_source(HIGH_PRESSURE)
        expected = Interpreter(program).run("f", [3, 5, 7, 11]).value
        lir = lower_program(program)
        allocate_program(lir, registers)
        assert Machine(lir).run("f", [3, 5, 7, 11]).value == expected

    def test_loop_heavy_function_with_two_registers(self):
        program = compile_source(
            """
fn f(n: int) -> int {
  var s: int = 0;
  var p: int = 1;
  var i: int = 0;
  while (i < n) {
    s = s + i * p;
    p = p + 2;
    i = i + 1;
  }
  return s + p;
}
"""
        )
        expected = Interpreter(program).run("f", [15]).value
        lir = lower_program(program)
        allocate_program(lir, 2)
        assert Machine(lir).run("f", [15]).value == expected
