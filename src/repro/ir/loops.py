"""Natural-loop detection.

Loops matter to DBDS twice: loop headers are merge blocks that must not
be tail-duplicated (that would be loop peeling, which the paper's
optimization tier does not perform), and loop bodies multiply block
frequencies, which scale duplication benefits in the trade-off tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .block import Block
from .dominators import DominatorTree
from .graph import Graph

#: Trip-count estimate used when no profile information is available.
DEFAULT_TRIP_COUNT = 10.0


@dataclass
class Loop:
    """A natural loop: header plus body, with its nesting parent."""

    header: Block
    blocks: set[Block] = field(default_factory=set)
    back_edge_predecessors: list[Block] = field(default_factory=list)
    parent: "Loop | None" = None
    #: Estimated iterations per entry, set from profiles when available.
    trip_count: float = DEFAULT_TRIP_COUNT

    @property
    def depth(self) -> int:
        d, cur = 1, self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopForest:
    """All natural loops of a graph, with block → innermost-loop lookup."""

    def __init__(self, graph: Graph, dom: DominatorTree | None = None) -> None:
        self.graph = graph
        self.dom = dom or DominatorTree(graph)
        self.loops: list[Loop] = []
        self._innermost: dict[Block, Loop] = {}
        self._build()

    def _build(self) -> None:
        by_header: dict[Block, Loop] = {}
        for block in self.dom.rpo:
            for succ in block.successors:
                if succ in self.dom._dfs_in and self.dom.dominates(succ, block):
                    loop = by_header.get(succ)
                    if loop is None:
                        loop = Loop(header=succ, blocks={succ})
                        loop.trip_count = getattr(
                            succ, "profile_trip_count", DEFAULT_TRIP_COUNT
                        )
                        by_header[succ] = loop
                    loop.back_edge_predecessors.append(block)
                    self._collect_body(loop, block)
        # Headers in RPO order: outer loops come first.
        self.loops = [by_header[h] for h in self.dom.rpo if h in by_header]
        self._assign_nesting()

    def _collect_body(self, loop: Loop, back_edge_pred: Block) -> None:
        """Backward reachability from the back edge, stopping at the
        header — the classic natural-loop body computation."""
        stack = [back_edge_pred]
        while stack:
            block = stack.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            # The header is seeded into the body set, so this backward
            # walk naturally stops there and never leaves the loop.
            stack.extend(block.predecessors)

    def _assign_nesting(self) -> None:
        # Innermost loop per block: the smallest loop containing it.
        for loop in self.loops:
            for block in loop.blocks:
                current = self._innermost.get(block)
                if current is None or len(loop.blocks) < len(current.blocks):
                    self._innermost[block] = loop
        # Parent: the innermost *other* loop containing the header.
        for loop in self.loops:
            candidates = [
                other
                for other in self.loops
                if other is not loop and loop.header in other.blocks
            ]
            if candidates:
                loop.parent = min(candidates, key=lambda l: len(l.blocks))

    # ------------------------------------------------------------------
    def innermost_loop(self, block: Block) -> Loop | None:
        return self._innermost.get(block)

    def is_loop_header(self, block: Block) -> bool:
        return any(loop.header is block for loop in self.loops)

    def loop_depth(self, block: Block) -> int:
        loop = self._innermost.get(block)
        return loop.depth if loop else 0

    def is_back_edge(self, pred: Block, succ: Block) -> bool:
        return any(
            loop.header is succ and pred in loop.back_edge_predecessors
            for loop in self.loops
        )
