"""Machine-readable instruction specifications for the full opcode space.

The flat-tuple encoding (:mod:`repro.vm.bytecode`) and the extended
fused/quickened opcode space (:mod:`repro.vm.fusion`,
:mod:`repro.vm.quicken`) document their tuple layouts in prose; the
static bytecode verifier (:mod:`repro.analysis.bcverify`) needs them as
data.  Every opcode — the 32 base opcodes plus every extended opcode
appended through :func:`~repro.vm.machine.register_xop` — registers an
:class:`OpSpec` here describing its tuple *shape*: the operand
signature or family, the step weight its fast-stream tuple must carry,
whether it terminates a basic block, and (for fused/quickened forms)
the base opcodes it was derived from.

Registration happens next to handler registration, in the same
pickle-stable import order the package ``__init__`` pins, so
``OPCODE_SPECS`` always covers exactly ``range(len(XHANDLERS))`` — the
opcode-space exhaustiveness test asserts this.

Families and their fast-stream tuple layouts (``h`` = the tuple of
unfused prefix halves at slot ``-2``, ``w`` = step weight at ``-1``):

======================  ====================================================
family                  layout
======================  ====================================================
``base``                ``(op, cost, node, dest, *operands[, w])`` — the
                        operand kinds are in :attr:`OpSpec.sig`
``call``                ``(op, cost, node, dest, callee, argregs[, w])``
``goto``                ``(op, cost, node, -1, edge[, w])``
``if``                  ``(op, cost, node, -1, rcond, tedge, fedge[, w])``
``return``              ``(op, cost, node, -1, rval_or_-1[, w])``
``fused-if``            ``(op, cost, node, dest, rx, ry, tedge, fedge, h, 2)``
``fused-pair``          ``(op, cost, node, dA, xA, yA, dB, xB, yB, h, 2)``
``fused-goto``          ``(op, cost, node, dA, xA, yA, edge, h, 2)``
``fused-triple``        ``(op, cost, node, dA, xA, yA, dB, xB, yB,
                        dC, xC, yC, h, 3)``
``fused2``              ``(op, cost, node, -1, tupleA, tupleB, h, 2)``
                        (the embedded second half may itself be a
                        terminator — decoding recurses)
``fused2-goto``         ``(op, cost, node, -1, tupleA, edge, h, 2)``
``quick-const``         ``(op, cost, node, dest, rx, const_value, 1)``
``quick-guard``         ``(op, cost, node, dest, rx, ry, xcode, generic, 1)``
======================  ====================================================

``sig`` characters (``base`` family, operands from slot 4): ``r`` a
register read, ``k`` a non-register literal operand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bytecode import (
    OP_ADD,
    OP_ARRAY_LENGTH,
    OP_ARRAY_LOAD,
    OP_ARRAY_STORE,
    OP_CALL,
    OP_GE,
    OP_GOTO,
    OP_IF,
    OP_LOAD_FIELD,
    OP_LOAD_GLOBAL,
    OP_NEG,
    OP_NEW,
    OP_NEW_ARRAY,
    OP_NOT,
    OP_RETURN,
    OP_STORE_FIELD,
    OP_STORE_GLOBAL,
    OPCODE_NAMES,
)

#: families whose opcodes may appear in the plain ``fn.code`` stream
BASE_FAMILIES = frozenset(("base", "call", "goto", "if", "return"))

#: families that end a basic block unconditionally ("fused2" is
#: *dynamic*: it terminates iff its embedded second half does)
TERMINATOR_FAMILIES = frozenset(("goto", "if", "return", "fused-if",
                                 "fused-goto", "fused2-goto"))


@dataclass(frozen=True)
class OpSpec:
    """Shape of one opcode's instruction tuple."""

    name: str
    family: str
    #: operand signature after the dest slot (``base`` family only)
    sig: str = ""
    #: required trailing step weight in the fast stream
    weight: int = 1
    #: constituent base opcodes: the exact unfused sequence for fused
    #: forms, the generic origin opcode(s) for quickened forms
    origin: tuple = ()

    @property
    def terminator(self) -> bool:
        return self.family in TERMINATOR_FAMILIES

    def code_length(self) -> int:
        """Expected tuple length in the plain ``fn.code`` stream."""
        if self.family == "base":
            return 4 + len(self.sig)
        return {"call": 6, "goto": 5, "if": 7, "return": 5}[self.family]

    def xcode_length(self) -> int:
        """Expected tuple length in the fused ``fn.xcode`` stream."""
        if self.family in BASE_FAMILIES:
            return self.code_length() + 1  # plain tuple + step weight
        return {
            "fused-if": 10,
            "fused-pair": 11,
            "fused-goto": 9,
            "fused-triple": 14,
            "fused2": 8,
            "fused2-goto": 8,
            "quick-const": 7,
            "quick-guard": 9,
        }[self.family]


#: opcode -> spec; covers every entry of ``machine.XHANDLERS`` once
#: :mod:`repro.vm` finished importing (the exhaustiveness test asserts
#: the two tables never drift apart)
OPCODE_SPECS: dict[int, OpSpec] = {}


def register_opspec(opcode: int, spec: OpSpec) -> int:
    """Record ``spec`` for ``opcode``; rejects double registration."""
    if opcode in OPCODE_SPECS:
        raise ValueError(
            f"opcode {opcode} already registered as "
            f"{OPCODE_SPECS[opcode].name!r}"
        )
    OPCODE_SPECS[opcode] = spec
    return opcode


def _base(opcode: int, family: str = "base", sig: str = "rr") -> None:
    register_opspec(opcode, OpSpec(OPCODE_NAMES[opcode], family, sig=sig))


# The 32 base opcodes.  Binary arithmetic and compares all read two
# registers; the rest are spelled out per layout in bytecode.py.
for _op in range(OP_ADD, OP_GE + 1):
    _base(_op)
_base(OP_NOT, sig="r")
_base(OP_NEG, sig="r")
_base(OP_NEW, sig="kk")
_base(OP_LOAD_FIELD, sig="rk")
_base(OP_STORE_FIELD, sig="rkr")
_base(OP_LOAD_GLOBAL, sig="k")
_base(OP_STORE_GLOBAL, sig="kr")
_base(OP_NEW_ARRAY, sig="rk")
_base(OP_ARRAY_LOAD, sig="rr")
_base(OP_ARRAY_STORE, sig="rrr")
_base(OP_ARRAY_LENGTH, sig="r")
_base(OP_CALL, family="call", sig="")
_base(OP_GOTO, family="goto", sig="")
_base(OP_IF, family="if", sig="")
_base(OP_RETURN, family="return", sig="")
del _op


__all__ = [
    "BASE_FAMILIES",
    "OPCODE_SPECS",
    "OpSpec",
    "TERMINATOR_FAMILIES",
    "register_opspec",
]
