"""Tests for the event/span tracer core."""

import time

from repro.obs.tracer import (
    NULL_TRACER,
    Event,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)


class TestSpans:
    def test_span_records_duration_and_order(self):
        tracer = Tracer()
        with tracer.span("phase", phase="outer"):
            time.sleep(0.001)
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event.kind == "span"
        assert event.dur is not None and event.dur >= 0.001
        assert event.attrs["phase"] == "outer"

    def test_spans_nest_correctly(self):
        tracer = Tracer()
        with tracer.span("phase", phase="outer"):
            with tracer.span("phase", phase="inner"):
                tracer.event("leaf")
            with tracer.span("phase", phase="second"):
                pass
        by_phase = {e.attrs.get("phase"): e for e in tracer.spans()}
        assert by_phase["outer"].depth == 0
        assert by_phase["inner"].depth == 1
        assert by_phase["second"].depth == 1
        leaf = tracer.named("leaf")[0]
        assert leaf.depth == 2
        # Start order preserved: outer first, then inner, then second.
        names = [e.attrs.get("phase") for e in tracer.spans()]
        assert names == ["outer", "inner", "second"]
        # Inner spans close before the outer one.
        outer, inner = by_phase["outer"], by_phase["inner"]
        assert inner.ts >= outer.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-6

    def test_span_yields_event_for_attrs(self):
        tracer = Tracer()
        with tracer.span("phase", phase="p") as event:
            event.attrs["nodes_delta"] = 7
        assert tracer.events[0].attrs["nodes_delta"] == 7

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("phase", phase="p"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.events[0].dur is not None
        assert tracer._depth == 0


class TestEventsAndCounters:
    def test_point_event(self):
        tracer = Tracer()
        event = tracer.event("dbds.decision", accepted=True)
        assert event in tracer.events
        assert event.kind == "event" and event.dur is None

    def test_counters_tally_even_when_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.count("dbds.duplications")
        tracer.count("dbds.duplications", 2)
        assert tracer.counter("dbds.duplications") == 3
        assert tracer.counter("never") == 0

    def test_disabled_tracer_records_no_events(self):
        tracer = Tracer(enabled=False)
        with tracer.span("phase", phase="p"):
            tracer.event("x")
        assert tracer.events == []


class TestNullTracer:
    def test_is_ambient_default(self):
        assert current_tracer() is NULL_TRACER

    def test_drops_everything(self):
        tracer = NullTracer()
        with tracer.span("phase", phase="p") as event:
            event.attrs["ok"] = 1  # writable throwaway
            tracer.event("x", a=1)
            tracer.count("c")
        assert tracer.events == []
        assert tracer.counters == {}

    def test_noop_overhead_negligible(self):
        tracer = NULL_TRACER
        start = time.perf_counter()
        for _ in range(10_000):
            with tracer.span("phase", phase="p"):
                pass
            tracer.count("c")
        elapsed = time.perf_counter() - start
        # Generous bound: 10k no-op spans must be far under a second.
        assert elapsed < 0.5
        assert tracer.events == [] and tracer.counters == {}


class TestNullParityAudit:
    """The null objects must shadow their live classes' whole surface.

    If a new recording entry point lands on Tracer (or MetricsRegistry)
    without a corresponding no-op guarantee, the process-wide singletons
    would silently accrue state across unrelated work.  This audit
    fails the moment the surfaces drift.
    """

    @staticmethod
    def public_api(cls) -> set[str]:
        return {
            name
            for name in dir(cls)
            if not name.startswith("_") and callable(getattr(cls, name))
        }

    def test_null_tracer_declares_no_extra_api(self):
        assert self.public_api(NullTracer) == self.public_api(Tracer)

    def test_whole_surface_stays_silent(self):
        tracer = NullTracer()
        with tracer.span("phase", phase="p") as event:
            event.attrs["x"] = 1
        tracer.event("e", a=1)
        tracer.count("c", 2)
        assert tracer.events == []
        assert tracer.counters == {}
        assert tracer.spans() == []
        assert tracer.named("e") == []
        assert tracer.counter("c") == 0

    def test_null_registry_mirrors_the_same_discipline(self):
        from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry

        assert self.public_api(NullMetricsRegistry) == self.public_api(
            MetricsRegistry
        )
        registry = NullMetricsRegistry()
        registry.inc("c", 2, label="x")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 0.5)
        snap = registry.snapshot()
        assert snap.counters == {}
        assert snap.gauges == {}
        assert snap.histograms == {}


class TestAmbientTracer:
    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_restored_after_exception(self):
        tracer = Tracer()
        try:
            with use_tracer(tracer):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is NULL_TRACER
