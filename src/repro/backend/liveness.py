"""Virtual-register liveness and live intervals for linear scan.

Classic backward dataflow over the LIR CFG, followed by interval
construction over a linear instruction numbering (blocks in id order,
which lowering assigns in reverse post order, so definitions come
before same-trace uses and loop bodies lie between their header's
definition points and back-edge uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from .lir import LirFunction, VReg


def _vreg_uses(instruction) -> set[VReg]:
    return {op for op in instruction.uses() if isinstance(op, VReg)}


def _vreg_defs(instruction) -> set[VReg]:
    return {op for op in instruction.defs() if isinstance(op, VReg)}


def compute_liveness(function: LirFunction) -> tuple[dict, dict]:
    """Per-block live-in / live-out sets of virtual registers."""
    blocks = function.block_order()
    live_in: dict[int, set[VReg]] = {b.id: set() for b in blocks}
    live_out: dict[int, set[VReg]] = {b.id: set() for b in blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out = set()
            for succ in block.successors:
                out |= live_in[succ]
            live = set(out)
            for ins in reversed(block.instructions):
                live -= _vreg_defs(ins)
                live |= _vreg_uses(ins)
            if out != live_out[block.id] or live != live_in[block.id]:
                live_out[block.id] = out
                live_in[block.id] = live
                changed = True
    return live_in, live_out


@dataclass
class LiveInterval:
    """Half-open [start, end] positions a virtual register is live."""

    vreg: VReg
    start: int
    end: int

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start <= other.end and other.start <= self.end

    def __repr__(self) -> str:
        return f"<{self.vreg!r}: {self.start}..{self.end}>"


def number_instructions(function: LirFunction) -> dict[int, tuple[int, int]]:
    """block id -> (first position, last position) in linear order."""
    spans: dict[int, tuple[int, int]] = {}
    position = 0
    for block in function.block_order():
        first = position
        position += len(block.instructions)
        spans[block.id] = (first, position - 1)
    return spans


def compute_intervals(function: LirFunction) -> list[LiveInterval]:
    """One conservative interval per virtual register.

    Live-in at a block start extends the interval to the block's first
    position; live-out extends it to the last — which covers values live
    across loop back edges.
    """
    live_in, live_out = compute_liveness(function)
    spans = number_instructions(function)
    starts: dict[VReg, int] = {}
    ends: dict[VReg, int] = {}

    def note(vreg: VReg, position: int) -> None:
        if vreg not in starts or position < starts[vreg]:
            starts[vreg] = position
        if vreg not in ends or position > ends[vreg]:
            ends[vreg] = position

    for vreg in function.param_regs:
        note(vreg, 0)

    position = 0
    for block in function.block_order():
        first, last = spans[block.id]
        for vreg in live_in[block.id]:
            note(vreg, first)
        for vreg in live_out[block.id]:
            note(vreg, last)
        for ins in block.instructions:
            for vreg in _vreg_uses(ins):
                note(vreg, position)
            for vreg in _vreg_defs(ins):
                note(vreg, position)
            position += 1

    return sorted(
        (LiveInterval(v, starts[v], ends[v]) for v in starts),
        key=lambda iv: (iv.start, iv.end, iv.vreg.id),
    )
