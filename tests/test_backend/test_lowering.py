"""Tests for IR → LIR lowering, especially parallel-move resolution."""

import pytest

from repro.backend.lir import Immediate, LirMove, VReg, fresh_vreg
from repro.backend.lowering import (
    lower_graph,
    lower_program,
    sequentialize_parallel_moves,
)
from repro.backend.machine import Machine
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter


def simulate_moves(moves, initial):
    """Run emitted moves sequentially; return final register file."""
    state = dict(initial)
    for move in moves:
        assert isinstance(move, LirMove)
        src = (
            move.src.value
            if isinstance(move.src, Immediate)
            else state[move.src]
        )
        state[move.dst] = src
    return state


class TestParallelMoves:
    def test_independent_moves(self):
        a, b, c, d = (fresh_vreg() for _ in range(4))
        moves = [(a, b), (c, d)]
        out = sequentialize_parallel_moves(moves)
        state = simulate_moves(out, {b: 1, d: 2})
        assert state[a] == 1 and state[c] == 2

    def test_chain_ordering(self):
        # a <- b, b <- c: must copy b before overwriting it.
        a, b, c = (fresh_vreg() for _ in range(3))
        out = sequentialize_parallel_moves([(a, b), (b, c)])
        state = simulate_moves(out, {b: 10, c: 20})
        assert state[a] == 10 and state[b] == 20

    def test_swap_cycle_broken_with_temp(self):
        a, b = fresh_vreg(), fresh_vreg()
        out = sequentialize_parallel_moves([(a, b), (b, a)])
        state = simulate_moves(out, {a: 1, b: 2})
        assert state[a] == 2 and state[b] == 1
        assert len(out) == 3  # temp + two moves

    def test_three_cycle(self):
        a, b, c = (fresh_vreg() for _ in range(3))
        out = sequentialize_parallel_moves([(a, b), (b, c), (c, a)])
        state = simulate_moves(out, {a: 1, b: 2, c: 3})
        assert (state[a], state[b], state[c]) == (2, 3, 1)

    def test_immediate_sources(self):
        a, b = fresh_vreg(), fresh_vreg()
        out = sequentialize_parallel_moves([(a, Immediate(5)), (b, a)])
        state = simulate_moves(out, {a: 1})
        assert state[b] == 1 and state[a] == 5

    def test_self_move_dropped(self):
        a = fresh_vreg()
        assert sequentialize_parallel_moves([(a, a)]) == []


class TestLowering:
    def test_every_node_kind_lowers(self):
        program = compile_source(
            """
class A { x: int; next: A; }
global g: int;
fn f(a: A, i: int, flag: bool) -> int {
  var arr: int[] = new int[4];
  arr[0] = i * 2 + (i / 3) - (i % 5);
  var b: A = new A { x = arr[0], next = a };
  g = b.x;
  if (!flag && a != null) { return 0 - g + len(arr); }
  var t: int = helper(i);
  return t ^ (i << 2) | (i >>> 1) & g;
}
fn helper(x: int) -> int { return x + 1; }
"""
        )
        lir = lower_program(program)
        assert set(lir.functions) == {"f", "helper"}
        assert lir.function("f").instruction_count() > 10

    def test_block_structure_mirrors_cfg(self):
        program = compile_source(
            "fn f(x: int) -> int { if (x > 0) { return 1; } return 2; }"
        )
        fn = lower_graph(program.function("f"))
        # entry + two branch targets
        assert len(fn.blocks) == 3
        entry = fn.blocks[fn.entry]
        assert entry.successors and len(entry.successors) == 2

    def test_predecessors_linked(self):
        program = compile_source(
            "fn f(n: int) -> int { var i: int = 0; while (i < n) { i = i + 1; } return i; }"
        )
        fn = lower_graph(program.function("f"))
        # The loop header has two predecessors (entry edge + back edge).
        headers = [b for b in fn.blocks.values() if len(b.predecessors) == 2]
        assert len(headers) == 1

    def test_phi_moves_on_predecessor_edges(self):
        program = compile_source(
            """
fn f(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 7; }
  return p;
}
"""
        )
        fn = lower_graph(program.function("f"))
        moves = [
            ins
            for b in fn.blocks.values()
            for ins in b.instructions
            if isinstance(ins, LirMove)
        ]
        # One move per predecessor edge of the merge.
        assert len(moves) == 2

    def test_loop_swap_pattern_executes_correctly(self):
        # Classic phi-swap: needs the parallel-move cycle breaker.
        program = compile_source(
            """
fn fib(n: int) -> int {
  var a: int = 0;
  var b: int = 1;
  var i: int = 0;
  while (i < n) {
    var t: int = a + b;
    a = b;
    b = t;
    i = i + 1;
  }
  return a;
}
"""
        )
        lir = lower_program(program)
        machine = Machine(lir)
        expected = Interpreter(program).run("fib", [20]).value
        assert machine.run("fib", [20]).value == expected
