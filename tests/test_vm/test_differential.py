"""Engine differential suite: the VM against the reference interpreter.

Every bundled example program and a corpus of seeded mutants (the
template-extraction mutation operators of :mod:`repro.analysis.progen`
applied to the examples) run on both engines after a full DBDS compile;
observable outcomes, trap messages and step counts must be identical.
"""

import pathlib

import pytest

from repro.analysis.progen import mutated_program
from repro.analysis.validate import SCREEN_STEP_BUDGET, _screen_mutant, validate_engines
from repro.costmodel.model import cycles_of
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter, observable_outcome
from repro.vm import VirtualMachine, translate_program

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").rglob("*.mini")
)
EXAMPLE_ARGS = [[0], [1], [4], [7]]

#: seeded mutants per corpus sweep — comfortably above the 50-mutant
#: floor even after step-budget screening skips a few
MUTANT_COUNT = 64
MUTANT_ARGS = [[0], [2], [5]]


def test_examples_present():
    assert EXAMPLES, "expected bundled .mini examples"


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_examples_identical_on_both_engines(path):
    result = validate_engines(path.read_text(), "main", EXAMPLE_ARGS)
    assert result.ok, "\n".join(r.format() for r in result.divergences)


@pytest.mark.parametrize("seed", range(MUTANT_COUNT))
def test_mutants_identical_on_both_engines(seed):
    corpus = [p.read_text() for p in EXAMPLES]
    mutant = mutated_program(seed, corpus, mutations=2)
    if not _screen_mutant(mutant.source, "main", MUTANT_ARGS, SCREEN_STEP_BUDGET):
        pytest.skip("mutant exceeds the screening step budget")
    result = validate_engines(mutant.source, "main", MUTANT_ARGS, seed=seed)
    assert result.ok, (
        f"[{mutant.base}: {', '.join(mutant.applied) or 'unchanged'}]\n"
        + "\n".join(r.format() for r in result.divergences)
    )


def test_cross_product_covers_every_engine():
    # validate_engines defaults to the full matrix: the reference
    # interpreter plus every VM engine, every pair compared.
    result = validate_engines(EXAMPLES[0].read_text(), "main", [[2]])
    assert result.ok
    assert set(result.configs) >= {
        "reference", "vm", "vm-nofuse", "closure", "megaunit", "tiered",
    }


#: seeded generator programs for the full-matrix sweep — whole programs
#: from the grammar generator, distinct from the example-derived mutants
GENERATED_COUNT = 32


@pytest.mark.parametrize("seed", range(GENERATED_COUNT))
def test_generated_programs_identical_on_every_engine(seed):
    from repro.analysis.progen import random_program

    source = random_program(seed * 7919 + 17)
    if not _screen_mutant(source, "main", MUTANT_ARGS, SCREEN_STEP_BUDGET):
        pytest.skip("generated program exceeds the screening step budget")
    result = validate_engines(source, "main", MUTANT_ARGS, seed=seed)
    assert result.ok, "\n".join(r.format() for r in result.divergences)


CALL_HEAVY = """
fn leaf(x: int) -> int { return x * 3 + 1; }
fn mid(x: int) -> int { return leaf(x) + leaf(x + 1); }
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) {
    acc = acc + mid(i);
    i = i + 1;
  }
  return acc;
}
"""


def test_budget_stops_identical_at_every_cap_across_engines():
    # Sweep every step cap over a call-heavy program so stops land
    # mid-call, at call boundaries and inside callees; every engine
    # must report the same BudgetExceeded message, steps and cycles.
    from repro.interp.interpreter import BudgetExceeded
    from repro.pipeline.compiler import ALL_ENGINES, compile_and_profile, make_engine
    from repro.pipeline.config import DBDS

    program, _ = compile_and_profile(CALL_HEAVY, "main", [[4]], DBDS)
    bytecode = translate_program(program)
    total = make_engine("vm", program, bytecode=bytecode).run("main", [4]).steps

    def stopped(engine, cap):
        runner = make_engine(
            engine, program, bytecode=bytecode, max_steps=cap
        )
        try:
            runner.run("main", [4])
            message = None
        except BudgetExceeded as exc:
            message = str(exc)
        return message, runner.state.steps, runner.state.cycles

    for cap in list(range(1, 40)) + list(range(40, total + 2, 7)):
        expected = stopped("reference", cap)
        for engine in ALL_ENGINES:
            if engine == "reference":
                continue
            assert stopped(engine, cap) == expected, (engine, cap)


def test_fuzz_engines_smoke_over_full_matrix():
    from repro.analysis.validate import fuzz_engines

    report = fuzz_engines(seed=1234, programs=6)
    assert report.ok, report.format()


def test_unoptimized_programs_also_agree():
    # The differential holds for raw front-end output too, not only for
    # the optimized pipeline product validate_engines exercises.
    for path in EXAMPLES:
        program = compile_source(path.read_text())
        reference = Interpreter(
            program, cycle_cost=cycles_of, terminator_cost=cycles_of
        )
        vm = VirtualMachine(translate_program(program), metered=True)
        for args in EXAMPLE_ARGS:
            reference.reset()
            vm.reset()
            ref = reference.run("main", list(args))
            out = vm.run("main", list(args))
            assert observable_outcome(ref, reference.state) == observable_outcome(
                out, vm.state
            )
            assert (ref.steps, ref.cycles) == (out.steps, out.cycles)
