"""The DBDS simulation tier (Section 4.1, Figures 2 and 3).

A depth-first traversal of the dominator tree carries the optimization
state (branch facts as refined stamps, plus straight-line memory state).
Whenever the traversal reaches a block ``p`` whose CFG successor ``m``
is a merge, it pauses and starts a *duplication simulation traversal*
(DST): the instructions of ``m`` are processed as if appended to ``p``,
with a **synonym map** translating each phi of ``m`` to its input along
the ``p`` edge.

During the DST the shared applicability checks fire exactly as they
would after a real duplication; their action steps return fresh
subgraphs that are *not* inserted — only measured against the node cost
model to produce a cycles-saved and code-size estimate per
predecessor-merge pair.  No IR is mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..costmodel.estimator import block_cycles
from ..costmodel.model import cycles_of, size_of
from ..ir.block import Block
from ..ir.cfgutils import reverse_post_order
from ..ir.graph import Graph, Program
from ..ir.nodes import (
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    LoadField,
    New,
    Phi,
    StoreField,
    Value,
)
from ..ir.ops import CmpOp
from ..ir.stamps import Stamp
from ..obs.tracer import current_tracer
from ..opts.base import OptimizationContext, Rewrite
from ..opts.canonicalize import canonicalize_instruction
from ..opts.condelim import FactScope, assume_condition
from ..opts.readelim import MemoryCache, ReadEliminationPhase
from ..opts.stampmath import compare_stamps


@dataclass
class SimulationResult:
    """Everything the trade-off tier needs about one candidate pair."""

    pred: Block
    merge: Block
    #: estimated cycles saved per execution of the pred→merge path
    benefit: float
    #: estimated code-size increase of performing the duplication
    cost: float
    #: relative execution probability of the predecessor (0..1]
    probability: float
    #: which optimizations fired, for reporting/debugging
    reasons: list[str] = field(default_factory=list)

    @property
    def weighted_benefit(self) -> float:
        return self.benefit * self.probability

    def __repr__(self) -> str:
        return (
            f"<SimResult {self.merge.name}->{self.pred.name} "
            f"benefit={self.benefit:.1f} cost={self.cost:.1f} "
            f"p={self.probability:.3f} {self.reasons}>"
        )


class SimulationContext(OptimizationContext):
    """Optimization context seen by ACs during a DST.

    Operand resolution follows the synonym map transitively; stamps come
    from the dominating branch facts of the paused traversal.
    """

    def __init__(self, graph: Graph, facts: FactScope) -> None:
        super().__init__(graph)
        self.facts = facts
        self.synonyms: dict[Value, Value] = {}

    def resolve(self, value: Value) -> Value:
        seen = 0
        while value in self.synonyms:
            value = self.synonyms[value]
            seen += 1
            if seen > 1000:  # pragma: no cover - cycle guard
                raise AssertionError("synonym cycle")
        return value

    def stamp(self, value: Value) -> Stamp:
        return self.facts.stamp_of(self.resolve(value))


class SimulationTier:
    """Runs Algorithm 2's simulation loop over one compilation unit."""

    def __init__(self, graph: Graph, program: Optional[Program] = None) -> None:
        self.graph = graph
        self.program = program
        self.dom = graph.dominator_tree()
        self.loops = graph.loop_forest()
        self.frequencies = graph.block_frequencies()
        self._readelim = ReadEliminationPhase(program)
        self._out_caches = self._compute_memory_states()

    # ------------------------------------------------------------------
    # Straight-line memory state (read-elimination view), non-mutating.
    # ------------------------------------------------------------------
    def _compute_memory_states(self) -> dict[Block, MemoryCache]:
        helper = self._readelim
        out: dict[Block, MemoryCache] = {}
        in_state: dict[Block, MemoryCache] = {}
        for block in reverse_post_order(self.graph):
            cache = in_state.pop(block, None)
            if cache is None or block.is_merge():
                cache = MemoryCache()
            for ins in block.instructions:
                # _transfer with replacement ignored: only state matters.
                helper._transfer(ins, cache)
            out[block] = cache
            for succ in block.successors:
                if len(succ.predecessors) == 1:
                    in_state[succ] = cache.copy()
        return out

    # ------------------------------------------------------------------
    def run(self) -> list[SimulationResult]:
        """Simulate every candidate pair; returns unsorted results."""
        tracer = current_tracer()
        results: list[SimulationResult] = []
        facts = FactScope()
        ENTER, LEAVE = 0, 1
        stack: list[tuple[int, Block]] = [(ENTER, self.graph.entry)]
        while stack:
            action, block = stack.pop()
            if action == LEAVE:
                facts.pop_scope()
                continue
            facts.push_scope()
            stack.append((LEAVE, block))
            self._apply_edge_facts(block, facts)
            # Pause: run a DST for each merge successor of this block.
            for merge in block.successors:
                if merge.is_merge() and not self.loops.is_loop_header(merge):
                    if isinstance(block.terminator, Goto):
                        result = self._simulate_pair(block, merge, facts)
                        if result is not None:
                            results.append(result)
                            if tracer.enabled:
                                tracer.event(
                                    "dbds.candidate",
                                    graph=self.graph.name,
                                    merge=result.merge.name,
                                    pred=result.pred.name,
                                    benefit=result.benefit,
                                    cost=result.cost,
                                    probability=result.probability,
                                    reasons=sorted(set(result.reasons)),
                                )
            for child in reversed(self.dom.dominator_tree_children(block)):
                stack.append((ENTER, child))
        return results

    def _apply_edge_facts(self, block: Block, facts: FactScope) -> None:
        if len(block.predecessors) != 1:
            return
        pred = block.predecessors[0]
        if self.dom.immediate_dominator(block) is not pred:
            return
        term = pred.terminator
        if isinstance(term, If):
            assume_condition(facts, term.condition, block is term.true_target)

    # ------------------------------------------------------------------
    # The duplication simulation traversal for one pair.
    # ------------------------------------------------------------------
    def _simulate_pair(
        self, pred: Block, merge: Block, facts: FactScope
    ) -> Optional[SimulationResult]:
        ctx = SimulationContext(self.graph, facts)
        pred_index = merge.predecessor_index(pred)
        for phi in merge.phis:
            ctx.synonyms[phi] = phi.input(pred_index)

        cache = self._out_caches[pred].copy()
        created: list[Instruction] = []
        cycles_saved = 0.0
        size_saved = 0.0
        reasons: list[str] = []

        try:
            # Phi-escape (PEA) opportunities: an allocation reaching this
            # pair's edge that only escapes through the phi.
            for phi in merge.phis:
                saving = self._pea_opportunity(phi, ctx.synonyms[phi], merge)
                if saving > 0:
                    cycles_saved += saving
                    reasons.append("partial-escape-analysis")

            for ins in merge.instructions:
                rewrite = self._simulate_instruction(ins, ctx, cache, created)
                if rewrite is None:
                    continue
                cycles_saved += rewrite.cycles_delta(ins)
                size_saved += rewrite.size_delta(ins)
                reasons.append(rewrite.reason)
                if rewrite.replacement is not None:
                    ctx.synonyms[ins] = rewrite.replacement
                created.extend(rewrite.new_instructions)

            # Terminator: a decided If is a conditional-elimination win —
            # the duplicated copy drops the branch and the untaken side.
            term = merge.terminator
            lookahead: list[tuple[Block, float, Optional[tuple[Value, bool]]]] = []
            if isinstance(term, If):
                outcome = self._decide(term.condition, ctx)
                if outcome is not None:
                    dead = term.false_target if outcome else term.true_target
                    taken = term.true_target if outcome else term.false_target
                    cycles_saved += cycles_of(term) + block_cycles(dead)
                    size_saved += size_of(term)
                    reasons.append("conditional-elimination")
                    lookahead.append((taken, 1.0, None))
                else:
                    condition = ctx.resolve(term.condition)
                    lookahead.append(
                        (term.true_target, term.true_probability, (condition, True))
                    )
                    lookahead.append(
                        (
                            term.false_target,
                            1.0 - term.true_probability,
                            (condition, False),
                        )
                    )
            elif isinstance(term, Goto):
                lookahead.append((term.target, 1.0, None))

            # The paper's DST runs "until the first instruction after the
            # next merge or split instruction": peek one block further to
            # value the opportunities a second DBDS iteration would
            # cash in (merge targets would need fresh synonyms — stop).
            for target, weight, assumption in lookahead:
                if target.is_merge() or weight <= 0.0:
                    continue
                ctx.facts.push_scope()
                if assumption is not None:
                    assume_condition(ctx.facts, assumption[0], assumption[1])
                branch_cache = cache.copy()
                for ins in target.instructions:
                    rewrite = self._simulate_instruction(
                        ins, ctx, branch_cache, created
                    )
                    if rewrite is None:
                        continue
                    cycles_saved += weight * rewrite.cycles_delta(ins)
                    reasons.append(f"lookahead:{rewrite.reason}")
                    if rewrite.replacement is not None:
                        ctx.synonyms[ins] = rewrite.replacement
                    created.extend(rewrite.new_instructions)
                ctx.facts.pop_scope()
        finally:
            # Action-step subgraphs were never inserted: release the
            # operand uses they registered so the real IR stays clean.
            for node in created:
                node.drop_inputs()

        duplication_size = sum(size_of(i) for i in merge.instructions) + size_of(
            merge.terminator
        )
        cost = max(duplication_size - size_saved, 0.0)
        return SimulationResult(
            pred=pred,
            merge=merge,
            benefit=cycles_saved,
            cost=cost,
            probability=self.frequencies.relative(pred),
            reasons=reasons,
        )

    def _simulate_instruction(
        self,
        ins: Instruction,
        ctx: SimulationContext,
        cache: MemoryCache,
        created: list[Instruction],
    ) -> Optional[Rewrite]:
        # Canonicalization ACs (constant folding, strength reduction, …).
        rewrite = canonicalize_instruction(ins, ctx)
        if rewrite is not None:
            return rewrite
        # Read-elimination AC over the synonym-resolved memory state.
        if isinstance(ins, LoadField):
            known = cache.read_field(ctx.resolve(ins.obj), ins.field)
            if known is not None:
                return Rewrite.redundant(known, "read-elimination")
            cache.fields[(ctx.resolve(ins.obj), ins.field)] = ins
            return None
        resolved = self._resolved_view(ins, ctx, created)
        replacement = self._readelim._transfer(resolved, cache)
        if replacement is not None:
            return Rewrite.redundant(replacement, "read-elimination")
        return None

    def _resolved_view(
        self, ins: Instruction, ctx: SimulationContext, created: list[Instruction]
    ) -> Instruction:
        """An operand-resolved copy of ``ins`` for state transfer.

        Memory-cache keys must be in the paused traversal's value space,
        so stores/loads are rekeyed through the synonym map.  The
        temporary clone is tracked for use-list cleanup.
        """
        from ..ir.copy import clone_instruction

        if any(operand in ctx.synonyms for operand in ins.inputs):
            clone = clone_instruction(ins, ctx.resolve)
            created.append(clone)
            return clone
        return ins

    # ------------------------------------------------------------------
    def _decide(self, condition: Value, ctx: SimulationContext) -> Optional[bool]:
        known = ctx.constant_value(condition)
        if known is not None:
            return bool(known[0])
        resolved = ctx.resolve(condition)
        if isinstance(resolved, Compare):
            return compare_stamps(
                resolved.op, ctx.stamp(resolved.x), ctx.stamp(resolved.y)
            )
        return None

    def _pea_opportunity(self, phi: Phi, specialized: Value, merge: Block) -> float:
        """Cycles saved when duplication un-escapes an allocation.

        Fires when the value flowing into the phi from this predecessor
        is an allocation whose only other uses are field accesses, and
        the phi itself is only used for field accesses inside the merge
        (deeper uses would re-escape through repair phis).
        """
        alloc = specialized
        if not isinstance(alloc, New):
            return 0.0
        for user in alloc.uses:
            if user is phi:
                continue
            if isinstance(user, (LoadField, StoreField)) and user.obj is alloc:
                if isinstance(user, StoreField) and user.value is alloc:
                    return 0.0
                continue
            return 0.0
        saving = cycles_of(alloc)
        for user in phi.uses:
            if isinstance(user, LoadField) and user.obj is phi and user.block is merge:
                saving += cycles_of(user)
            elif (
                isinstance(user, StoreField)
                and user.obj is phi
                and user.value is not phi
                and user.block is merge
            ):
                saving += cycles_of(user)
            else:
                return 0.0
        return saving
