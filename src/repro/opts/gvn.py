"""Global value numbering over the dominator tree.

Pure instructions (arithmetic, comparisons, boolean/arithmetic negation)
with identical operation and operands compute identical results, so a
dominated occurrence can reuse the dominating one.  Trapping arithmetic
(div/mod) is included: with identical operands the dominating instance
traps first or produces the same value, either way the dominated copy is
redundant.

Graal performs this continuously through its canonicalizer framework;
here it is a standalone phase run in the cleanup pipeline.  It also
matters to DBDS evaluation hygiene: tail duplication introduces clones,
and value numbering (like read elimination) is what collapses clones
that turned out identical.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.nodes import ArithOp, Compare, Instruction, Neg, Not, Phi, Value
from .base import Phase


def _value_key(ins: Instruction):
    """Hashable structural identity of a numberable instruction."""
    if isinstance(ins, ArithOp):
        ids = (ins.x.id, ins.y.id)
        if ins.op.commutative:
            ids = tuple(sorted(ids))
        return ("arith", ins.op, ids)
    if isinstance(ins, Compare):
        return ("cmp", ins.op, (ins.x.id, ins.y.id))
    if isinstance(ins, Not):
        return ("not", ins.input(0).id)
    if isinstance(ins, Neg):
        return ("neg", ins.input(0).id)
    return None


class GlobalValueNumberingPhase(Phase):
    """Dominator-tree-scoped common-subexpression elimination."""

    name = "global-value-numbering"

    def run(self, graph: Graph) -> int:
        dom = graph.dominator_tree()
        available: dict[object, Value] = {}
        eliminated = 0

        ENTER, LEAVE = 0, 1
        stack: list[tuple[int, object]] = [(ENTER, graph.entry)]
        scopes: list[list[object]] = []
        while stack:
            action, item = stack.pop()
            if action == LEAVE:
                for key in scopes.pop():
                    del available[key]
                continue
            block = item
            introduced: list[object] = []
            scopes.append(introduced)
            stack.append((LEAVE, block))
            for ins in list(block.instructions):
                key = _value_key(ins)
                if key is None:
                    continue
                existing = available.get(key)
                if existing is not None:
                    ins.replace_all_uses(existing)
                    block.remove_instruction(ins)
                    eliminated += 1
                else:
                    available[key] = ins
                    introduced.append(key)
            for child in reversed(dom.dominator_tree_children(block)):
                stack.append((ENTER, child))
        return eliminated
