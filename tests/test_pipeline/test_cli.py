"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = """
fn foo(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 0; }
  return 2 + p;
}
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) { acc = acc + foo(i - 3); i = i + 1; }
  return acc;
}
"""

TRAPPING = """
fn main(n: int) -> int { return 10 / n; }
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mini"
    path.write_text(PROGRAM)
    return path


class TestRun:
    def test_run_prints_result(self, source_file, capsys):
        code = main(["run", str(source_file), "--args", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "result" in out and "176" in out
        assert "simulated cycles" in out

    def test_run_all_configs(self, source_file, capsys):
        for config in ("baseline", "dbds", "dupalot", "backtracking", "path-dbds"):
            code = main(["run", str(source_file), "--args", "20", "--config", config])
            assert code == 0
            assert "176" in capsys.readouterr().out

    def test_trap_reported(self, tmp_path, capsys):
        path = tmp_path / "trap.mini"
        path.write_text(TRAPPING)
        code = main(["run", str(path), "--args", "0"])
        assert code == 1
        assert "trap" in capsys.readouterr().err

    def test_custom_entry(self, source_file, capsys):
        code = main(["run", str(source_file), "--entry", "foo", "--args", "5"])
        assert code == 0
        assert "7" in capsys.readouterr().out


class TestCompile:
    def test_metrics_table(self, source_file, capsys):
        code = main(["compile", str(source_file), "--config", "dbds"])
        assert code == 0
        out = capsys.readouterr().out
        assert "foo" in out and "main" in out and "size" in out

    def test_dump_prints_ir(self, source_file, capsys):
        code = main(["compile", str(source_file), "--dump"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fn main" in out and "entry:" in out


class TestBench:
    def test_bench_suite_table(self, capsys, monkeypatch):
        # Shrink the suite for test speed.
        import repro.bench.workloads.suites as suites
        import dataclasses

        tiny = dataclasses.replace(
            suites.MICRO, benchmark_names=suites.MICRO.benchmark_names[:1]
        )
        monkeypatch.setitem(suites.ALL_SUITES, "micro", tiny)
        code = main(["bench", "--suite", "micro"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Geometric mean" in out


class TestObservabilityFlags:
    def test_compile_json(self, source_file, capsys):
        import json

        code = main(["compile", str(source_file), "--config", "dbds", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["config"] == "dbds"
        assert {u["function"] for u in report["units"]} == {"foo", "main"}
        assert report["totals"]["compile_time"] > 0

    def test_compile_trace_out_valid_jsonl(self, source_file, tmp_path, capsys):
        from repro.obs import read_jsonl, validate_trace_file

        out = tmp_path / "trace.jsonl"
        code = main(
            ["compile", str(source_file), "--config", "dbds", "--trace-out", str(out)]
        )
        assert code == 0
        assert validate_trace_file(out) > 0
        events = read_jsonl(out)
        phases = {
            e.attrs.get("phase") for e in events if e.name == "phase"
        }
        assert "dbds" in phases and "canonicalize" in phases
        decisions = [e for e in events if e.name == "dbds.decision"]
        assert decisions
        assert all("benefit" in e.attrs for e in decisions)

    def test_run_profile_compile(self, source_file, capsys):
        code = main(["run", str(source_file), "--args", "20", "--profile-compile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "176" in out and "compile profile" in out

    def test_trace_verb(self, source_file, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["trace", str(source_file), "--decisions", "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "compile profile" in text and "DBDS decisions" in text
        assert out.exists()

    def test_bench_trace_out_json(self, tmp_path, capsys, monkeypatch):
        import dataclasses
        import json

        import repro.bench.workloads.suites as suites

        tiny = dataclasses.replace(
            suites.MICRO, benchmark_names=suites.MICRO.benchmark_names[:1]
        )
        monkeypatch.setitem(suites.ALL_SUITES, "micro", tiny)
        out = tmp_path / "suite.json"
        code = main(["bench", "--suite", "micro", "--trace-out", str(out)])
        assert code == 0
        assert "Compile-time breakdown by phase" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["suite"] == "micro"
        assert data["rows"][0]["configs"]["dbds"]["phase_times"]


class TestArgparse:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_config_rejected(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", str(source_file), "--config", "nonsense"])


class TestWorkloadCommand:
    def test_prints_source(self, capsys):
        code = main(["workload", "--suite", "micro", "--name", "akkaPP"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fn main" in out and "micro/akkaPP" in out

    def test_default_name(self, capsys):
        assert main(["workload", "--suite", "octane"]) == 0
        assert "octane/box2d" in capsys.readouterr().out

    def test_unknown_name_rejected(self, capsys):
        assert main(["workload", "--suite", "micro", "--name", "nope"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err
