"""Low-level IR (LIR): virtual-register instructions.

The paper's system overview (Section 5.1) lowers the high-level IR
"into a platform specific version on which additional optimizations and
register allocation are done" before machine code is emitted.  This
package reproduces that back end in miniature: SSA graphs are lowered
to LIR over virtual registers (phis become parallel moves on the
incoming edges), a linear-scan allocator maps virtual registers to a
finite register file plus stack slots, and the result can be *executed*
(:mod:`repro.backend.machine`) and *sized* (:mod:`repro.backend.codesize`).

Operands are virtual registers or immediates before allocation and
physical registers / stack slots after; instructions never change shape
— spilled values are addressed directly (a CISC-style memory operand),
which keeps the executor simple while still making register pressure
cost code size.  See DESIGN.md.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from ..ir.ops import BinOp, CmpOp
from ..ir.types import Type

_vreg_ids = itertools.count()


@dataclass(frozen=True)
class VReg:
    """A virtual register (pre-allocation operand)."""

    id: int
    hint: str = ""

    def __repr__(self) -> str:
        return f"v{self.id}" + (f"({self.hint})" if self.hint else "")


def fresh_vreg(hint: str = "") -> VReg:
    return VReg(next(_vreg_ids), hint)


@dataclass(frozen=True)
class Immediate:
    """A literal operand (int, bool or None)."""

    value: object

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class PReg:
    """A physical register after allocation."""

    index: int

    def __repr__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class StackSlot:
    """A spill slot in the frame after allocation."""

    index: int

    def __repr__(self) -> str:
        return f"[sp+{self.index}]"


Operand = Union[VReg, Immediate, PReg, StackSlot]
Location = Union[PReg, StackSlot]


class LirInstruction:
    """Base class; subclasses declare used and defined operands."""

    def uses(self) -> list[Operand]:
        return []

    def defs(self) -> list[Operand]:
        return []

    def replace_operands(self, mapping: dict[VReg, Location]) -> None:
        """Rewrite virtual registers to allocated locations in place."""
        for name in self._operand_fields():
            value = getattr(self, name)
            if isinstance(value, VReg):
                setattr(self, name, mapping[value])
            elif isinstance(value, list):
                setattr(
                    self,
                    name,
                    [mapping[v] if isinstance(v, VReg) else v for v in value],
                )

    def _operand_fields(self) -> list[str]:
        raise NotImplementedError

    def describe(self) -> str:
        return repr(self)


@dataclass
class LirMove(LirInstruction):
    dst: Operand
    src: Operand

    def uses(self):
        return [self.src]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "src"]

    def __repr__(self):
        return f"mov  {self.dst!r} <- {self.src!r}"


@dataclass
class LirBinOp(LirInstruction):
    op: BinOp
    dst: Operand
    lhs: Operand
    rhs: Operand

    def uses(self):
        return [self.lhs, self.rhs]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "lhs", "rhs"]

    def __repr__(self):
        return f"{self.op.name.lower():<4s} {self.dst!r} <- {self.lhs!r}, {self.rhs!r}"


@dataclass
class LirCmp(LirInstruction):
    op: CmpOp
    dst: Operand
    lhs: Operand
    rhs: Operand

    def uses(self):
        return [self.lhs, self.rhs]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "lhs", "rhs"]

    def __repr__(self):
        return f"cmp{self.op.name.lower():<3s} {self.dst!r} <- {self.lhs!r}, {self.rhs!r}"


@dataclass
class LirNot(LirInstruction):
    dst: Operand
    src: Operand

    def uses(self):
        return [self.src]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "src"]

    def __repr__(self):
        return f"not  {self.dst!r} <- {self.src!r}"


@dataclass
class LirNeg(LirInstruction):
    dst: Operand
    src: Operand

    def uses(self):
        return [self.src]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "src"]

    def __repr__(self):
        return f"neg  {self.dst!r} <- {self.src!r}"


@dataclass
class LirNewObject(LirInstruction):
    dst: Operand
    class_name: str

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst"]

    def __repr__(self):
        return f"new  {self.dst!r} <- {self.class_name}"


@dataclass
class LirLoadField(LirInstruction):
    dst: Operand
    obj: Operand
    field_name: str

    def uses(self):
        return [self.obj]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "obj"]

    def __repr__(self):
        return f"ldf  {self.dst!r} <- {self.obj!r}.{self.field_name}"


@dataclass
class LirStoreField(LirInstruction):
    obj: Operand
    field_name: str
    src: Operand

    def uses(self):
        return [self.obj, self.src]

    def _operand_fields(self):
        return ["obj", "src"]

    def __repr__(self):
        return f"stf  {self.obj!r}.{self.field_name} <- {self.src!r}"


@dataclass
class LirLoadGlobal(LirInstruction):
    dst: Operand
    global_name: str

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst"]

    def __repr__(self):
        return f"ldg  {self.dst!r} <- @{self.global_name}"


@dataclass
class LirStoreGlobal(LirInstruction):
    global_name: str
    src: Operand

    def uses(self):
        return [self.src]

    def _operand_fields(self):
        return ["src"]

    def __repr__(self):
        return f"stg  @{self.global_name} <- {self.src!r}"


@dataclass
class LirNewArray(LirInstruction):
    dst: Operand
    element_type: Type
    length: Operand

    def uses(self):
        return [self.length]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "length"]

    def __repr__(self):
        return f"newa {self.dst!r} <- {self.element_type!r}[{self.length!r}]"


@dataclass
class LirArrayLoad(LirInstruction):
    dst: Operand
    array: Operand
    index: Operand

    def uses(self):
        return [self.array, self.index]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "array", "index"]

    def __repr__(self):
        return f"lda  {self.dst!r} <- {self.array!r}[{self.index!r}]"


@dataclass
class LirArrayStore(LirInstruction):
    array: Operand
    index: Operand
    src: Operand

    def uses(self):
        return [self.array, self.index, self.src]

    def _operand_fields(self):
        return ["array", "index", "src"]

    def __repr__(self):
        return f"sta  {self.array!r}[{self.index!r}] <- {self.src!r}"


@dataclass
class LirArrayLength(LirInstruction):
    dst: Operand
    array: Operand

    def uses(self):
        return [self.array]

    def defs(self):
        return [self.dst]

    def _operand_fields(self):
        return ["dst", "array"]

    def __repr__(self):
        return f"len  {self.dst!r} <- {self.array!r}"


@dataclass
class LirCall(LirInstruction):
    dst: Optional[Operand]
    callee: str
    args: list[Operand] = field(default_factory=list)

    def uses(self):
        return list(self.args)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def _operand_fields(self):
        return ["dst", "args"]

    def replace_operands(self, mapping):
        if isinstance(self.dst, VReg):
            self.dst = mapping[self.dst]
        self.args = [
            mapping[a] if isinstance(a, VReg) else a for a in self.args
        ]

    def __repr__(self):
        target = f"{self.dst!r} <- " if self.dst is not None else ""
        return f"call {target}{self.callee}({', '.join(map(repr, self.args))})"


# ----------------------------------------------------------------------
# Terminators
# ----------------------------------------------------------------------
@dataclass
class LirJump(LirInstruction):
    target: int  # LIR block id

    def _operand_fields(self):
        return []

    def __repr__(self):
        return f"jmp  L{self.target}"


@dataclass
class LirBranch(LirInstruction):
    condition: Operand
    true_target: int
    false_target: int

    def uses(self):
        return [self.condition]

    def _operand_fields(self):
        return ["condition"]

    def __repr__(self):
        return f"br   {self.condition!r} ? L{self.true_target} : L{self.false_target}"


@dataclass
class LirReturn(LirInstruction):
    src: Optional[Operand] = None

    def uses(self):
        return [self.src] if self.src is not None else []

    def _operand_fields(self):
        return ["src"] if self.src is not None else []

    def replace_operands(self, mapping):
        if isinstance(self.src, VReg):
            self.src = mapping[self.src]

    def __repr__(self):
        return f"ret  {self.src!r}" if self.src is not None else "ret"


# ----------------------------------------------------------------------
# Containers
# ----------------------------------------------------------------------
@dataclass
class LirBlock:
    """A LIR basic block (instructions end with a terminator)."""

    id: int
    instructions: list[LirInstruction] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    @property
    def terminator(self) -> LirInstruction:
        return self.instructions[-1]

    def describe(self) -> str:
        body = "\n".join(f"  {ins!r}" for ins in self.instructions)
        return f"L{self.id}:\n{body}"


@dataclass
class LirFunction:
    """A lowered function: LIR blocks plus frame information."""

    name: str
    #: virtual registers holding the parameters on entry
    param_regs: list[VReg]
    blocks: dict[int, LirBlock] = field(default_factory=dict)
    entry: int = 0
    #: filled by the register allocator
    frame_slots: int = 0
    register_count: int = 0

    def block_order(self) -> list[LirBlock]:
        return [self.blocks[block_id] for block_id in sorted(self.blocks)]

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks.values())

    def describe(self) -> str:
        header = f"lir {self.name}({', '.join(map(repr, self.param_regs))})"
        return header + "\n" + "\n".join(b.describe() for b in self.block_order())


@dataclass
class LirProgram:
    """All lowered functions plus the source program's class table."""

    functions: dict[str, LirFunction] = field(default_factory=dict)
    class_table: object = None
    globals: dict[str, Type] = field(default_factory=dict)

    def function(self, name: str) -> LirFunction:
        return self.functions[name]
