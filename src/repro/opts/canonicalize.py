"""Canonicalization: constant folding, algebraic simplification and
strength reduction as applicability checks + action steps.

This reproduces Graal's ``Canonicalizable`` interface, which the paper
extends into ACs (Section 5.2, "Applicability Checks in Graal").  The
single entry point :func:`canonicalize_instruction` is shared verbatim
between the real phase below and the DBDS simulation tier.
"""

from __future__ import annotations

from typing import Optional

from ..ir.cfgutils import canonical_cfg_cleanup
from ..ir.graph import Graph
from ..ir.nodes import (
    ArithOp,
    ArrayLength,
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    Neg,
    NewArray,
    Not,
    Phi,
    Value,
)
from ..ir.ops import BinOp, CmpOp, EvaluationTrap, eval_binop, eval_cmp
from ..ir.stamps import BoolStamp, IntStamp, ObjectStamp
from .base import OptimizationContext, Phase, Rewrite
from .stampmath import compare_stamps, power_of_two_exponent


def canonicalize_instruction(
    ins: Instruction, ctx: OptimizationContext
) -> Optional[Rewrite]:
    """AC + action step for one instruction; ``None`` when nothing fires."""
    if isinstance(ins, ArithOp):
        return _canonicalize_arith(ins, ctx)
    if isinstance(ins, Compare):
        return _canonicalize_compare(ins, ctx)
    if isinstance(ins, Not):
        return _canonicalize_not(ins, ctx)
    if isinstance(ins, Neg):
        return _canonicalize_neg(ins, ctx)
    if isinstance(ins, ArrayLength):
        return _canonicalize_array_length(ins, ctx)
    return None


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def _canonicalize_arith(ins: ArithOp, ctx: OptimizationContext) -> Optional[Rewrite]:
    graph = ctx.graph
    x, y = ctx.resolve(ins.x), ctx.resolve(ins.y)
    cx, cy = ctx.constant_value(ins.x), ctx.constant_value(ins.y)

    # Constant folding — the CF opportunity of Figure 1.
    if cx is not None and cy is not None:
        try:
            folded = eval_binop(ins.op, cx[0], cy[0])
        except EvaluationTrap:
            return None  # division by a constant zero must still trap
        return Rewrite.redundant(graph.const_int(folded), "constant-fold")

    # Normalize constant to the right for commutative ops.
    if ins.op.commutative and cx is not None and cy is None:
        x, y = y, x
        cx, cy = cy, cx

    if cy is not None:
        rewrite = _arith_identity_with_constant(ins, x, cy[0], ctx)
        if rewrite is not None:
            return rewrite
        rewrite = _reassociate_constant(ins, x, cy[0], ctx)
        if rewrite is not None:
            return rewrite

    # x - x == 0, x ^ x == 0, x & x == x, x | x == x
    if x is y:
        if ins.op in (BinOp.SUB, BinOp.XOR):
            return Rewrite.redundant(graph.const_int(0), "self-cancel")
        if ins.op in (BinOp.AND, BinOp.OR):
            return Rewrite.redundant(x, "self-identity")
    return None


def _arith_identity_with_constant(
    ins: ArithOp, x: Value, c: int, ctx: OptimizationContext
) -> Optional[Rewrite]:
    graph = ctx.graph
    op = ins.op
    if op in (BinOp.ADD, BinOp.SUB, BinOp.OR, BinOp.XOR, BinOp.SHL, BinOp.SHR, BinOp.USHR):
        if c == 0:
            return Rewrite.redundant(x, "identity-zero")
    if op is BinOp.AND:
        if c == 0:
            return Rewrite.redundant(graph.const_int(0), "and-zero")
        if c == -1:
            return Rewrite.redundant(x, "and-ones")
    if op is BinOp.MUL:
        if c == 0:
            return Rewrite.redundant(graph.const_int(0), "mul-zero")
        if c == 1:
            return Rewrite.redundant(x, "mul-one")
        k = power_of_two_exponent(c)
        if k is not None:
            shift = ArithOp(BinOp.SHL, x, graph.const_int(k))
            return Rewrite.with_new([shift], "strength-reduce-mul")
    if op is BinOp.DIV:
        if c == 1:
            return Rewrite.redundant(x, "div-one")
        k = power_of_two_exponent(c)
        if k is not None:
            stamp = ctx.stamp(ins.x)
            if isinstance(stamp, IntStamp) and stamp.lo >= 0:
                # Figure 3's Div → Shift: exact for non-negative x.
                shift = ArithOp(BinOp.SHR, x, graph.const_int(k))
                return Rewrite.with_new([shift], "strength-reduce-div")
            # Signed division by 2^k needs the rounding fix-up
            # (x + ((x >> 63) >>> (64-k))) >> k — still far cheaper
            # than a hardware divide.
            sign = ArithOp(BinOp.SHR, x, graph.const_int(63))
            bias = ArithOp(BinOp.USHR, sign, graph.const_int(64 - k))
            adjusted = ArithOp(BinOp.ADD, x, bias)
            shift = ArithOp(BinOp.SHR, adjusted, graph.const_int(k))
            return Rewrite.with_new([sign, bias, adjusted, shift], "strength-reduce-div-signed")
    if op is BinOp.MOD:
        if c == 1:
            return Rewrite.redundant(graph.const_int(0), "mod-one")
        k = power_of_two_exponent(c)
        if k is not None:
            stamp = ctx.stamp(ins.x)
            if isinstance(stamp, IntStamp) and stamp.lo >= 0:
                mask = ArithOp(BinOp.AND, x, graph.const_int(c - 1))
                return Rewrite.with_new([mask], "strength-reduce-mod")
    return None


def _reassociate_constant(
    ins: ArithOp, x: Value, c: int, ctx: OptimizationContext
) -> Optional[Rewrite]:
    """``(x OP c1) OP c2 -> x OP (c1 OP c2)`` for ADD/MUL/AND/OR/XOR.

    Two's-complement add and mul are associative even under wrapping,
    so folding the constants is exact; it also exposes the inner value
    to further identities and lets DCE drop the inner operation.
    """
    op = ins.op
    if op not in (BinOp.ADD, BinOp.MUL, BinOp.AND, BinOp.OR, BinOp.XOR):
        return None
    if not isinstance(x, ArithOp) or x.op is not op:
        return None
    inner_const = ctx.constant_value(x.y)
    if inner_const is None:
        return None
    folded = eval_binop(op, inner_const[0], c)
    combined = ArithOp(op, ctx.resolve(x.x), ctx.graph.const_int(folded))
    return Rewrite.with_new([combined], "reassociate-constants")


# ----------------------------------------------------------------------
# Comparisons / booleans
# ----------------------------------------------------------------------
def _canonicalize_compare(ins: Compare, ctx: OptimizationContext) -> Optional[Rewrite]:
    graph = ctx.graph
    x, y = ctx.resolve(ins.x), ctx.resolve(ins.y)
    cx, cy = ctx.constant_value(ins.x), ctx.constant_value(ins.y)

    if cx is not None and cy is not None:
        return Rewrite.redundant(
            graph.const_bool(eval_cmp(ins.op, cx[0], cy[0])), "constant-fold"
        )

    sx, sy = ctx.stamp(ins.x), ctx.stamp(ins.y)
    outcome = compare_stamps(ins.op, sx, sy)
    if outcome is not None:
        return Rewrite.redundant(graph.const_bool(outcome), "stamp-fold")

    # Normalize constants to the right: ``5 < x`` becomes ``x > 5``
    # (gives value numbering one canonical spelling).
    if cx is not None and cy is None:
        swapped = Compare(ins.op.swap(), y, x)
        return Rewrite.with_new([swapped], "canonical-operand-order")

    if x is y:
        if ins.op in (CmpOp.EQ, CmpOp.LE, CmpOp.GE):
            return Rewrite.redundant(graph.const_bool(True), "self-compare")
        if ins.op in (CmpOp.NE, CmpOp.LT, CmpOp.GT):
            return Rewrite.redundant(graph.const_bool(False), "self-compare")

    # bool == true  →  bool;  bool == false  →  !bool (and NE duals)
    if isinstance(sx, BoolStamp) and ins.op in (CmpOp.EQ, CmpOp.NE):
        for operand, const in ((ins.x, cy), (ins.y, cx)):
            if const is not None and isinstance(const[0], bool):
                wants_true = const[0] == (ins.op is CmpOp.EQ)
                resolved = ctx.resolve(operand)
                if wants_true:
                    return Rewrite.redundant(resolved, "bool-unwrap")
                return Rewrite.with_new([Not(resolved)], "bool-unwrap-negated")
    return None


def _canonicalize_not(ins: Not, ctx: OptimizationContext) -> Optional[Rewrite]:
    graph = ctx.graph
    c = ctx.constant_value(ins.x)
    if c is not None:
        return Rewrite.redundant(graph.const_bool(not c[0]), "constant-fold")
    x = ctx.resolve(ins.x)
    if isinstance(x, Not):
        return Rewrite.redundant(x.input(0), "double-negation")
    if isinstance(x, Compare):
        negated = Compare(x.op.negate(), x.x, x.y)
        return Rewrite.with_new([negated], "push-not-into-compare")
    return None


def _canonicalize_neg(ins: Neg, ctx: OptimizationContext) -> Optional[Rewrite]:
    c = ctx.constant_value(ins.x)
    if c is not None:
        from ..ir.ops import wrap64

        return Rewrite.redundant(ctx.graph.const_int(wrap64(-c[0])), "constant-fold")
    x = ctx.resolve(ins.x)
    if isinstance(x, Neg):
        return Rewrite.redundant(x.input(0), "double-negation")
    return None


def _canonicalize_array_length(
    ins: ArrayLength, ctx: OptimizationContext
) -> Optional[Rewrite]:
    array = ctx.resolve(ins.array)
    if isinstance(array, NewArray):
        stamp = ctx.stamp(array.length)
        if isinstance(stamp, IntStamp) and stamp.lo >= 0:
            # len(new T[n]) == n once n is known non-negative.
            return Rewrite.redundant(array.length, "length-of-new-array")
    return None


# ----------------------------------------------------------------------
# The destructive phase
# ----------------------------------------------------------------------
def apply_rewrite(ins: Instruction, rewrite: Rewrite) -> None:
    """Destructively apply an action-step result to the graph."""
    block = ins.block
    if rewrite.new_instructions:
        index = block.instructions.index(ins)
        for offset, new_ins in enumerate(rewrite.new_instructions):
            block.insert(index + offset, new_ins)
    if rewrite.replacement is not None:
        ins.replace_all_uses(rewrite.replacement)
    else:
        assert not ins.has_uses(), "removing a used value without replacement"
    block.remove_instruction(ins)


def fold_constant_branches(graph: Graph, ctx: Optional[OptimizationContext] = None) -> int:
    """Turn ``If`` with a statically known condition into ``Goto``."""
    ctx = ctx or OptimizationContext(graph)
    folded = 0
    for block in list(graph.blocks):
        term = block.terminator
        if not isinstance(term, If):
            continue
        known = ctx.constant_value(term.condition)
        if known is None:
            continue
        target = term.true_target if known[0] else term.false_target
        block.set_terminator(Goto(target))
        folded += 1
    return folded


def simplify_negated_branches(graph: Graph, ctx: Optional[OptimizationContext] = None) -> int:
    """Rewrite ``If !c ? t : f`` to ``If c ? f : t`` (swapping the
    profiled probability along), erasing the negation."""
    ctx = ctx or OptimizationContext(graph)
    simplified = 0
    for block in list(graph.blocks):
        term = block.terminator
        if not isinstance(term, If):
            continue
        condition = ctx.resolve(term.condition)
        if not isinstance(condition, Not):
            continue
        block.set_terminator(
            If(
                condition.input(0),
                term.false_target,
                term.true_target,
                1.0 - term.true_probability,
            )
        )
        simplified += 1
    return simplified


def remove_dead_instructions(graph: Graph) -> int:
    """Classic DCE: drop unused, effect-free instructions and phis."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in graph.blocks:
            for ins in list(block.phis) + list(block.instructions):
                if ins.has_uses():
                    continue
                if isinstance(ins, Phi) or ins.is_removable:
                    block.remove_instruction(ins)
                    removed += 1
                    changed = True
    return removed


class CanonicalizerPhase(Phase):
    """Fixpoint application of all canonicalization ACs + CFG cleanup."""

    name = "canonicalize"

    def run(self, graph: Graph) -> int:
        """Run to fixpoint; returns the number of rewrites applied."""
        total = 0
        ctx = OptimizationContext(graph)
        changed = True
        while changed:
            changed = False
            for block in list(graph.blocks):
                for ins in list(block.instructions):
                    if ins.block is not block:
                        continue  # removed by an earlier rewrite
                    rewrite = canonicalize_instruction(ins, ctx)
                    if rewrite is None:
                        continue
                    apply_rewrite(ins, rewrite)
                    total += 1
                    changed = True
            if fold_constant_branches(graph, ctx):
                changed = True
            if simplify_negated_branches(graph, ctx):
                changed = True
            if remove_dead_instructions(graph):
                changed = True
            canonical_cfg_cleanup(graph)
        return total
