"""Superinstruction fusion: the fast stream and its exactness contract.

``fuse_function`` builds ``fn.xcode`` — a mutable list parallel to
``fn.code`` where mined hot pairs, always-fused families (cmp+branch,
wrap64 binop pairs/triples) and op+goto latches collapse into single
tuples.  The contract under test: step weights sum exactly, cycle
costs sum exactly, consumed slots stay as unreachable padding, jump
targets never land mid-superinstruction, and the fused machine remains
bit-identical to the reference interpreter — including budget stops
that land *inside* a superinstruction.
"""

import pytest

from repro.costmodel.model import cycles_of
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import BudgetExceeded, Interpreter
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.vm import VirtualMachine, translate_program
from repro.vm.bytecode import (
    OP_ADD,
    OP_GOTO,
    OP_IF,
    OP_LT,
    OP_MUL,
)
from repro.vm.fusion import (
    _GOTO_XOPS,
    _PAIR_XOPS,
    _TRIPLE_XOPS,
    OP_IF_LT,
    mine_hot_pairs,
)

COUNTUP = """
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) {
    acc = acc + i * 3;
    i = i + 1;
  }
  return acc;
}
"""

MIXER = """
fn main(n: int) -> int {
  var h: int = 1469598103934665603;
  var i: int = 0;
  while (i < n) {
    h = (h ^ i) * 1099511628211;
    h = h + (h >> 13);
    i = i + 1;
  }
  return h;
}
"""


def fused_main(source: str):
    program = compile_source(source)
    bytecode = translate_program(program)
    return program, bytecode, bytecode.function("main")


# ----------------------------------------------------------------------
# Stream structure
# ----------------------------------------------------------------------
def test_xcode_is_parallel_list_with_padding_slots():
    _, _, fn = fused_main(COUNTUP)
    assert isinstance(fn.xcode, list)
    assert len(fn.xcode) == len(fn.code)
    pc = 0
    while pc < len(fn.xcode):
        ins = fn.xcode[pc]
        w = ins[-1]
        assert w in (1, 2, 3)
        # Consumed slots keep their original tuples (plus the weight
        # suffix) as unreachable padding, so pcs stay addressable.
        for k in range(1, w):
            assert fn.xcode[pc + k][:-1] == fn.code[pc + k]
        pc += w


def test_fusion_happened_at_all():
    _, _, fn = fused_main(COUNTUP)
    assert any(ins[-1] > 1 for ins in fn.xcode), "expected fused sites"


def test_fused_costs_and_weights_sum_exactly():
    _, _, fn = fused_main(MIXER)
    for pc, ins in enumerate(fn.xcode):
        w = ins[-1]
        if w == 1:
            continue
        originals = fn.code[pc : pc + w]
        assert ins[1] == sum(o[1] for o in originals)
        assert ins[-1] == len(originals)
        # Slot -2 carries the w-1 unfused prefix halves for the
        # budget-stop replay, in execution order.
        assert ins[-2] == tuple(originals[:-1])


def test_wrap64_pair_layout_is_flat():
    # add;mul under a pair superinstruction: operands at fixed slots,
    # no nested tuple indexing on the hot path.
    program = compile_source(COUNTUP)
    bytecode = translate_program(program)
    fn = bytecode.function("main")
    pairs = [
        (pc, ins)
        for pc, ins in enumerate(fn.xcode)
        if ins[-1] == 2 and ins[0] in _PAIR_XOPS.values()
    ]
    for pc, ins in pairs:
        a, b = fn.code[pc], fn.code[pc + 1]
        assert ins[2] == a[2]  # source node of the first half
        assert (ins[3], ins[4], ins[5]) == (a[3], a[4], a[5])
        assert (ins[6], ins[7], ins[8]) == (b[3], b[4], b[5])


def test_wrap64_triple_layout_is_flat():
    _, _, fn = fused_main(MIXER)
    triples = [
        (pc, ins) for pc, ins in enumerate(fn.xcode) if ins[-1] == 3
    ]
    assert triples, "expected a wrap64 run of three in the mixer loop"
    for pc, ins in triples:
        a, b, c = fn.code[pc : pc + 3]
        assert ins[0] == _TRIPLE_XOPS[(a[0], b[0], c[0])]
        assert (ins[3], ins[4], ins[5]) == (a[3], a[4], a[5])
        assert (ins[6], ins[7], ins[8]) == (b[3], b[4], b[5])
        assert (ins[9], ins[10], ins[11]) == (c[3], c[4], c[5])
        assert ins[-2] == (a, b)


def test_cmp_branch_always_fuses():
    _, _, fn = fused_main(COUNTUP)
    assert any(ins[0] == OP_IF_LT for ins in fn.xcode)


def test_jump_targets_never_fall_inside_a_superinstruction():
    for source in (COUNTUP, MIXER):
        _, _, fn = fused_main(source)
        starts = set()
        pc = 0
        while pc < len(fn.xcode):
            starts.add(pc)
            pc += fn.xcode[pc][-1]
        for ins in fn.code:
            if ins[0] == OP_GOTO:
                assert ins[4][0] in starts
            elif ins[0] == OP_IF:
                assert ins[5][0] in starts and ins[6][0] in starts


# ----------------------------------------------------------------------
# Mining
# ----------------------------------------------------------------------
def test_mine_hot_pairs_is_deterministic_and_ranked():
    program = compile_source(COUNTUP)
    bytecode = translate_program(program)
    plan = mine_hot_pairs(program, bytecode)
    assert plan == mine_hot_pairs(program, bytecode)
    assert len(plan) == len(set(plan))
    assert (OP_LT, OP_IF) in plan or (OP_ADD, OP_ADD) in plan


def test_fused_sites_metric_emitted():
    registry = MetricsRegistry()
    with use_registry(registry):
        fused_main(COUNTUP)
    assert registry.snapshot().counter_total("repro_vm_fused_sites_total") > 0


# ----------------------------------------------------------------------
# Exactness: parity and budget stops across fused boundaries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("source", [COUNTUP, MIXER], ids=["countup", "mixer"])
@pytest.mark.parametrize("metered", [False, True], ids=["plain", "metered"])
def test_fused_machine_matches_reference(source, metered):
    program = compile_source(source)
    bytecode = translate_program(program)
    reference = Interpreter(
        program,
        cycle_cost=cycles_of if metered else None,
        terminator_cost=cycles_of if metered else None,
    )
    vm = VirtualMachine(bytecode, metered=metered)
    for args in ([0], [1], [13], [57]):
        reference.reset()
        vm.reset()
        ref = reference.run("main", list(args))
        out = vm.run("main", list(args))
        assert (ref.value, ref.steps) == (out.value, out.steps)
        if metered:
            assert ref.cycles == out.cycles


@pytest.mark.parametrize("source", [COUNTUP, MIXER], ids=["countup", "mixer"])
@pytest.mark.parametrize("metered", [False, True], ids=["plain", "metered"])
def test_budget_stop_exact_at_every_step_cap(source, metered):
    # Sweeping the cap one step at a time forces the budget to trip on
    # every pc — including mid-superinstruction, where the prefix
    # halves replay through the base table before the stop.
    program = compile_source(source)
    bytecode = translate_program(program)
    reference_full = Interpreter(program)
    total = reference_full.run("main", [9]).steps
    for cap in range(1, total + 2):
        reference = Interpreter(
            program,
            max_steps=cap,
            cycle_cost=cycles_of if metered else None,
            terminator_cost=cycles_of if metered else None,
        )
        vm = VirtualMachine(bytecode, max_steps=cap, metered=metered)
        ref_stop = vm_stop = None
        try:
            reference.run("main", [9])
        except BudgetExceeded as exc:
            ref_stop = str(exc)
        try:
            vm.run("main", [9])
        except BudgetExceeded as exc:
            vm_stop = str(exc)
        assert ref_stop == vm_stop
        assert reference.state.steps == vm.state.steps
        if metered:
            assert reference.state.cycles == vm.state.cycles


def test_nofuse_machine_ignores_the_fast_stream():
    # The ablation row: fused=False pins the flat loops but computes
    # the same thing with the same accounting.
    program = compile_source(MIXER)
    bytecode = translate_program(program)
    fused = VirtualMachine(bytecode, metered=True)
    flat = VirtualMachine(bytecode, metered=True, fused=False)
    a = fused.run("main", [23])
    b = flat.run("main", [23])
    assert (a.value, a.steps, a.cycles) == (b.value, b.steps, b.cycles)


def test_goto_latch_fuses_when_mined():
    # `i = i + 1; goto header` is the canonical loop latch; when the
    # miner ranks (add, goto) it becomes a specialized op+goto site.
    source = """
    fn main(n: int) -> int {
      var i: int = 0;
      while (i < n) { i = i + 1; }
      return i;
    }
    """
    program = compile_source(source)
    bytecode = translate_program(program)
    fn = bytecode.function("main")
    plan = mine_hot_pairs(program, bytecode)
    assert (OP_ADD, OP_GOTO) in plan
    assert any(ins[0] == _GOTO_XOPS[OP_ADD] for ins in fn.xcode)


def test_every_wrap64_pair_and_triple_handler_exists():
    assert len(_PAIR_XOPS) == 81
    assert len(_GOTO_XOPS) == 9
    assert len(_TRIPLE_XOPS) == 729
    assert (OP_MUL, OP_ADD) in _PAIR_XOPS
    # Deterministic numbering: regenerating the tables yields the same
    # opcode for the same pair (pickle-stable across workers).
    assert _PAIR_XOPS[(OP_ADD, OP_ADD)] == min(_PAIR_XOPS.values())
