"""Tests for the node cost model, anchored to the paper's figures."""

import pytest

from repro.costmodel.model import (
    NodeCost,
    cost_of,
    cycles_of,
    node_cost,
    register_arith_cost,
    size_of,
)
from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Constant,
    Goto,
    Graph,
    If,
    INT,
    Instruction,
    New,
    ObjectType,
    Phi,
    Return,
    StoreGlobal,
)
from repro.ir.stamps import ANY_INT


@pytest.fixture
def graph():
    return Graph("f", [("x", INT)], INT)


class TestPaperAnchors:
    def test_figure3_division_vs_shift(self, graph):
        """Figure 3: Div costs 32 cycles, the shift 1 → CS = 31."""
        x = graph.parameters[0]
        div = ArithOp(BinOp.DIV, x, graph.const_int(2))
        shift = ArithOp(BinOp.SHR, x, graph.const_int(1))
        assert cycles_of(div) == 32
        assert cycles_of(shift) == 1
        assert cycles_of(div) - cycles_of(shift) == 31

    def test_figure4_node_costs(self, graph):
        """Figure 4's annotations: Mul 2 cycles, Store 10, Return 2."""
        x = graph.parameters[0]
        assert cycles_of(ArithOp(BinOp.MUL, x, graph.const_int(3))) == 2
        assert cycles_of(StoreGlobal("s", x)) == 10
        assert cycles_of(Return(x)) == 2
        assert cycles_of(graph.const_int(3)) == 0
        assert cycles_of(graph.parameters[0]) == 0

    def test_listing7_allocation(self):
        """Listing 7: AbstractNewObjectNode is CYCLES_8 / SIZE_8."""
        alloc = New(ObjectType("A"))
        assert cycles_of(alloc) == 8
        assert size_of(alloc) == 8

    def test_figure4_example_computation(self, graph):
        """The complete Figure 4 computation: 14 cycles before
        duplication, 12.2 after (0.9/0.1 split, Mul folded on the hot
        path)."""
        x = graph.parameters[0]
        mul = ArithOp(BinOp.MUL, x, graph.const_int(3))
        store = StoreGlobal("s", mul)
        ret = Return(mul)
        merge_cost = cycles_of(store) + cycles_of(mul) + cycles_of(ret)
        before = (0.1 + 0.9) * merge_cost
        assert before == pytest.approx(14.0)
        # After duplication the 90% path folds Mul(3, phi) to Const 9.
        hot = cycles_of(store) + cycles_of(ret)
        cold = merge_cost
        after = 0.1 * cold + 0.9 * hot
        assert after == pytest.approx(12.2)


class TestRegistry:
    def test_all_ir_nodes_have_costs(self, graph):
        from repro.ir import (
            ArrayLength,
            ArrayLoad,
            ArrayStore,
            Call,
            LoadField,
            LoadGlobal,
            Neg,
            NewArray,
            Not,
            StoreField,
        )

        x = graph.parameters[0]
        alloc = New(ObjectType("A"))
        samples = [
            ArithOp(BinOp.ADD, x, x),
            Compare(CmpOp.LT, x, x),
            Not(Compare(CmpOp.LT, x, x)),
            Neg(x),
            alloc,
            LoadField(alloc, "f", INT),
            StoreField(alloc, "f", x),
            LoadGlobal("g", INT),
            StoreGlobal("g", x),
            NewArray(INT, x),
            ArrayLoad(alloc, x, INT),
            ArrayStore(alloc, x, x),
            ArrayLength(alloc),
            Call("f", [x], INT),
            graph.const_int(1),
            Phi(graph.entry, INT, []),
            Goto(graph.entry),
            If(Compare(CmpOp.LT, x, x), graph.entry, graph.new_block()),
            Return(None),
        ]
        for node in samples:
            cost = cost_of(node)
            assert cost.cycles >= 0 and cost.size >= 0

    def test_arith_costs_per_operator(self, graph):
        x = graph.parameters[0]
        assert cycles_of(ArithOp(BinOp.ADD, x, x)) == 1
        assert cycles_of(ArithOp(BinOp.MOD, x, x)) == 32
        assert cycles_of(ArithOp(BinOp.SHL, x, x)) == 1

    def test_unregistered_class_raises(self):
        class Strange:
            pass

        with pytest.raises(KeyError):
            cost_of(Strange())

    def test_decorator_registers_subclass(self, graph):
        @node_cost(cycles=99, size=7)
        class FancyNode(Instruction):
            def __init__(self):
                super().__init__([], ANY_INT)

        node = FancyNode()
        assert cycles_of(node) == 99
        assert size_of(node) == 7

    def test_mro_fallback(self, graph):
        # A subclass without its own registration inherits its parent's.
        class SpecialReturn(Return):
            pass

        assert cycles_of(SpecialReturn(None)) == cycles_of(Return(None))

    def test_node_cost_immutable(self):
        cost = NodeCost(1, 2)
        with pytest.raises(Exception):
            cost.cycles = 5
