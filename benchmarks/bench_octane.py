"""Experiment T8 — Figure 8: Graal JS Octane benchmarks.

Paper geomeans: DBDS +8.81% perf / +22.48% compile time / +7.31% size;
dupalot +6.66% perf / +42.63% compile time / +25.58% size.  The paper
notes one benchmark (raytrace) is 15% *slower* under dupalot than under
the baseline — duplicating everything is not a good idea.

Shape checks: the suite improves under DBDS, dupalot costs more code
size, and dupalot never does meaningfully better than DBDS on speed.
"""

from _support import record_figure

from repro.bench.harness import format_suite_report, run_suite
from repro.bench.workloads.suites import OCTANE


def test_fig8_octane(benchmark):
    report = benchmark.pedantic(lambda: run_suite(OCTANE), rounds=1, iterations=1)
    record_figure("fig8_octane", format_suite_report(report))
    assert report.geomean_speedup("dbds") > 0.0
    assert (
        report.geomean_code_size("dupalot")
        >= report.geomean_code_size("dbds") - 1e-6
    )
