"""``repro.obs`` — the compiler telemetry subsystem.

Phase tracing, DBDS decision events, compile profiles and trace
sinks.  See ``docs/OBSERVABILITY.md`` for the event schema and the
CLI surface (``python -m repro trace``, ``--trace-out``,
``--profile-compile``).

Typical use::

    from repro.obs import Tracer, use_tracer, CompileProfile, write_jsonl

    tracer = Tracer()                       # enabled, records everything
    compiler = Compiler(DBDS, tracer=tracer)
    compiler.compile_program(program)
    print(CompileProfile.from_tracer(tracer).format())
    write_jsonl(tracer, "trace.jsonl")
"""

from .metrics import (
    BYTES_BUCKETS,
    HISTOGRAM_BUCKETS,
    NULL_REGISTRY,
    SECONDS_BUCKETS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
    current_registry,
    exponential_buckets,
    merge_snapshots,
    use_registry,
)
from .profile import CompileProfile, PhaseStat
from .sinks import (
    TraceSchemaError,
    event_from_dict,
    event_to_dict,
    read_jsonl,
    trace_counters,
    validate_record,
    validate_trace,
    validate_trace_file,
    write_jsonl,
)
from .tracer import (
    NULL_TRACER,
    Event,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "BYTES_BUCKETS",
    "CompileProfile",
    "Event",
    "HISTOGRAM_BUCKETS",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "PhaseStat",
    "SECONDS_BUCKETS",
    "current_registry",
    "exponential_buckets",
    "merge_snapshots",
    "use_registry",
    "TraceSchemaError",
    "Tracer",
    "current_tracer",
    "event_from_dict",
    "event_to_dict",
    "read_jsonl",
    "trace_counters",
    "use_tracer",
    "validate_record",
    "validate_trace",
    "validate_trace_file",
    "write_jsonl",
]
