"""Property: arbitrary sequences of valid duplications preserve both the
IR invariants and the program's observable behaviour.

This attacks the transformation directly (not through the trade-off
tier): on random programs, repeatedly duplicate randomly chosen valid
predecessor-merge pairs, verifying after each step and comparing
semantics at the end.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dbds.duplicate import can_duplicate, duplicate_into
from repro.frontend.irbuilder import compile_source
from repro.ir import verify_graph
from repro.ir.loops import LoopForest
from tests.generators import random_program
from tests.helpers import outcomes

ARGS = [[0], [2], [5]]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_random_duplication_sequences_are_safe(program_seed, choice_seed):
    source = random_program(program_seed)
    program = compile_source(source)
    expected = outcomes(program, "main", ARGS)
    rng = random.Random(choice_seed)

    for graph in program.functions.values():
        for _ in range(6):
            loops = LoopForest(graph)
            pairs = [
                (pred, merge)
                for merge in graph.merge_blocks()
                for pred in merge.predecessors
                if can_duplicate(graph, pred, merge, loops)
            ]
            if not pairs:
                break
            pred, merge = rng.choice(pairs)
            duplicate_into(graph, pred, merge)
            verify_graph(graph)

    assert outcomes(program, "main", ARGS) == expected, (
        f"duplication changed semantics (program {program_seed}, "
        f"choices {choice_seed})\n{source}"
    )
