"""Tests for the MiniLang parser."""

import pytest

from repro.frontend import ast
from repro.frontend.lexer import CompileError
from repro.frontend.parser import parse_module
from repro.ir.types import BOOL, INT, VOID, ArrayType, ObjectType


def parse_expr(text: str) -> ast.Expr:
    module = parse_module(f"fn f() -> int {{ return {text}; }}")
    return module.functions[0].body[0].value


def parse_stmts(text: str) -> list[ast.Stmt]:
    module = parse_module(f"fn f() {{ {text} }}")
    return module.functions[0].body


class TestDeclarations:
    def test_class(self):
        module = parse_module("class A { x: int; next: A; flag: bool; }")
        cls = module.classes[0]
        assert cls.name == "A"
        assert cls.fields == [
            ("x", INT), ("next", ObjectType("A")), ("flag", BOOL),
        ]

    def test_global(self):
        module = parse_module("global counter: int;")
        assert module.globals[0].name == "counter"
        assert module.globals[0].declared_type == INT

    def test_function_signature(self):
        module = parse_module("fn f(a: int, b: bool) -> int { return a; }")
        f = module.functions[0]
        assert f.name == "f"
        assert f.params == [("a", INT), ("b", BOOL)]
        assert f.return_type == INT

    def test_void_function(self):
        module = parse_module("fn f() { }")
        assert module.functions[0].return_type == VOID

    def test_array_types(self):
        module = parse_module("fn f(a: int[], b: A[][]) { }")
        params = module.functions[0].params
        assert params[0][1] == ArrayType(INT)
        assert params[1][1] == ArrayType(ArrayType(ObjectType("A")))


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_precedence_shift_below_add(self):
        e = parse_expr("1 << 2 + 3")
        assert e.op == "<<"
        assert isinstance(e.right, ast.Binary) and e.right.op == "+"

    def test_comparison_below_bitor(self):
        e = parse_expr("(1 | 2) == 3")
        assert e.op == "=="

    def test_logical_lowest(self):
        module = parse_module("fn f() -> bool { return 1 < 2 && 3 < 4 || true; }")
        e = module.functions[0].body[0].value
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_left_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-"
        assert isinstance(e.left, ast.Binary) and e.left.op == "-"
        assert e.right.value == 3

    def test_unary(self):
        e = parse_expr("-x")
        assert isinstance(e, ast.Unary) and e.op == "-"
        module = parse_module("fn f() -> bool { return !(true); }")
        assert isinstance(module.functions[0].body[0].value, ast.Unary)

    def test_parentheses(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_field_access_chain(self):
        e = parse_expr("a.b.c")
        assert isinstance(e, ast.FieldAccess) and e.field == "c"
        assert isinstance(e.obj, ast.FieldAccess) and e.obj.field == "b"

    def test_index(self):
        e = parse_expr("a[i + 1]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.index, ast.Binary)

    def test_call(self):
        e = parse_expr("g(1, x, h())")
        assert isinstance(e, ast.CallExpr)
        assert e.callee == "g" and len(e.args) == 3
        assert isinstance(e.args[2], ast.CallExpr)

    def test_new_object(self):
        e = parse_expr("new A { x = 1, y = 2 }")
        assert isinstance(e, ast.NewObject)
        assert e.class_name == "A"
        assert [n for n, _ in e.initializers] == ["x", "y"]

    def test_new_object_no_initializers(self):
        e = parse_expr("new A")
        assert isinstance(e, ast.NewObject) and e.initializers == []

    def test_new_array(self):
        e = parse_expr("new int[10]")
        assert isinstance(e, ast.NewArrayExpr)
        assert e.element_type == INT

    def test_new_object_array(self):
        e = parse_expr("new A[n]")
        assert isinstance(e, ast.NewArrayExpr)
        assert e.element_type == ObjectType("A")

    def test_len(self):
        e = parse_expr("len(xs)")
        assert isinstance(e, ast.LenExpr)

    def test_literals(self):
        assert parse_expr("42").value == 42
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False
        assert isinstance(parse_expr("null"), ast.NullLiteral)


class TestStatements:
    def test_var_decl(self):
        stmts = parse_stmts("var x: int = 5;")
        assert isinstance(stmts[0], ast.VarDecl)
        assert stmts[0].init.value == 5

    def test_var_decl_no_init(self):
        stmts = parse_stmts("var x: A;")
        assert stmts[0].init is None

    def test_assignment_targets(self):
        stmts = parse_stmts("x = 1; a.f = 2; xs[0] = 3;")
        assert isinstance(stmts[0].target, ast.VarRef)
        assert isinstance(stmts[1].target, ast.FieldAccess)
        assert isinstance(stmts[2].target, ast.Index)

    def test_if_else(self):
        stmts = parse_stmts("if (x > 0) { y = 1; } else { y = 2; }")
        node = stmts[0]
        assert isinstance(node, ast.IfStmt)
        assert len(node.then_body) == 1 and len(node.else_body) == 1

    def test_else_if_chain(self):
        stmts = parse_stmts(
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }"
        )
        outer = stmts[0]
        assert isinstance(outer.else_body[0], ast.IfStmt)

    def test_while(self):
        stmts = parse_stmts("while (i < 10) { i = i + 1; }")
        assert isinstance(stmts[0], ast.WhileStmt)

    def test_return_forms(self):
        module = parse_module("fn f() { return; }")
        assert module.functions[0].body[0].value is None
        module = parse_module("fn g() -> int { return 1; }")
        assert module.functions[0].body[0].value.value == 1

    def test_expression_statement(self):
        stmts = parse_stmts("g();")
        assert isinstance(stmts[0], ast.ExprStmt)


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "fn f( { }",
            "fn f() -> { }",
            "class A { x int; }",
            "fn f() { var x = 1; }",  # missing type annotation
            "fn f() { 1 + ; }",
            "fn f() { if x { } }",  # missing parens
            "fn f() { return 1 }",  # missing semicolon
            "global g;",
            "stray",
            "fn f() { (1 + 2 = 3); }",  # invalid assign target
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(CompileError):
            parse_module(source)

    def test_error_position_reported(self):
        try:
            parse_module("fn f() {\n  var : int;\n}")
        except CompileError as e:
            assert e.line == 2
        else:
            pytest.fail("expected CompileError")
