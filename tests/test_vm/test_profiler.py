"""VM execution profiler: zero overhead and exact attribution.

Two contracts (docs/OBSERVABILITY.md):

* **zero overhead** — the profiled dispatch loop is a *separate
  specialization*; the default :class:`VirtualMachine` is untouched and
  a profiled run produces bit-identical outcomes, step counts and
  metered cycles to an unprofiled metered run;
* **exact reconciliation** — per-opcode cycle sums equal the metered
  total on every run (including trapped ones), and per-opcode step
  sums equal ``state.steps`` except after :class:`BudgetExceeded`
  (whose final step the machine counts but no opcode completes).
"""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import BudgetExceeded, observable_outcome
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS
from repro.vm import VirtualMachine, translate_program
from repro.vm.bytecode import OPCODE_NAMES
from repro.vm.profiler import ProfilingVirtualMachine, VMProfile, profile_run

APPS = {
    "nqueens": ("examples/apps/nqueens.mini", [6]),
    "wordfreq": ("examples/apps/wordfreq.mini", [120]),
    "matrix": ("examples/apps/matrix.mini", [8]),
}

TRAP_DIV = """
fn main(n: int) -> int {
  return n / (n - n);
}
"""

RECURSIVE = """
fn add(a: int, b: int) -> int { return a + b; }
fn fib(n: int) -> int {
  if (n < 2) { return n; }
  return add(fib(n - 1), fib(n - 2));
}
fn main(n: int) -> int { return fib(n); }
"""


def metered_and_profiled(source: str, args):
    program = compile_source(source)
    bytecode = translate_program(program)
    base = VirtualMachine(bytecode, metered=True)
    prof = ProfilingVirtualMachine(bytecode)
    ref = base.run("main", list(args))
    out = prof.run("main", list(args))
    return (base, ref), (prof, out)


# ----------------------------------------------------------------------
# Zero-overhead contract
# ----------------------------------------------------------------------
class TestZeroOverhead:
    def test_profiled_loop_is_a_separate_specialization(self):
        # The profiler must override the dispatch loop, never edit it:
        # the base class's _run_frame stays byte-for-byte what it was.
        assert (
            ProfilingVirtualMachine._run_frame
            is not VirtualMachine._run_frame
        )
        assert "vmprofile" not in VirtualMachine.__init__.__code__.co_names

    def test_profiler_pins_the_handler_fast_path(self):
        program = compile_source("fn main(n: int) -> int { return n; }")
        vm = ProfilingVirtualMachine(translate_program(program))
        # The shared opcode handlers branch on these two attributes;
        # None keeps them on the same fast edge path as the default VM.
        assert vm.profile is None and vm.observer is None
        assert vm.metered

    @pytest.mark.parametrize("name", sorted(APPS))
    def test_identical_outcome_steps_cycles(self, name):
        path, args = APPS[name]
        (base, ref), (prof, out) = metered_and_profiled(
            open(path).read(), args
        )
        assert observable_outcome(ref, base.state) == observable_outcome(
            out, prof.state
        )
        assert ref.steps == out.steps
        assert ref.cycles == out.cycles

    def test_identical_on_optimized_program(self):
        source = open("examples/apps/nqueens.mini").read()
        program, _ = compile_and_profile(source, "main", [[5]], DBDS)
        bytecode = translate_program(program)
        ref = VirtualMachine(bytecode, metered=True).run("main", [7])
        out = ProfilingVirtualMachine(bytecode).run("main", [7])
        assert (ref.value, ref.steps, ref.cycles) == (
            out.value,
            out.steps,
            out.cycles,
        )


# ----------------------------------------------------------------------
# Reconciliation
# ----------------------------------------------------------------------
class TestReconciliation:
    @pytest.mark.parametrize("name", sorted(APPS))
    def test_opcode_sums_match_metered_totals(self, name):
        path, args = APPS[name]
        _, (prof, out) = metered_and_profiled(open(path).read(), args)
        vmprofile = prof.vmprofile
        assert vmprofile.total_steps == prof.state.steps == out.steps
        assert vmprofile.total_cycles == prof.state.cycles == out.cycles
        assert vmprofile.reconciles(out.cycles)

    def test_function_and_block_sums_match_too(self):
        path, args = APPS["nqueens"]
        _, (prof, out) = metered_and_profiled(open(path).read(), args)
        vmprofile = prof.vmprofile
        assert sum(vmprofile.func_cycles.values()) == out.cycles
        assert sum(vmprofile.func_steps.values()) == out.steps
        assert sum(c for _, _, _, c in vmprofile.top_blocks(10**6)) == out.cycles
        assert sum(vmprofile.stacks.values()) == out.cycles

    def test_trapped_run_still_reconciles(self):
        # The trapping instruction counts a step but no cycles — in the
        # metered loop and in the profiler alike.
        (base, ref), (prof, out) = metered_and_profiled(TRAP_DIV, [3])
        assert ref.trapped and out.trapped
        assert ref.steps == out.steps and ref.cycles == out.cycles
        assert prof.vmprofile.total_steps == out.steps
        assert prof.vmprofile.reconciles(out.cycles)

    def test_budget_exceeded_cycles_reconcile(self):
        source = (
            "fn main(n: int) -> int {"
            " var i: int = 0; while (true) { i = i + 1; } return i; }"
        )
        program = compile_source(source)
        bytecode = translate_program(program)
        base = VirtualMachine(bytecode, metered=True, max_steps=1000)
        prof = ProfilingVirtualMachine(bytecode, max_steps=1000)
        with pytest.raises(BudgetExceeded):
            base.run("main", [0])
        with pytest.raises(BudgetExceeded):
            prof.run("main", [0])
        assert base.state.steps == prof.state.steps
        assert base.state.cycles == prof.state.cycles
        # Cycle sums stay exact; the budget-raising step is counted by
        # the machine but attributed to no opcode.
        assert prof.vmprofile.reconciles(prof.state.cycles)
        assert prof.vmprofile.total_steps == prof.state.steps - 1


# ----------------------------------------------------------------------
# Attribution content and renderers
# ----------------------------------------------------------------------
class TestAttribution:
    def test_call_stacks_are_exclusive(self):
        total, results, vmprofile = profile_run(
            compile_source(RECURSIVE), arg_sets=[(8,)]
        )
        assert results[0].value == 21
        stacks = {";".join(k): v for k, v in vmprofile.stacks.items()}
        assert any(key.startswith("main;fib") for key in stacks)
        assert any("fib;add" in key for key in stacks)
        # Exclusive weights: stack sum equals the metered total.
        assert sum(stacks.values()) == total

    def test_collapsed_format(self):
        _, _, vmprofile = profile_run(compile_source(RECURSIVE), arg_sets=[(6,)])
        lines = vmprofile.collapsed().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert frames and int(weight) > 0

    def test_top_tables_and_format(self):
        _, _, vmprofile = profile_run(compile_source(RECURSIVE), arg_sets=[(6,)])
        opcodes = vmprofile.top_opcodes(3)
        assert len(opcodes) == 3
        assert all(name in OPCODE_NAMES for name, _, _ in opcodes)
        cycles = [c for _, _, c in opcodes]
        assert cycles == sorted(cycles, reverse=True)
        names = [name for name, _, _, _ in vmprofile.top_functions(10)]
        assert {"main", "fib", "add"} <= set(names)
        text = vmprofile.format(top=5)
        assert "opcode" in text and "function" in text and "block" in text

    def test_profile_accumulates_across_arg_sets(self):
        program = compile_source(RECURSIVE)
        _, _, once = profile_run(program, arg_sets=[(6,)])
        total, _, twice = profile_run(program, arg_sets=[(6,), (6,)])
        assert twice.total_steps == 2 * once.total_steps
        assert twice.reconciles(total)

    def test_merge_is_additive(self):
        program = compile_source(RECURSIVE)
        _, _, a = profile_run(program, arg_sets=[(5,)])
        _, _, b = profile_run(program, arg_sets=[(5,)])
        merged = VMProfile().merge(a).merge(b)
        assert merged.total_steps == a.total_steps + b.total_steps
        assert merged.total_cycles == a.total_cycles + b.total_cycles

    def test_json_export(self):
        _, _, vmprofile = profile_run(compile_source(RECURSIVE), arg_sets=[(5,)])
        data = vmprofile.to_json()
        assert data["schema"] == 1
        assert data["total_cycles"] == vmprofile.total_cycles
        assert sum(o["cycles"] for o in data["opcodes"]) == data["total_cycles"]
        assert sum(data["stacks"].values()) == data["total_cycles"]
