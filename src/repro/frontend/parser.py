"""Recursive-descent parser for MiniLang.

Grammar (see README for the full reference):

    module     := (class | global | function)*
    class      := "class" IDENT "{" (IDENT ":" type ";")* "}"
    global     := "global" IDENT ":" type ";"
    function   := "fn" IDENT "(" params? ")" ("->" type)? block
    type       := ("int" | "bool" | IDENT) ("[" "]")*
    statement  := var | if | while | return | assign-or-expr
    expression := precedence-climbing over || && | ^ & == != < <= > >=
                  << >> >>> + - * / % with unary - and !
"""

from __future__ import annotations

from typing import Optional

from ..ir.types import BOOL, INT, VOID, ArrayType, ObjectType, Type
from . import ast
from .lexer import CompileError, Token, TokenKind, tokenize


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token utilities
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect_punct(self, text: str) -> Token:
        if not self.current.is_punct(text):
            raise CompileError(
                f"expected {text!r}, found {self.current.text!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            raise CompileError(
                f"expected keyword {text!r}, found {self.current.text!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise CompileError(
                f"expected identifier, found {self.current.text!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        if self.current.is_punct(text):
            self.advance()
            return True
        return False

    def accept_keyword(self, text: str) -> bool:
        if self.current.is_keyword(text):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def parse_module(self) -> ast.Module:
        classes: list[ast.ClassDef] = []
        globals_: list[ast.GlobalDef] = []
        functions: list[ast.FunctionDef] = []
        while self.current.kind is not TokenKind.EOF:
            if self.current.is_keyword("class"):
                classes.append(self.parse_class())
            elif self.current.is_keyword("global"):
                globals_.append(self.parse_global())
            elif self.current.is_keyword("fn"):
                functions.append(self.parse_function())
            else:
                raise CompileError(
                    f"expected declaration, found {self.current.text!r}",
                    self.current.line,
                    self.current.column,
                )
        return ast.Module(1, classes, globals_, functions)

    def parse_class(self) -> ast.ClassDef:
        start = self.expect_keyword("class")
        name = self.expect_ident().text
        self.expect_punct("{")
        fields: list[tuple[str, Type]] = []
        while not self.accept_punct("}"):
            fname = self.expect_ident().text
            self.expect_punct(":")
            fields.append((fname, self.parse_type()))
            self.expect_punct(";")
        return ast.ClassDef(start.line, name, fields)

    def parse_global(self) -> ast.GlobalDef:
        start = self.expect_keyword("global")
        name = self.expect_ident().text
        self.expect_punct(":")
        ty = self.parse_type()
        self.expect_punct(";")
        return ast.GlobalDef(start.line, name, ty)

    def parse_function(self) -> ast.FunctionDef:
        start = self.expect_keyword("fn")
        name = self.expect_ident().text
        self.expect_punct("(")
        params: list[tuple[str, Type]] = []
        if not self.current.is_punct(")"):
            while True:
                pname = self.expect_ident().text
                self.expect_punct(":")
                params.append((pname, self.parse_type()))
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return_type: Type = VOID
        if self.accept_punct("->"):
            return_type = self.parse_type()
        body = self.parse_block()
        return ast.FunctionDef(start.line, name, params, return_type, body)

    def parse_type(self) -> Type:
        token = self.current
        if token.is_keyword("int"):
            self.advance()
            base: Type = INT
        elif token.is_keyword("bool"):
            self.advance()
            base = BOOL
        elif token.is_keyword("void"):
            self.advance()
            base = VOID
        elif token.kind is TokenKind.IDENT:
            self.advance()
            base = ObjectType(token.text)
        else:
            raise CompileError(
                f"expected type, found {token.text!r}", token.line, token.column
            )
        while self.current.is_punct("[") and self.tokens[self.pos + 1].is_punct("]"):
            self.advance()
            self.advance()
            base = ArrayType(base)
        return base

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_block(self) -> list[ast.Stmt]:
        self.expect_punct("{")
        statements: list[ast.Stmt] = []
        while not self.accept_punct("}"):
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.is_keyword("var"):
            return self.parse_var_decl()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("return"):
            self.advance()
            value: Optional[ast.Expr] = None
            if not self.current.is_punct(";"):
                value = self.parse_expression()
            self.expect_punct(";")
            return ast.ReturnStmt(token.line, value)
        # assignment or expression statement
        expr = self.parse_expression()
        if self.accept_punct("="):
            value = self.parse_expression()
            self.expect_punct(";")
            if not isinstance(expr, (ast.VarRef, ast.FieldAccess, ast.Index)):
                raise CompileError("invalid assignment target", token.line, token.column)
            return ast.Assign(token.line, expr, value)
        self.expect_punct(";")
        return ast.ExprStmt(token.line, expr)

    def parse_var_decl(self) -> ast.VarDecl:
        start = self.expect_keyword("var")
        name = self.expect_ident().text
        self.expect_punct(":")
        ty = self.parse_type()
        init: Optional[ast.Expr] = None
        if self.accept_punct("="):
            init = self.parse_expression()
        self.expect_punct(";")
        return ast.VarDecl(start.line, name, ty, init)

    def parse_if(self) -> ast.IfStmt:
        start = self.expect_keyword("if")
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        then_body = self.parse_block()
        else_body: list[ast.Stmt] = []
        if self.accept_keyword("else"):
            if self.current.is_keyword("if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.IfStmt(start.line, condition, then_body, else_body)

    def parse_while(self) -> ast.WhileStmt:
        start = self.expect_keyword("while")
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_block()
        return ast.WhileStmt(start.line, condition, body)

    def parse_for(self) -> ast.ForStmt:
        """``for (init; cond; step) { body }`` — init is a var
        declaration or an assignment, step is an assignment."""
        start = self.expect_keyword("for")
        self.expect_punct("(")
        if self.current.is_keyword("var"):
            init: ast.Stmt = self.parse_var_decl()  # consumes the ';'
        else:
            init = self._parse_assignment_clause()
            self.expect_punct(";")
        condition = self.parse_expression()
        self.expect_punct(";")
        step = self._parse_assignment_clause()
        self.expect_punct(")")
        body = self.parse_block()
        return ast.ForStmt(start.line, init, condition, step, body)

    def _parse_assignment_clause(self) -> ast.Assign:
        token = self.current
        target = self.parse_expression()
        self.expect_punct("=")
        value = self.parse_expression()
        if not isinstance(target, (ast.VarRef, ast.FieldAccess, ast.Index)):
            raise CompileError("invalid assignment target", token.line, token.column)
        return ast.Assign(token.line, target, value)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    _LEVELS: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>", ">>>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expression(self) -> ast.Expr:
        return self._parse_level(0)

    def _parse_level(self, level: int) -> ast.Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        ops = self._LEVELS[level]
        left = self._parse_level(level + 1)
        while self.current.kind is TokenKind.PUNCT and self.current.text in ops:
            op = self.advance()
            right = self._parse_level(level + 1)
            left = ast.Binary(op.line, op.text, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.is_punct("-") or token.is_punct("!"):
            self.advance()
            return ast.Unary(token.line, token.text, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept_punct("."):
                field = self.expect_ident().text
                expr = ast.FieldAccess(self.current.line, expr, field)
            elif self.current.is_punct("[") and not isinstance(expr, ast.NewArrayExpr):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.Index(self.current.line, expr, index)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.IntLiteral(token.line, int(token.text))
        if token.is_keyword("true"):
            self.advance()
            return ast.BoolLiteral(token.line, True)
        if token.is_keyword("false"):
            self.advance()
            return ast.BoolLiteral(token.line, False)
        if token.is_keyword("null"):
            self.advance()
            return ast.NullLiteral(token.line)
        if token.is_keyword("len"):
            self.advance()
            self.expect_punct("(")
            array = self.parse_expression()
            self.expect_punct(")")
            return ast.LenExpr(token.line, array)
        if token.is_keyword("new"):
            return self.parse_new()
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.current.is_punct("("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.current.is_punct(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                return ast.CallExpr(token.line, token.text, args)
            return ast.VarRef(token.line, token.text)
        raise CompileError(
            f"expected expression, found {token.text!r}", token.line, token.column
        )

    def parse_new(self) -> ast.Expr:
        start = self.expect_keyword("new")
        # `new int[expr]` / `new bool[expr]` / `new Ident[expr]` are array
        # allocations; `new Ident { ... }` / `new Ident` allocate objects.
        if self.current.is_keyword("int") or self.current.is_keyword("bool"):
            element = self.parse_type_base()
            return self._parse_array_suffix(start, element)
        name = self.expect_ident().text
        if self.current.is_punct("["):
            return self._parse_array_suffix(start, ObjectType(name))
        initializers: list[tuple[str, ast.Expr]] = []
        if self.accept_punct("{"):
            while not self.accept_punct("}"):
                fname = self.expect_ident().text
                self.expect_punct("=")
                initializers.append((fname, self.parse_expression()))
                if not self.current.is_punct("}"):
                    self.expect_punct(",")
        return ast.NewObject(start.line, name, initializers)

    def parse_type_base(self) -> Type:
        if self.accept_keyword("int"):
            return INT
        if self.accept_keyword("bool"):
            return BOOL
        return ObjectType(self.expect_ident().text)

    def _parse_array_suffix(self, start: Token, element: Type) -> ast.Expr:
        self.expect_punct("[")
        length = self.parse_expression()
        self.expect_punct("]")
        return ast.NewArrayExpr(start.line, element, length)


def parse_module(source: str) -> ast.Module:
    """Parse MiniLang source into an AST module."""
    return Parser(source).parse_module()
