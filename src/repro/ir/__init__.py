"""Block-structured SSA intermediate representation.

The substrate the DBDS reproduction is built on: values, instructions,
basic blocks, function graphs, dominator/loop/frequency analyses, SSA
repair, verification and cloning.  See DESIGN.md for the mapping onto
the paper's Graal IR.
"""

from .block import Block
from .dominators import DominatorTree
from .frequency import BlockFrequencies
from .graph import Graph, Program
from .loops import Loop, LoopForest
from .nodes import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    Call,
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    Parameter,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
    Terminator,
    User,
    Value,
)
from .ops import BinOp, CmpOp, EvaluationTrap, eval_binop, eval_cmp, wrap64
from .types import (
    BOOL,
    INT,
    NULL,
    VOID,
    ArrayType,
    ClassDecl,
    ClassTable,
    FieldDecl,
    IntType,
    NullType,
    ObjectType,
    Type,
    VoidType,
)
from .verifier import VerificationError, verify_graph, verify_program

__all__ = [
    "ArithOp", "ArrayLength", "ArrayLoad", "ArrayStore", "ArrayType",
    "BinOp", "Block", "BlockFrequencies", "BOOL", "Call", "ClassDecl",
    "ClassTable", "CmpOp", "Compare", "Constant", "DominatorTree",
    "EvaluationTrap", "eval_binop", "eval_cmp", "FieldDecl", "Goto",
    "Graph", "If", "Instruction", "INT", "IntType", "LoadField",
    "LoadGlobal", "Loop", "LoopForest", "Neg", "New", "NewArray", "Not",
    "NULL", "NullType", "ObjectType", "Parameter", "Phi", "Program",
    "Return", "StoreField", "StoreGlobal", "Terminator", "Type", "User",
    "Value", "VerificationError", "verify_graph", "verify_program",
    "VOID", "VoidType", "wrap64",
]
