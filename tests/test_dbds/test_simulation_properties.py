"""Property tests for the simulation tier: read-only, deterministic,
and consistent with what the optimizer can actually deliver."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.costmodel.estimator import estimated_run_time
from repro.dbds.phase import DbdsConfig, DbdsPhase
from repro.dbds.simulation import SimulationTier
from repro.frontend.irbuilder import compile_source
from repro.interp.profile import apply_profile, profile_program
from repro.ir import verify_graph
from tests.generators import random_program


def simulate_all(program):
    results = {}
    for name, graph in program.functions.items():
        results[name] = SimulationTier(graph, program).run()
    return results


def fingerprint(results):
    return {
        name: [
            (r.pred.id, r.merge.id, round(r.benefit, 6), round(r.cost, 6),
             round(r.probability, 6))
            for r in rs
        ]
        for name, rs in results.items()
    }


class TestReadOnly:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_simulation_never_mutates(self, seed):
        program = compile_source(random_program(seed))
        before = {n: g.describe() for n, g in program.functions.items()}
        simulate_all(program)
        after = {n: g.describe() for n, g in program.functions.items()}
        assert after == before
        for graph in program.functions.values():
            verify_graph(graph)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_simulation_deterministic(self, seed):
        program = compile_source(random_program(seed))
        first = fingerprint(simulate_all(program))
        second = fingerprint(simulate_all(program))
        assert first == second

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_costs_and_probabilities_well_formed(self, seed):
        program = compile_source(random_program(seed))
        for results in simulate_all(program).values():
            for r in results:
                assert r.cost >= 0.0
                assert 0.0 <= r.probability <= 1.0 + 1e-9
                assert r.benefit >= 0.0 or r.reasons  # negative ⇒ explained


class TestEstimatorConsistency:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_dbds_never_increases_static_estimate(self, seed):
        """The phase only performs candidates it believes in; the static
        run-time estimate must not get worse."""
        program = compile_source(random_program(seed))
        collector = profile_program(program, "main", [[3]])
        apply_profile(program, collector)
        graph = program.function("main")
        from repro.opts.canonicalize import CanonicalizerPhase

        CanonicalizerPhase().run(graph)
        before = estimated_run_time(graph)
        DbdsPhase(program, DbdsConfig(paranoid=True)).run(graph)
        after = estimated_run_time(graph)
        # Tolerance: repair phis and edge blocks can add epsilon cost.
        assert after <= before * 1.05 + 5.0
