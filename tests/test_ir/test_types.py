"""Tests for the MiniLang type system."""

import pytest

from repro.ir.types import (
    BOOL,
    INT,
    NULL,
    VOID,
    ArrayType,
    ClassDecl,
    ClassTable,
    FieldDecl,
    NullType,
    ObjectType,
    assignable,
    join,
)


class TestBasicTypes:
    def test_primitives(self):
        assert INT.is_primitive()
        assert BOOL.is_primitive()
        assert not VOID.is_primitive()
        assert not INT.is_reference()

    def test_reference_types(self):
        assert ObjectType("A").is_reference()
        assert ArrayType(INT).is_reference()
        assert NULL.is_reference()

    def test_defaults(self):
        assert INT.default_value() == 0
        assert BOOL.default_value() is False
        assert ObjectType("A").default_value() is None
        assert ArrayType(BOOL).default_value() is None

    def test_equality_is_structural(self):
        assert ObjectType("A") == ObjectType("A")
        assert ObjectType("A") != ObjectType("B")
        assert ArrayType(INT) == ArrayType(INT)
        assert ArrayType(INT) != ArrayType(BOOL)
        assert ArrayType(ArrayType(INT)) == ArrayType(ArrayType(INT))

    def test_repr(self):
        assert repr(INT) == "int"
        assert repr(ArrayType(INT)) == "int[]"
        assert repr(ObjectType("Point")) == "Point"


class TestAssignability:
    def test_same_type(self):
        assert assignable(INT, INT)
        assert assignable(ObjectType("A"), ObjectType("A"))

    def test_mismatch(self):
        assert not assignable(INT, BOOL)
        assert not assignable(ObjectType("A"), ObjectType("B"))
        assert not assignable(INT, NullType())

    def test_null_into_references(self):
        assert assignable(ObjectType("A"), NullType())
        assert assignable(ArrayType(INT), NullType())
        assert not assignable(NullType(), ObjectType("A"))


class TestJoin:
    def test_identical(self):
        assert join(INT, INT) == INT

    def test_null_with_reference(self):
        assert join(NullType(), ObjectType("A")) == ObjectType("A")
        assert join(ObjectType("A"), NullType()) == ObjectType("A")

    def test_incompatible_raises(self):
        with pytest.raises(TypeError):
            join(INT, BOOL)
        with pytest.raises(TypeError):
            join(ObjectType("A"), ObjectType("B"))


class TestClassTable:
    def test_declare_and_lookup(self):
        table = ClassTable()
        decl = ClassDecl("A", [FieldDecl("x", INT), FieldDecl("next", ObjectType("A"))])
        ty = table.declare(decl)
        assert ty == ObjectType("A")
        assert table.lookup("A") is decl
        assert "A" in table
        assert table.names() == ["A"]

    def test_duplicate_class_rejected(self):
        table = ClassTable()
        table.declare(ClassDecl("A"))
        with pytest.raises(ValueError):
            table.declare(ClassDecl("A"))

    def test_field_queries(self):
        decl = ClassDecl("P", [FieldDecl("a", INT), FieldDecl("b", BOOL)])
        assert decl.field_type("a") == INT
        assert decl.field_type("b") == BOOL
        assert decl.has_field("a")
        assert not decl.has_field("c")
        with pytest.raises(KeyError):
            decl.field_type("c")
