"""Quickstart: compile a program with and without DBDS and compare.

This walks the paper's Figure 1 end to end:

    int foo(int x) { int phi; if (x > 0) phi = x; else phi = 0;
                     return 2 + phi; }

Duplicating the merge into the predecessors lets constant folding turn
the false branch into ``return 2``.

Run:  python examples/quickstart.py
"""

from repro import (
    BASELINE,
    DBDS,
    Interpreter,
    compile_and_profile,
    measure_performance,
)

SOURCE = """
fn foo(x: int) -> int {
  var phi: int;
  if (x > 0) { phi = x; } else { phi = 0; }
  return 2 + phi;
}
"""

PROFILE_RUNS = [[x] for x in range(-10, 11)]


def main() -> None:
    print("Source (Figure 1a):")
    print(SOURCE)

    # Compile twice: DBDS disabled (baseline) and enabled.
    baseline_program, baseline_report = compile_and_profile(
        SOURCE, "foo", PROFILE_RUNS, BASELINE
    )
    dbds_program, dbds_report = compile_and_profile(
        SOURCE, "foo", PROFILE_RUNS, DBDS
    )

    print("=== Optimized IR without duplication (baseline) ===")
    print(baseline_program.function("foo").describe())
    print()
    print("=== Optimized IR with DBDS (Figure 1c) ===")
    print(dbds_program.function("foo").describe())
    print()

    # Both must behave identically ...
    for x in (-5, 0, 3):
        base = Interpreter(baseline_program).run("foo", [x]).value
        dbds = Interpreter(dbds_program).run("foo", [x]).value
        assert base == dbds
        print(f"foo({x:>2}) = {dbds}")

    # ... but the duplicated version costs fewer simulated cycles.
    base_cycles, _ = measure_performance(baseline_program, "foo", PROFILE_RUNS)
    dbds_cycles, _ = measure_performance(dbds_program, "foo", PROFILE_RUNS)
    print()
    print(f"baseline cycles : {base_cycles:.0f}")
    print(f"DBDS cycles     : {dbds_cycles:.0f}")
    print(f"speedup         : {(base_cycles / dbds_cycles - 1) * 100:+.1f}%")
    print(f"duplications    : {dbds_report.total_duplications}")


if __name__ == "__main__":
    main()
