"""The execution-engine comparison matrix.

The VM backends exist to make the evaluation harness fast, so this
module answers the two questions that justify them: *how much faster*
is each engine than the reference tree-walking interpreter on the
headline (micro) suite, and *does it compute the same thing*.  Each
workload is compiled once, then the measured argument sets run on the
reference and on every VM engine under identical metering:

* ``vm-nofuse`` — the flat-tuple machine loops (the PR-5 VM), the
  ablation row that isolates what fusion+quickening buy;
* ``vm`` — the fused/quickened fast stream (the default VM);
* ``closure`` — the closure-compiling engine;
* ``megaunit`` — the whole-program compiler: one exec unit, registers
  in Python locals, direct calls (docs/VM.md);
* ``tiered`` — the adaptive machine (docs/TIERING.md): starts every
  function in the unfused baseline tier and promotes at the hotness
  threshold.  Promotions persist across ``reset()``, so the warmup
  pass tiers up the hot functions and the timed passes measure the
  promoted steady state.

The report carries per-workload wall times, per-engine speedup ratios,
a per-engine median, and an outcome-equality bit (value, trap,
globals, steps and cycles all have to agree on every engine).

``python -m repro bench --engine-report FILE`` writes :func:`to_json`
output — CI archives it as the ``BENCH_headline.json`` artifact and
fails the build when the ``vm`` median speedup degrades below its
floor, when fusion stops paying for itself against ``vm-nofuse``, or
when any engine diverges.  ``--engine-report-txt FILE`` persists the
human-readable table (``benchmarks/results/engine_report.txt`` in the
repository).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..interp.interpreter import observable_outcome
from ..obs.tracer import Tracer
from ..pipeline.cache import ArtifactCache, cache_key, make_entry
from ..pipeline.compiler import compile_and_profile, make_engine
from ..pipeline.config import CompilerConfig, DBDS
from ..vm import translate_program
from .workloads.suites import MICRO, SuiteProfile, Workload, generate_suite

#: the VM engines measured against the reference interpreter
MATRIX_ENGINES = ("vm-nofuse", "vm", "closure", "megaunit", "tiered")

#: timed passes over the measured argument sets per engine row
_TIMED_PASSES = 3


@dataclass
class EngineRow:
    """One workload across the whole engine matrix."""

    workload: str
    ref_seconds: float
    engine_seconds: dict[str, float]
    cycles: float
    steps: int
    outcomes_match: bool

    @property
    def vm_seconds(self) -> float:
        return self.engine_seconds["vm"]

    def speedup_of(self, engine: str) -> float:
        return self.ref_seconds / max(self.engine_seconds[engine], 1e-12)

    @property
    def speedup(self) -> float:
        """The headline ratio: reference over the default ``vm``."""
        return self.speedup_of("vm")


@dataclass
class EngineComparisonReport:
    """Per-workload engine timings plus the headline median speedups."""

    suite: str
    config: str
    engines: tuple = MATRIX_ENGINES
    rows: list[EngineRow] = field(default_factory=list)

    @property
    def median_speedup(self) -> float:
        """Median reference/vm ratio — the gated headline number."""
        return self.median_speedup_of("vm")

    def median_speedup_of(self, engine: str) -> float:
        if not self.rows:
            return 0.0
        return statistics.median(r.speedup_of(engine) for r in self.rows)

    @property
    def engine_medians(self) -> dict[str, float]:
        return {
            engine: self.median_speedup_of(engine) for engine in self.engines
        }

    @property
    def all_match(self) -> bool:
        return all(r.outcomes_match for r in self.rows)

    def format(self) -> str:
        lines = [f"=== engine comparison: {self.suite} / {self.config} ==="]
        header = f"{'benchmark':<14s}{'reference s':>14s}"
        for engine in self.engines:
            header += f"{engine:>12s}"
        header += f"{'match':>8s}"
        lines.append(header)
        for row in self.rows:
            line = f"{row.workload:<14s}{row.ref_seconds:>14.4f}"
            for engine in self.engines:
                line += f"{row.speedup_of(engine):>11.2f}x"
            line += f"{'yes' if row.outcomes_match else 'NO':>8s}"
            lines.append(line)
        medians = ", ".join(
            f"{engine} {median:.2f}x"
            for engine, median in self.engine_medians.items()
        )
        lines.append(
            f"median speedup vs reference: {medians}; "
            f"outcomes {'all match' if self.all_match else 'DIVERGE'}"
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "suite": self.suite,
            "config": self.config,
            "engines": list(self.engines),
            "median_speedup": self.median_speedup,
            "engine_medians": self.engine_medians,
            "all_match": self.all_match,
            "rows": [
                {
                    "workload": r.workload,
                    "ref_seconds": r.ref_seconds,
                    "vm_seconds": r.vm_seconds,
                    "engine_seconds": dict(r.engine_seconds),
                    "speedup": r.speedup,
                    "engine_speedups": {
                        engine: r.speedup_of(engine)
                        for engine in self.engines
                    },
                    "cycles": r.cycles,
                    "steps": r.steps,
                    "outcomes_match": r.outcomes_match,
                }
                for r in self.rows
            ],
        }


def _timed_runs(runner, entry: str, arg_sets) -> tuple[float, list, list]:
    """Wall-time the measured runs; returns (seconds, results, outcomes).

    One untimed warmup run precedes the clock: the engines are JITs in
    miniature (quickening rewrites sites on first execution, the
    closure engine compiles drivers on first frame entry), and the
    matrix measures steady-state execution, not warmup.  The warmup
    uses the first argument set and is discarded after a reset.  The
    clock then covers ``_TIMED_PASSES`` passes over the argument sets
    — single-pass times are a few milliseconds, small enough that
    scheduler noise would dominate the per-engine ratios.
    """
    results = []
    outcomes = []
    if arg_sets:
        runner.reset()
        runner.run(entry, list(arg_sets[0]))
    start = time.perf_counter()
    for _ in range(_TIMED_PASSES - 1):
        for args in arg_sets:
            runner.reset()
            runner.run(entry, list(args))
    for args in arg_sets:
        runner.reset()
        results.append(runner.run(entry, list(args)))
    elapsed = time.perf_counter() - start
    # Outcome extraction outside the timed region (deep_value walks heaps).
    for result in results:
        outcomes.append(
            (observable_outcome(result, runner.state), result.steps, result.cycles)
        )
    return elapsed, results, outcomes


def compare_engines_on(
    workload: Workload,
    config: CompilerConfig = DBDS,
    cache: Optional[ArtifactCache] = None,
    engines: Sequence[str] = MATRIX_ENGINES,
) -> EngineRow:
    """Compile one workload, run its measured args on every engine."""
    key = None
    cached = cache.get(
        key := cache_key(
            workload.source, config,
            entry=workload.entry, profile_args=workload.profile_args,
        )
    ) if cache is not None else None
    if cached is not None:
        program = cached.program()
        bytecode = cached.bytecode() or translate_program(program)
    else:
        tracer = Tracer() if cache is not None else None
        program, report = compile_and_profile(
            workload.source, workload.entry, workload.profile_args, config,
            tracer=tracer,
        )
        bytecode = translate_program(program)
        if cache is not None:
            cache.put(
                make_entry(
                    key, program, report,
                    events=tracer.events, counters=tracer.counters,
                    bytecode=bytecode,
                )
            )
    reference = make_engine("reference", program)
    ref_seconds, _ref_results, ref_outcomes = _timed_runs(
        reference, workload.entry, workload.measure_args
    )
    engine_seconds: dict[str, float] = {}
    vm_results: list = []
    outcomes_match = True
    for engine in engines:
        runner = make_engine(engine, program, bytecode=bytecode)
        seconds, results, outcomes = _timed_runs(
            runner, workload.entry, workload.measure_args
        )
        engine_seconds[engine] = seconds
        outcomes_match = outcomes_match and outcomes == ref_outcomes
        if engine == "vm":
            vm_results = results
    return EngineRow(
        workload=workload.name,
        ref_seconds=ref_seconds,
        engine_seconds=engine_seconds,
        cycles=sum(r.cycles for r in vm_results),
        steps=sum(r.steps for r in vm_results),
        outcomes_match=outcomes_match,
    )


def compare_engines(
    profile: SuiteProfile = MICRO,
    config: CompilerConfig = DBDS,
    seed: int = 0,
    workloads: Optional[list[Workload]] = None,
    cache: Optional[ArtifactCache] = None,
    engines: Sequence[str] = MATRIX_ENGINES,
) -> EngineComparisonReport:
    """The headline comparison: every workload of ``profile`` on the
    reference interpreter and every VM engine under ``config``."""
    workloads = workloads if workloads is not None else generate_suite(profile, seed)
    report = EngineComparisonReport(
        suite=profile.suite, config=config.name, engines=tuple(engines)
    )
    for workload in workloads:
        report.rows.append(
            compare_engines_on(workload, config, cache, engines=engines)
        )
    return report
