"""Trace sinks: JSONL serialization and schema validation.

The wire format is one JSON object per line (JSONL), one object per
:class:`~repro.obs.tracer.Event`:

``{"name": str, "kind": "event"|"span", "ts": float, "dur": float|null,
"depth": int, "attrs": {...}}``

A trace file ends with one synthetic ``counters`` record carrying the
tracer's counter table, so a trace is self-contained.  The schema is
documented in ``docs/OBSERVABILITY.md``; :func:`validate_trace`
enforces it (CI runs it against a smoke-compiled trace).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Union

from .tracer import KIND_EVENT, KIND_SPAN, Event, Tracer

#: attrs every ``dbds.decision`` event must carry
DECISION_REQUIRED_ATTRS = (
    "graph",
    "merge",
    "pred",
    "benefit",
    "cost",
    "probability",
    "accepted",
    "reason",
)

#: attrs every ``dbds.candidate`` event must carry
CANDIDATE_REQUIRED_ATTRS = ("graph", "merge", "pred", "benefit", "cost", "probability")

#: attrs every ``analysis.violation`` event must carry
VIOLATION_REQUIRED_ATTRS = ("phase", "graph", "checker", "severity", "message")

#: attrs every ``analysis.blame`` event must carry
BLAME_REQUIRED_ATTRS = ("phase", "graph", "violations")

#: attrs every ``cache.hit``/``cache.miss``/``cache.store`` event must carry
CACHE_REQUIRED_ATTRS = ("key",)

#: attrs every ``cache.evict`` event must carry
CACHE_EVICT_REQUIRED_ATTRS = ("key", "reason")

#: attrs every ``batch.worker`` event must carry
BATCH_WORKER_REQUIRED_ATTRS = ("path", "key", "ok")

#: attrs every ``tier.promote`` event must carry
TIER_PROMOTE_REQUIRED_ATTRS = (
    "function",
    "trigger",
    "calls",
    "backedges",
    "hotness",
    "threshold",
)

#: attrs every ``tier.compile`` event must carry
TIER_COMPILE_REQUIRED_ATTRS = ("function", "seconds", "fused_sites", "cached")

#: attrs every ``vm.fallback`` event must carry (an engine declining a
#: frame and degrading to a slower engine, e.g. megaunit -> closure)
VM_FALLBACK_REQUIRED_ATTRS = ("engine", "fallback", "reason")

#: the counter-table trailer record's name
COUNTERS_RECORD = "counters"


class TraceSchemaError(ValueError):
    """A trace record violated the event schema."""


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def event_to_dict(event: Event) -> dict[str, Any]:
    return {
        "name": event.name,
        "kind": event.kind,
        "ts": event.ts,
        "dur": event.dur,
        "depth": event.depth,
        "attrs": event.attrs,
    }


def event_from_dict(record: dict[str, Any]) -> Event:
    return Event(
        name=record["name"],
        kind=record.get("kind", KIND_EVENT),
        ts=record.get("ts", 0.0),
        dur=record.get("dur"),
        depth=record.get("depth", 0),
        attrs=dict(record.get("attrs", {})),
    )


def write_jsonl(
    source: Union[Tracer, Iterable[Event]],
    path: Union[str, Path],
) -> int:
    """Write a trace file; returns the number of records written.

    Accepts a tracer (events + counter trailer) or a bare event
    iterable (no trailer).
    """
    counters = source.counters if isinstance(source, Tracer) else None
    events = source.events if isinstance(source, Tracer) else source
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event)) + "\n")
            written += 1
        if counters is not None:
            fh.write(
                json.dumps(
                    {
                        "name": COUNTERS_RECORD,
                        "kind": KIND_EVENT,
                        "ts": 0.0,
                        "dur": None,
                        "depth": 0,
                        "attrs": dict(counters),
                    }
                )
                + "\n"
            )
            written += 1
    return written


def read_jsonl(path: Union[str, Path]) -> list[Event]:
    """Parse a trace file back into events (counter trailer included)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def trace_counters(events: Iterable[Event]) -> dict[str, int]:
    """Recover the counter table from a parsed trace (empty if absent)."""
    for event in events:
        if event.name == COUNTERS_RECORD:
            return dict(event.attrs)
    return {}


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_record(record: dict[str, Any]) -> list[str]:
    """Problems with one raw JSONL record (empty list = valid)."""
    problems = []
    if not isinstance(record.get("name"), str) or not record.get("name"):
        problems.append("missing or non-string 'name'")
    kind = record.get("kind")
    if kind not in (KIND_EVENT, KIND_SPAN):
        problems.append(f"bad 'kind' {kind!r}")
    if not isinstance(record.get("ts"), (int, float)):
        problems.append("missing or non-numeric 'ts'")
    dur = record.get("dur")
    if kind == KIND_SPAN:
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append("span without a non-negative 'dur'")
    elif dur is not None:
        problems.append("point event with a 'dur'")
    attrs = record.get("attrs")
    if not isinstance(attrs, dict):
        problems.append("missing 'attrs' object")
        return problems
    name = record.get("name")
    if name == "dbds.decision":
        for key in DECISION_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"dbds.decision missing attr {key!r}")
    elif name == "dbds.candidate":
        for key in CANDIDATE_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"dbds.candidate missing attr {key!r}")
    elif name == "analysis.violation":
        for key in VIOLATION_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"analysis.violation missing attr {key!r}")
    elif name == "analysis.blame":
        for key in BLAME_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"analysis.blame missing attr {key!r}")
    elif name in ("cache.hit", "cache.miss", "cache.store"):
        for key in CACHE_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"{name} missing attr {key!r}")
    elif name == "cache.evict":
        for key in CACHE_EVICT_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"cache.evict missing attr {key!r}")
    elif name == "batch.worker":
        for key in BATCH_WORKER_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"batch.worker missing attr {key!r}")
    elif name == "tier.promote":
        for key in TIER_PROMOTE_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"tier.promote missing attr {key!r}")
    elif name == "tier.compile":
        for key in TIER_COMPILE_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"tier.compile missing attr {key!r}")
    elif name == "vm.fallback":
        for key in VM_FALLBACK_REQUIRED_ATTRS:
            if key not in attrs:
                problems.append(f"vm.fallback missing attr {key!r}")
    elif name == "phase" and kind == KIND_SPAN and "phase" not in attrs:
        problems.append("phase span missing attr 'phase'")
    return problems


def validate_trace(records: Iterable[dict[str, Any]]) -> int:
    """Validate raw records; returns the count or raises
    :class:`TraceSchemaError` naming every offending line."""
    count = 0
    failures = []
    for index, record in enumerate(records, start=1):
        problems = validate_record(record)
        if problems:
            failures.append(f"record {index}: " + "; ".join(problems))
        count += 1
    if failures:
        raise TraceSchemaError("\n".join(failures))
    return count


def validate_trace_file(path: Union[str, Path]) -> int:
    """Validate a JSONL trace file; returns the record count."""

    def records():
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)

    return validate_trace(records())
