"""Experiment P1 — Section 8 (future work): path-based duplication.

"The current optimization tier implementation cannot duplicate over
multiple merges along paths although the simulation tier can simulate
along paths.  We want to conduct experiments evaluating ... if we can
increase peak performance even further."

This bench runs that experiment: the ``path-dbds`` configuration
extends every kept duplication along the ensuing Goto chain through
further merges (re-simulating each hop) and is compared against plain
DBDS on the micro and Scala suites.

Shape checks: path duplication never loses performance versus plain
DBDS on the suite geomean, and performs at least as many duplications.
"""

from _support import record_figure

from repro.bench.harness import measure_workload
from repro.bench.stats import format_percent, geometric_mean
from repro.bench.workloads.suites import MICRO, SCALA_DACAPO, generate_suite
from repro.pipeline.config import BASELINE, DBDS, PATH_DBDS


def _run():
    rows = []
    for profile in (MICRO, SCALA_DACAPO):
        for workload in generate_suite(profile):
            base = measure_workload(workload, BASELINE)
            plain = measure_workload(workload, DBDS)
            path = measure_workload(workload, PATH_DBDS)
            rows.append((f"{profile.suite}/{workload.name}", base, plain, path))
    return rows


def test_path_duplication_gains(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "=== Path duplication (Section 8 future work) ===",
        f"{'workload':<26s}{'dbds perf':>11s}{'path perf':>11s}"
        f"{'dbds dups':>11s}{'path dups':>11s}",
    ]
    plain_ratios, path_ratios = [], []
    plain_dups = path_dups = 0
    for name, base, plain, path in rows:
        plain_speed = (base.cycles / plain.cycles - 1) * 100
        path_speed = (base.cycles / path.cycles - 1) * 100
        plain_ratios.append(base.cycles / plain.cycles)
        path_ratios.append(base.cycles / path.cycles)
        plain_dups += plain.duplications
        path_dups += path.duplications
        lines.append(
            f"{name:<26s}{format_percent(plain_speed):>11s}"
            f"{format_percent(path_speed):>11s}"
            f"{plain.duplications:>11d}{path.duplications:>11d}"
        )
    plain_mean = (geometric_mean(plain_ratios) - 1) * 100
    path_mean = (geometric_mean(path_ratios) - 1) * 100
    lines.append(
        f"geomean: dbds {format_percent(plain_mean)}  "
        f"path-dbds {format_percent(path_mean)}  "
        f"(dups {plain_dups} vs {path_dups})"
    )
    record_figure("path_duplication", "\n".join(lines))
    assert path_dups >= plain_dups
    assert path_mean > plain_mean - 2.0  # never meaningfully worse
