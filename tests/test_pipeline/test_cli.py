"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = """
fn foo(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 0; }
  return 2 + p;
}
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) { acc = acc + foo(i - 3); i = i + 1; }
  return acc;
}
"""

TRAPPING = """
fn main(n: int) -> int { return 10 / n; }
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mini"
    path.write_text(PROGRAM)
    return path


class TestRun:
    def test_run_prints_result(self, source_file, capsys):
        code = main(["run", str(source_file), "--args", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "result" in out and "176" in out
        assert "simulated cycles" in out

    def test_run_all_configs(self, source_file, capsys):
        for config in ("baseline", "dbds", "dupalot", "backtracking", "path-dbds"):
            code = main(["run", str(source_file), "--args", "20", "--config", config])
            assert code == 0
            assert "176" in capsys.readouterr().out

    def test_trap_reported(self, tmp_path, capsys):
        path = tmp_path / "trap.mini"
        path.write_text(TRAPPING)
        code = main(["run", str(path), "--args", "0"])
        assert code == 1
        assert "trap" in capsys.readouterr().err

    def test_custom_entry(self, source_file, capsys):
        code = main(["run", str(source_file), "--entry", "foo", "--args", "5"])
        assert code == 0
        assert "7" in capsys.readouterr().out


class TestCompile:
    def test_metrics_table(self, source_file, capsys):
        code = main(["compile", str(source_file), "--config", "dbds"])
        assert code == 0
        out = capsys.readouterr().out
        assert "foo" in out and "main" in out and "size" in out

    def test_dump_prints_ir(self, source_file, capsys):
        code = main(["compile", str(source_file), "--dump"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fn main" in out and "entry:" in out


class TestBench:
    def test_bench_suite_table(self, capsys, monkeypatch):
        # Shrink the suite for test speed.
        import repro.bench.workloads.suites as suites
        import dataclasses

        tiny = dataclasses.replace(
            suites.MICRO, benchmark_names=suites.MICRO.benchmark_names[:1]
        )
        monkeypatch.setitem(suites.ALL_SUITES, "micro", tiny)
        code = main(["bench", "--suite", "micro"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Geometric mean" in out


class TestObservabilityFlags:
    def test_compile_json(self, source_file, capsys):
        import json

        code = main(["compile", str(source_file), "--config", "dbds", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["config"] == "dbds"
        assert {u["function"] for u in report["units"]} == {"foo", "main"}
        assert report["totals"]["compile_time"] > 0

    def test_compile_trace_out_valid_jsonl(self, source_file, tmp_path, capsys):
        from repro.obs import read_jsonl, validate_trace_file

        out = tmp_path / "trace.jsonl"
        code = main(
            ["compile", str(source_file), "--config", "dbds", "--trace-out", str(out)]
        )
        assert code == 0
        assert validate_trace_file(out) > 0
        events = read_jsonl(out)
        phases = {
            e.attrs.get("phase") for e in events if e.name == "phase"
        }
        assert "dbds" in phases and "canonicalize" in phases
        decisions = [e for e in events if e.name == "dbds.decision"]
        assert decisions
        assert all("benefit" in e.attrs for e in decisions)

    def test_run_profile_compile(self, source_file, capsys):
        code = main(["run", str(source_file), "--args", "20", "--profile-compile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "176" in out and "compile profile" in out

    def test_trace_verb(self, source_file, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["trace", str(source_file), "--decisions", "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "compile profile" in text and "DBDS decisions" in text
        assert out.exists()

    def test_bench_trace_out_json(self, tmp_path, capsys, monkeypatch):
        import dataclasses
        import json

        import repro.bench.workloads.suites as suites

        tiny = dataclasses.replace(
            suites.MICRO, benchmark_names=suites.MICRO.benchmark_names[:1]
        )
        monkeypatch.setitem(suites.ALL_SUITES, "micro", tiny)
        out = tmp_path / "suite.json"
        code = main(["bench", "--suite", "micro", "--trace-out", str(out)])
        assert code == 0
        assert "Compile-time breakdown by phase" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["suite"] == "micro"
        assert data["rows"][0]["configs"]["dbds"]["phase_times"]


class TestProfileAndMetrics:
    def test_profile_verb_prints_reconciled_tables(self, source_file, capsys):
        code = main(["profile", str(source_file), "--args", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "result          : 176" in out
        assert "opcode" in out and "function" in out and "block" in out
        assert "-> exact" in out

    def test_profile_trap_reported(self, tmp_path, capsys):
        path = tmp_path / "trap.mini"
        path.write_text(TRAPPING)
        code = main(["profile", str(path), "--args", "0"])
        assert code == 1
        assert "trap" in capsys.readouterr().err

    def test_profile_collapsed_and_json_outputs(self, source_file, tmp_path):
        import json

        folded = tmp_path / "stacks.folded"
        blob = tmp_path / "profile.json"
        code = main(
            [
                "profile", str(source_file), "--args", "20",
                "--collapsed", str(folded), "--json", str(blob),
            ]
        )
        assert code == 0
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:  # flamegraph.pl input: "a;b;c <int>"
            frames, weight = line.rsplit(" ", 1)
            assert frames and weight.isdigit()
        data = json.loads(blob.read_text())
        assert data["schema"] == 1
        assert data["total_cycles"] == sum(data["stacks"].values())

    def test_run_profile_run_flag(self, source_file, capsys):
        code = main(["run", str(source_file), "--args", "20", "--profile-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "176" in out and "reconciliation" in out

    def test_metrics_out_json(self, source_file, tmp_path):
        import json

        out = tmp_path / "metrics.json"
        code = main(
            ["run", str(source_file), "--args", "20", "--metrics-out", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert data["counters"]["repro_compile_units_total"][""] == 2
        assert "repro_dbds_decisions_total" in data["counters"]

    def test_metrics_prometheus_text(self, source_file, tmp_path):
        out = tmp_path / "metrics.prom"
        code = main(
            ["run", str(source_file), "--args", "20", "--metrics-prom", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert "# TYPE repro_compile_units_total counter" in text
        assert "# TYPE repro_compile_phase_seconds histogram" in text


class TestTrajectoryCli:
    @pytest.fixture
    def tiny_suite(self, monkeypatch):
        import dataclasses

        import repro.bench.workloads.suites as suites

        tiny = dataclasses.replace(
            suites.MICRO, benchmark_names=suites.MICRO.benchmark_names[:1]
        )
        monkeypatch.setitem(suites.ALL_SUITES, "micro", tiny)

    def test_append_then_check_passes(self, tiny_suite, tmp_path, capsys):
        import json

        path = tmp_path / "traj.json"
        code = main(["bench", "--suite", "micro", "--append-trajectory", str(path)])
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data["entries"]) == 1
        code = main(
            [
                "bench", "--suite", "micro",
                "--check-regression", str(path),
                "--append-trajectory", str(path),
            ]
        )
        assert code == 0
        assert "regression check: ok" in capsys.readouterr().err
        assert len(json.loads(path.read_text())["entries"]) == 2

    def test_regression_fails_and_skips_append(self, tiny_suite, tmp_path, capsys):
        import json

        path = tmp_path / "traj.json"
        assert main(["bench", "--suite", "micro", "--append-trajectory", str(path)]) == 0
        # Doctor the committed history: pretend the past was 2× faster.
        data = json.loads(path.read_text())
        for config in data["entries"][0]["configs"].values():
            config["median_cycles"] /= 2.0
        path.write_text(json.dumps(data))
        code = main(
            [
                "bench", "--suite", "micro",
                "--check-regression", str(path),
                "--append-trajectory", str(path),
            ]
        )
        assert code == 1
        assert "regression:" in capsys.readouterr().err
        # The failing run must not be committed to the history.
        assert len(json.loads(path.read_text())["entries"]) == 1


class TestArgparse:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_config_rejected(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", str(source_file), "--config", "nonsense"])


class TestWorkloadCommand:
    def test_prints_source(self, capsys):
        code = main(["workload", "--suite", "micro", "--name", "akkaPP"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fn main" in out and "micro/akkaPP" in out

    def test_default_name(self, capsys):
        assert main(["workload", "--suite", "octane"]) == 0
        assert "octane/box2d" in capsys.readouterr().out

    def test_unknown_name_rejected(self, capsys):
        assert main(["workload", "--suite", "micro", "--name", "nope"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err
