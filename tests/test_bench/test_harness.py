"""Tests for the evaluation harness (on a reduced suite for speed)."""

import dataclasses

import pytest

from repro.bench.harness import (
    BenchmarkRow,
    Measurement,
    format_suite_report,
    measure_workload,
    run_suite,
)
from repro.bench.workloads.suites import MICRO, generate_workload
from repro.pipeline.config import BASELINE, DBDS, DUPALOT


@pytest.fixture(scope="module")
def mini_suite_report():
    profile = dataclasses.replace(
        MICRO, benchmark_names=MICRO.benchmark_names[:2]
    )
    return run_suite(profile)


class TestMeasureWorkload:
    def test_measurement_fields(self):
        workload = generate_workload(MICRO, "charcount")
        m = measure_workload(workload, BASELINE)
        assert m.cycles > 0
        assert m.code_size > 0
        assert m.compile_time > 0
        assert m.duplications == 0
        assert m.config == "baseline"
        # perf_counter wall clock covers compile + measured run
        assert m.wall_time >= m.compile_time
        # per-phase breakdown only on request
        assert m.phase_times == {}

    def test_phase_profiling_on_request(self):
        workload = generate_workload(MICRO, "charcount")
        m = measure_workload(workload, DBDS, profile_phases=True)
        assert "dbds" in m.phase_times and "canonicalize" in m.phase_times
        assert all(seconds >= 0 for seconds in m.phase_times.values())

    def test_dbds_measurement_duplicates(self):
        workload = generate_workload(MICRO, "charcount")
        m = measure_workload(workload, DBDS)
        assert m.duplications > 0


class TestSuiteReport:
    def test_rows_cover_benchmarks(self, mini_suite_report):
        assert len(mini_suite_report.rows) == 2
        assert mini_suite_report.config_names == ["dbds", "dupalot"]

    def test_normalization(self, mini_suite_report):
        row = mini_suite_report.rows[0]
        speedup = row.speedup("dbds")
        manual = (row.baseline.cycles / row.configs["dbds"].cycles - 1) * 100
        assert speedup == pytest.approx(manual)

    def test_geomeans_computable(self, mini_suite_report):
        for config in ("dbds", "dupalot"):
            # Values exist and are finite.
            assert isinstance(mini_suite_report.geomean_speedup(config), float)
            assert isinstance(mini_suite_report.geomean_compile_time(config), float)
            assert isinstance(mini_suite_report.geomean_code_size(config), float)

    def test_dbds_never_slower_on_this_suite(self, mini_suite_report):
        assert mini_suite_report.geomean_speedup("dbds") > -1.0

    def test_format_contains_all_rows(self, mini_suite_report):
        text = format_suite_report(mini_suite_report)
        for row in mini_suite_report.rows:
            assert row.workload in text
        assert "Geometric mean" in text
        assert "dbds" in text and "dupalot" in text
