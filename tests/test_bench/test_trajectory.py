"""Tests for the committed perf trajectory (bench/trajectory.py)."""

import json

import pytest

from repro.bench.harness import run_suite
from repro.bench.trajectory import (
    TRAJECTORY_SCHEMA_VERSION,
    append_trajectory,
    check_regression,
    last_comparable_entry,
    load_trajectory,
    trajectory_entry,
)
from repro.bench.workloads.suites import ALL_SUITES
from repro.pipeline.config import CONFIGURATIONS


def make_entry(
    suite="micro",
    seed=0,
    cycles=1000.0,
    fingerprint="f0",
    recorded_at="2026-01-01T00:00:00+00:00",
):
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "recorded_at": recorded_at,
        "suite": suite,
        "seed": seed,
        "repro_version": "test",
        "configs": {
            "dbds": {
                "fingerprint": fingerprint,
                "median_cycles": cycles,
                "geomean_speedup_percent": 10.0,
                "median_compile_time": 0.01,
            }
        },
        "vm_median_speedup": None,
        "phase_times": {},
    }


# ----------------------------------------------------------------------
# Entry construction from a real suite run
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def micro_entry():
    report = run_suite(ALL_SUITES["micro"], seed=0)
    return trajectory_entry(
        report, seed=0, vm_median_speedup=42.0, recorded_at="pinned"
    )


def test_entry_layout(micro_entry):
    assert micro_entry["schema"] == TRAJECTORY_SCHEMA_VERSION
    assert micro_entry["suite"] == "micro"
    assert micro_entry["seed"] == 0
    assert micro_entry["recorded_at"] == "pinned"
    assert micro_entry["vm_median_speedup"] == 42.0
    assert set(micro_entry["configs"]) == {"baseline", "dbds", "dupalot"}
    for name, config in micro_entry["configs"].items():
        assert config["median_cycles"] > 0
        assert config["fingerprint"] == CONFIGURATIONS[name].fingerprint()
    assert micro_entry["configs"]["baseline"]["geomean_speedup_percent"] == 0.0
    assert set(micro_entry["phase_times"]) == {"baseline", "dbds", "dupalot"}


def test_entry_is_json_serializable(micro_entry):
    json.dumps(micro_entry)


# ----------------------------------------------------------------------
# Load / append
# ----------------------------------------------------------------------
def test_load_missing_file_is_empty_trajectory(tmp_path):
    trajectory = load_trajectory(tmp_path / "absent.json")
    assert trajectory == {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "entries": [],
    }


def test_append_roundtrips(tmp_path):
    path = tmp_path / "traj.json"
    append_trajectory(path, make_entry(cycles=1000.0))
    trajectory = append_trajectory(path, make_entry(cycles=990.0))
    assert len(trajectory["entries"]) == 2
    assert load_trajectory(path) == trajectory


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "traj.json"
    path.write_text(json.dumps({"schema": 999, "entries": []}))
    with pytest.raises(ValueError):
        load_trajectory(path)


# ----------------------------------------------------------------------
# Comparability and gating
# ----------------------------------------------------------------------
def test_last_comparable_matches_suite_and_seed():
    trajectory = {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "entries": [
            make_entry(seed=0, recorded_at="t0"),
            make_entry(seed=1, recorded_at="t1"),
            make_entry(seed=0, recorded_at="t2"),
        ],
    }
    found = last_comparable_entry(trajectory, make_entry(seed=0))
    assert found["recorded_at"] == "t2"
    assert last_comparable_entry(trajectory, make_entry(seed=9)) is None


def trajectory_with(*entries):
    return {"schema": TRAJECTORY_SCHEMA_VERSION, "entries": list(entries)}


def test_empty_history_passes():
    assert check_regression(trajectory_with(), make_entry()) == []


def test_within_threshold_passes():
    history = trajectory_with(make_entry(cycles=1000.0))
    assert check_regression(history, make_entry(cycles=1040.0), 0.05) == []


def test_regression_beyond_threshold_fails():
    history = trajectory_with(make_entry(cycles=1000.0))
    failures = check_regression(history, make_entry(cycles=1100.0), 0.05)
    assert len(failures) == 1
    assert "micro/dbds" in failures[0]
    assert "+10.0%" in failures[0]


def test_regression_message_names_the_config_fingerprint():
    # The suite name alone is ambiguous once several configs share a
    # suite: the failure must name the offending config's fingerprint
    # so the regression can be traced to its exact constants.
    history = trajectory_with(make_entry(cycles=1000.0, fingerprint="f0"))
    failures = check_regression(history, make_entry(cycles=1100.0, fingerprint="f0"), 0.05)
    assert len(failures) == 1
    assert "config fingerprint f0" in failures[0]


def test_regression_message_flags_missing_fingerprint():
    history = trajectory_with(make_entry(cycles=1000.0, fingerprint=None))
    failures = check_regression(history, make_entry(cycles=1100.0, fingerprint=None), 0.05)
    assert len(failures) == 1
    assert "config fingerprint unknown" in failures[0]


def test_improvement_always_passes():
    history = trajectory_with(make_entry(cycles=1000.0))
    assert check_regression(history, make_entry(cycles=600.0), 0.05) == []


def test_changed_fingerprint_is_a_new_baseline():
    history = trajectory_with(make_entry(cycles=1000.0, fingerprint="old"))
    worse_but_retuned = make_entry(cycles=5000.0, fingerprint="new")
    assert check_regression(history, worse_but_retuned, 0.05) == []


def test_different_seed_never_gates():
    history = trajectory_with(make_entry(seed=0, cycles=1000.0))
    assert check_regression(history, make_entry(seed=1, cycles=9000.0)) == []


def test_gates_against_most_recent_comparable():
    history = trajectory_with(
        make_entry(cycles=2000.0, recorded_at="t0"),
        make_entry(cycles=1000.0, recorded_at="t1"),
    )
    # 1500 regresses vs the latest (1000) even though it beats t0.
    failures = check_regression(history, make_entry(cycles=1500.0), 0.05)
    assert len(failures) == 1


def test_committed_trajectory_gates_a_real_run(micro_entry, tmp_path):
    path = tmp_path / "traj.json"
    append_trajectory(path, micro_entry)
    trajectory = load_trajectory(path)
    # An identical re-run passes...
    assert check_regression(trajectory, dict(micro_entry)) == []
    # ...and an inflated dbds median fails.
    worse = json.loads(json.dumps(micro_entry))
    worse["configs"]["dbds"]["median_cycles"] *= 1.2
    assert len(check_regression(trajectory, worse, 0.05)) == 1
