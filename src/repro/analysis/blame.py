"""Per-phase invariant checking with phase-blame diagnostics.

A :class:`PhaseGuard` snapshots the graph around every ``Phase.run()``
(hooked in :class:`repro.opts.base.Phase`) and runs the checker
registry afterwards.  When a phase breaks an invariant the guard
raises (or, in keep-going mode, collects) a :class:`PhaseBlameError`
that names the offending phase and checker and carries a unified diff
of the IR before and after the phase — the *phase-blame diagnostic*.

The guard is ambient, mirroring the tracer: instrumentation sites call
:func:`current_guard` instead of threading a guard argument through
every phase constructor, and :func:`use_guard` installs one for the
duration of a compilation.  Failures are also emitted through the
ambient tracer as structured ``analysis.violation`` / ``analysis.blame``
events, and the check time itself is recorded as an ``ir-check`` phase
span so ``--profile-compile`` shows analysis overhead.
"""

from __future__ import annotations

import difflib
from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence

from ..ir.graph import Graph
from ..obs.tracer import current_tracer
from .core import CheckReport, run_checkers
from . import checkers as _checkers  # noqa: F401 - populate the registry

#: ``--check-ir`` modes
CHECK_OFF = "off"
CHECK_BOUNDARIES = "boundaries"
CHECK_EACH_PHASE = "each-phase"
CHECK_MODES = (CHECK_OFF, CHECK_BOUNDARIES, CHECK_EACH_PHASE)


class PhaseBlameError(Exception):
    """A phase left the IR in a state that violates an invariant."""

    def __init__(
        self,
        phase: str,
        graph: str,
        report: CheckReport,
        diff: str = "",
    ) -> None:
        self.phase = phase
        self.graph = graph
        self.report = report
        self.diff = diff
        super().__init__(self.format_blame())

    @property
    def checkers(self) -> list[str]:
        """Names of the checkers that fired, most violations first."""
        counts: dict[str, int] = {}
        for violation in self.report.errors():
            counts[violation.checker] = counts.get(violation.checker, 0) + 1
        return sorted(counts, key=lambda name: -counts[name])

    def format_blame(self, max_violations: int = 8) -> str:
        errors = self.report.errors()
        lines = [
            f"phase {self.phase!r} broke {len(errors)} IR invariant(s) "
            f"in {self.graph}:"
        ]
        for violation in errors[:max_violations]:
            lines.append(f"  {violation.format()}")
        if len(errors) > max_violations:
            lines.append(f"  ... and {len(errors) - max_violations} more")
        if self.diff:
            lines.append("IR before/after the blamed phase:")
            lines.append(self.diff)
        return "\n".join(lines)


def _excerpt_diff(
    before: Optional[str], after: str, max_lines: int
) -> str:
    """Unified diff of the IR around the blamed phase (or a plain
    excerpt at a boundary check, where there is no before-state)."""
    after_lines = after.splitlines()
    if before is None:
        shown = after_lines[:max_lines]
        if len(after_lines) > max_lines:
            shown.append(f"... ({len(after_lines) - max_lines} more lines)")
        return "\n".join("  " + line for line in shown)
    diff = list(
        difflib.unified_diff(
            before.splitlines(),
            after_lines,
            fromfile="before",
            tofile="after",
            lineterm="",
        )
    )
    if len(diff) > max_lines:
        diff = diff[:max_lines] + [f"... ({len(diff) - max_lines} more lines)"]
    return "\n".join("  " + line for line in diff)


class PhaseGuard:
    """Checks graph invariants around phases and assigns blame.

    ``fail_fast=True`` raises :class:`PhaseBlameError` at the first
    failing phase; ``fail_fast=False`` (keep-going) collects every
    failure in :attr:`failures` and lets compilation continue, so one
    CI run reports all violations.
    """

    def __init__(
        self,
        mode: str = CHECK_EACH_PHASE,
        *,
        program=None,
        fail_fast: bool = True,
        checkers: Optional[Iterable[str]] = None,
        disable: Sequence[str] = (),
        max_diff_lines: int = 40,
    ) -> None:
        if mode not in CHECK_MODES:
            raise ValueError(f"unknown check mode {mode!r} (choose from {CHECK_MODES})")
        self.mode = mode
        self.program = program
        self.fail_fast = fail_fast
        self.checkers = list(checkers) if checkers is not None else None
        self.disable = tuple(disable)
        self.max_diff_lines = max_diff_lines
        #: collected blame errors (keep-going mode; fail-fast raises)
        self.failures: list[PhaseBlameError] = []
        #: number of checked phase/boundary points
        self.checks = 0

    # ------------------------------------------------------------------
    @property
    def per_phase(self) -> bool:
        """Whether every ``Phase.run()`` is bracketed with checks."""
        return self.mode == CHECK_EACH_PHASE

    def before_phase(self, phase: str, graph: Graph) -> Optional[str]:
        """Snapshot hook called before a phase runs; returns the
        snapshot token to pass back to :meth:`after_phase`."""
        if not self.per_phase:
            return None
        return graph.describe()

    def after_phase(
        self, phase: str, graph: Graph, before: Optional[str]
    ) -> None:
        """Check hook called after a phase ran."""
        if self.per_phase:
            self._check(phase, graph, before)

    def check_boundary(self, label: str, graph: Graph) -> None:
        """Explicit check at a pipeline boundary (both non-off modes)."""
        if self.mode != CHECK_OFF:
            self._check(label, graph, None)

    # ------------------------------------------------------------------
    def _check(self, phase: str, graph: Graph, before: Optional[str]) -> None:
        tracer = current_tracer()
        self.checks += 1
        # The check itself appears as its own pipeline phase so compile
        # profiles attribute analysis overhead explicitly.
        with tracer.span("phase", phase="ir-check", graph=graph.name):
            report = run_checkers(
                graph,
                self.program,
                checkers=self.checkers,
                disable=self.disable,
                fail_fast=False,
            )
        if report.ok:
            return
        diff = _excerpt_diff(before, graph.describe(), self.max_diff_lines)
        error = PhaseBlameError(phase, graph.name, report, diff)
        for violation in report.errors():
            tracer.event(
                "analysis.violation",
                phase=phase,
                graph=graph.name,
                checker=violation.checker,
                severity=violation.severity.value,
                block=violation.block,
                message=violation.message,
            )
        tracer.event(
            "analysis.blame",
            phase=phase,
            graph=graph.name,
            checkers=error.checkers,
            violations=len(report.errors()),
        )
        tracer.count("analysis.blame")
        self.failures.append(error)
        if self.fail_fast:
            raise error


# ----------------------------------------------------------------------
# Ambient guard, mirroring repro.obs.tracer's ambient tracer.
# ----------------------------------------------------------------------
_current_guard: Optional[PhaseGuard] = None


def current_guard() -> Optional[PhaseGuard]:
    """The guard phase instrumentation should report to (or None)."""
    return _current_guard


@contextmanager
def use_guard(guard: Optional[PhaseGuard]) -> Iterator[Optional[PhaseGuard]]:
    """Install ``guard`` as the ambient phase guard for the duration."""
    global _current_guard
    previous = _current_guard
    _current_guard = guard
    try:
        yield guard
    finally:
        _current_guard = previous
