"""LIR-level checkers: structure, liveness, register allocation.

The back end has its own invariants — block/terminator shape over
integer block ids, every virtual register defined before use, and an
allocation that never assigns one physical register to two overlapping
live intervals.  These run through the same registry/report machinery
as the IR checkers, under the ``lir`` scope.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..backend.lir import (
    Immediate,
    LirBranch,
    LirFunction,
    LirJump,
    LirReturn,
    PReg,
    StackSlot,
    VReg,
)
from ..backend.liveness import compute_liveness
from ..backend.regalloc import AllocationResult
from .core import (
    SCOPE_LIR,
    CheckReport,
    _ContextBase,
    _execute,
    _select,
    checker,
)

_TERMINATORS = (LirJump, LirBranch, LirReturn)


class LirCheckerContext(_ContextBase):
    """One LIR check run: the function plus the allocation (if any)."""

    def __init__(
        self,
        function: LirFunction,
        allocation: Optional[AllocationResult] = None,
    ) -> None:
        super().__init__(function.name)
        self.function = function
        self.allocation = allocation


def _successor_ids(instruction) -> list[int]:
    if isinstance(instruction, LirJump):
        return [instruction.target]
    if isinstance(instruction, LirBranch):
        return [instruction.true_target, instruction.false_target]
    return []


@checker("lir-structure", scope=SCOPE_LIR, description="LIR block/edge shape")
def check_lir_structure(ctx: LirCheckerContext) -> None:
    function = ctx.function
    if function.entry not in function.blocks:
        ctx.report(f"entry block L{function.entry} does not exist")
        return
    for block_id, block in function.blocks.items():
        where = f"L{block_id}"
        if block.id != block_id:
            ctx.report(f"{where} stored under mismatched id {block.id}", block=where)
        if not block.instructions:
            ctx.report(f"{where} is empty (no terminator)", block=where)
            continue
        if not isinstance(block.terminator, _TERMINATORS):
            ctx.report(
                f"{where} does not end in a terminator "
                f"({block.terminator!r})",
                block=where,
            )
        for ins in block.instructions[:-1]:
            if isinstance(ins, _TERMINATORS):
                ctx.report(
                    f"terminator {ins!r} in the middle of {where}", block=where
                )
        targets = _successor_ids(block.terminator)
        if sorted(targets) != sorted(block.successors):
            ctx.report(
                f"{where} successors {block.successors} disagree with its "
                f"terminator targets {targets}",
                block=where,
            )
        for succ_id in block.successors:
            succ = function.blocks.get(succ_id)
            if succ is None:
                ctx.report(
                    f"{where} targets missing block L{succ_id}", block=where
                )
            elif block_id not in succ.predecessors:
                ctx.report(
                    f"edge {where}->L{succ_id} missing from predecessors",
                    block=where,
                )
        for pred_id in block.predecessors:
            pred = function.blocks.get(pred_id)
            if pred is None or block_id not in pred.successors:
                ctx.report(
                    f"L{pred_id} listed as predecessor of {where} but has "
                    "no such edge",
                    block=where,
                )


def _structure_ok(function: LirFunction) -> bool:
    """Precondition probe for the dataflow checkers: when the block
    graph itself is broken, lir-structure owns the failure and liveness
    over dangling edges would only crash or produce noise."""
    if function.entry not in function.blocks:
        return False
    for block in function.blocks.values():
        if not block.instructions:
            return False
        if not isinstance(block.terminator, _TERMINATORS):
            return False
        for neighbour in (*block.successors, *block.predecessors):
            if neighbour not in function.blocks:
                return False
    return True


@checker("lir-liveness", scope=SCOPE_LIR, description="vregs defined before use")
def check_lir_liveness(ctx: LirCheckerContext) -> None:
    """Backward liveness must not carry any virtual register into the
    entry block except the parameters: a vreg live-in at entry is a use
    without a reaching definition."""
    function = ctx.function
    if not _structure_ok(function):
        return
    has_vregs = any(
        isinstance(op, VReg)
        for block in function.blocks.values()
        for ins in block.instructions
        for op in (*ins.uses(), *ins.defs())
    )
    if not has_vregs:
        return  # post-allocation code: lir-allocation owns this shape
    live_in, _ = compute_liveness(function)
    params = set(function.param_regs)
    for vreg in sorted(
        live_in.get(function.entry, ()), key=lambda v: v.id
    ):
        if vreg not in params:
            ctx.report(
                f"virtual register {vreg!r} is used but never defined "
                "(live into the entry block)",
                block=f"L{function.entry}",
            )


@checker("lir-allocation", scope=SCOPE_LIR, description="allocation consistency")
def check_lir_allocation(ctx: LirCheckerContext) -> None:
    function = ctx.function
    allocation = ctx.allocation
    if allocation is not None:
        # No interval may be left without a location.
        for interval in allocation.intervals:
            if interval.vreg not in allocation.mapping:
                ctx.report(
                    f"virtual register {interval.vreg!r} has a live interval "
                    "but no allocated location"
                )
        # Two overlapping intervals must not share a physical register.
        by_register: dict[int, list] = {}
        for interval in allocation.intervals:
            location = allocation.mapping.get(interval.vreg)
            if isinstance(location, PReg):
                by_register.setdefault(location.index, []).append(interval)
        for index, intervals in sorted(by_register.items()):
            intervals.sort(key=lambda i: i.start)
            for first, second in zip(intervals, intervals[1:]):
                if first.overlaps(second):
                    ctx.report(
                        f"overlapping live intervals {first!r} and {second!r} "
                        f"share register r{index}"
                    )
        # Frame accounting must cover every assigned stack slot.
        for vreg, location in allocation.mapping.items():
            if (
                isinstance(location, StackSlot)
                and location.index >= function.frame_slots
            ):
                ctx.report(
                    f"{vreg!r} spilled to {location!r} beyond the recorded "
                    f"frame size {function.frame_slots}"
                )
        # Allocated code must not mention virtual registers any more.
        for block in function.blocks.values():
            for ins in block.instructions:
                for op in (*ins.uses(), *ins.defs()):
                    if isinstance(op, VReg):
                        ctx.report(
                            f"unallocated virtual register {op!r} remains "
                            f"in {ins!r}",
                            block=f"L{block.id}",
                        )
    else:
        # Without an allocation result the only checkable property is
        # that operands are still uniformly virtual (pre-allocation).
        for block in function.blocks.values():
            for ins in block.instructions:
                kinds = {
                    type(op)
                    for op in (*ins.uses(), *ins.defs())
                    if not isinstance(op, Immediate)
                }
                if VReg in kinds and (PReg in kinds or StackSlot in kinds):
                    ctx.report(
                        f"{ins!r} mixes virtual and allocated operands",
                        block=f"L{block.id}",
                    )


def run_lir_checkers(
    function: LirFunction,
    allocation: Optional[AllocationResult] = None,
    *,
    checkers: Optional[Iterable[str]] = None,
    disable: Sequence[str] = (),
    fail_fast: bool = False,
) -> CheckReport:
    """Run LIR checkers over one lowered function."""
    selected = _select(checkers, disable, SCOPE_LIR)
    ctx = LirCheckerContext(function, allocation)
    return _execute(ctx, selected, fail_fast, CheckReport(graph=function.name))
