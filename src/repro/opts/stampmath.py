"""Stamp arithmetic: range propagation and symbolic compare evaluation.

Shared by canonicalization (fold what stamps prove), conditional
elimination (derive facts from dominating branches) and the DBDS
simulator (evaluate ACs under branch-refined stamps).
"""

from __future__ import annotations

from typing import Optional

from ..ir.ops import BinOp, CmpOp, wrap64
from ..ir.stamps import (
    ANY_INT,
    BoolStamp,
    INT_MAX,
    INT_MIN,
    IntStamp,
    ObjectStamp,
    Stamp,
)


def _saturate(lo: int, hi: int) -> IntStamp:
    """Clamp a candidate range to i64; widen to top on wrap ambiguity."""
    if lo < INT_MIN or hi > INT_MAX:
        return ANY_INT
    return IntStamp(lo, hi)


def arith_stamp(op: BinOp, x: IntStamp, y: IntStamp) -> IntStamp:
    """Forward range propagation for a binary arithmetic op."""
    if x.is_empty() or y.is_empty():
        return IntStamp(1, 0)  # empty
    if op is BinOp.ADD:
        return _saturate(x.lo + y.lo, x.hi + y.hi)
    if op is BinOp.SUB:
        return _saturate(x.lo - y.hi, x.hi - y.lo)
    if op is BinOp.MUL:
        corners = [a * b for a in (x.lo, x.hi) for b in (y.lo, y.hi)]
        return _saturate(min(corners), max(corners))
    if op is BinOp.DIV:
        if y.lo > 0 or y.hi < 0:  # divisor never zero
            corners = []
            for a in (x.lo, x.hi):
                for b in (y.lo, y.hi):
                    if b != 0:
                        q = abs(a) // abs(b)
                        corners.append(q if (a >= 0) == (b >= 0) else -q)
            if corners:
                return _saturate(min(corners), max(corners))
        return ANY_INT
    if op is BinOp.MOD:
        if y.lo > 0:
            bound = y.hi - 1
            lo = 0 if x.lo >= 0 else -bound
            return _saturate(lo, bound if x.hi > 0 else 0)
        return ANY_INT
    if op is BinOp.AND:
        if x.lo >= 0 or y.lo >= 0:
            # Non-negative mask bounds the result.
            hi = min(x.hi if x.lo >= 0 else INT_MAX, y.hi if y.lo >= 0 else INT_MAX)
            return IntStamp(0, hi)
        return ANY_INT
    if op in (BinOp.SHR,):
        if x.lo >= 0 and 0 <= y.lo == y.hi <= 63:
            return IntStamp(x.lo >> y.lo, x.hi >> y.lo)
        if x.lo >= 0:
            return IntStamp(0, x.hi)
        return ANY_INT
    if op is BinOp.USHR:
        if x.lo >= 0 and 0 <= y.lo == y.hi <= 63:
            return IntStamp(x.lo >> y.lo, x.hi >> y.lo)
        return IntStamp(0, INT_MAX) if x.lo >= 0 else ANY_INT
    if op is BinOp.SHL:
        if 0 <= y.lo == y.hi <= 63:
            return _saturate(x.lo << y.lo, x.hi << y.lo) if x.lo >= 0 else ANY_INT
        return ANY_INT
    return ANY_INT


def compare_stamps(op: CmpOp, x: Stamp, y: Stamp) -> Optional[bool]:
    """Statically evaluate ``x OP y`` from stamps; None when unknown."""
    if isinstance(x, IntStamp) and isinstance(y, IntStamp):
        return _compare_int(op, x, y)
    if isinstance(x, BoolStamp) and isinstance(y, BoolStamp):
        cx, cy = x.as_constant(), y.as_constant()
        if cx is not None and cy is not None:
            return (cx[0] == cy[0]) if op is CmpOp.EQ else (cx[0] != cy[0])
        return None
    if isinstance(x, ObjectStamp) and isinstance(y, ObjectStamp):
        if op not in (CmpOp.EQ, CmpOp.NE):
            return None
        if x.always_null and y.always_null:
            return op is CmpOp.EQ
        if (x.always_null and y.non_null) or (y.always_null and x.non_null):
            return op is CmpOp.NE
        return None
    return None


def _compare_int(op: CmpOp, x: IntStamp, y: IntStamp) -> Optional[bool]:
    if x.is_empty() or y.is_empty():
        return None
    if op is CmpOp.EQ:
        if x.lo == x.hi == y.lo == y.hi:
            return True
        if x.hi < y.lo or y.hi < x.lo:
            return False
        return None
    if op is CmpOp.NE:
        result = _compare_int(CmpOp.EQ, x, y)
        return None if result is None else not result
    if op is CmpOp.LT:
        if x.hi < y.lo:
            return True
        if x.lo >= y.hi:
            return False
        return None
    if op is CmpOp.LE:
        if x.hi <= y.lo:
            return True
        if x.lo > y.hi:
            return False
        return None
    if op is CmpOp.GT:
        return _compare_int(CmpOp.LT, y, x)
    if op is CmpOp.GE:
        return _compare_int(CmpOp.LE, y, x)
    return None


def refine_by_compare(
    op: CmpOp, x: IntStamp, y: IntStamp, outcome: bool
) -> tuple[IntStamp, IntStamp]:
    """Narrow both operand stamps assuming ``x OP y == outcome``.

    This is how a dominating condition adds information for conditional
    elimination: inside the true branch of ``x < y`` we may assume
    ``x <= y.hi - 1`` and ``y >= x.lo + 1``.
    """
    if not outcome:
        op = op.negate()
    if op is CmpOp.EQ:
        joined = x.join(y)
        return joined, joined
    if op is CmpOp.NE:
        # Only narrows when one side is a constant at a range edge.
        cx, cy = x.as_constant(), y.as_constant()
        nx, ny = x, y
        if cy is not None:
            if y.lo == x.lo:
                nx = IntStamp(x.lo + 1, x.hi)
            elif y.hi == x.hi:
                nx = IntStamp(x.lo, x.hi - 1)
        if cx is not None:
            if x.lo == y.lo:
                ny = IntStamp(y.lo + 1, y.hi)
            elif x.hi == y.hi:
                ny = IntStamp(y.lo, y.hi - 1)
        return nx, ny
    if op is CmpOp.LT:
        return (
            x.join(IntStamp(INT_MIN, min(y.hi - 1, INT_MAX))),
            y.join(IntStamp(max(x.lo + 1, INT_MIN), INT_MAX)),
        )
    if op is CmpOp.LE:
        return x.join(IntStamp(INT_MIN, y.hi)), y.join(IntStamp(x.lo, INT_MAX))
    if op is CmpOp.GT:
        ny, nx = refine_by_compare(CmpOp.LT, y, x, True)
        return nx, ny
    if op is CmpOp.GE:
        ny, nx = refine_by_compare(CmpOp.LE, y, x, True)
        return nx, ny
    return x, y


def power_of_two_exponent(value: int) -> Optional[int]:
    """k such that value == 2**k, or None."""
    if value <= 0 or value & (value - 1):
        return None
    return value.bit_length() - 1
