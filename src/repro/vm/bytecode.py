"""Bytecode containers and the instruction encoding.

One translated function is a flat tuple of **pre-decoded instruction
tuples**.  Every tuple shares a fixed prefix::

    (opcode, cycle_cost, source_node, dest_register, ...operands)

* ``opcode`` — an integer index into the machine's handler table;
* ``cycle_cost`` — the node's cost-model cycles, baked at translation
  time so metered runs add a float instead of calling ``cycles_of``;
* ``source_node`` — the originating IR node (kept for the observer
  hook, ``ProfileCollector.record_branch`` and diagnostics);
* ``dest_register`` — index into the flat register file, or ``-1``
  for terminators (which produce no value and are never observed).

Operand fields after the prefix are opcode-specific; the layouts are
documented per-opcode below and in docs/VM.md.  Branch operands are
**edge descriptors** ``(target_pc, moves, phis, target_block)``:
``moves`` is the sequentialized parallel-copy list lowered from the
target's phis for this edge, ``phis`` pairs each phi node with its
destination register (observer mode only), ``target_block`` feeds
``ProfileCollector.record_block``.
"""

from __future__ import annotations

from typing import Any, Optional

from ..ir.ops import BinOp, CmpOp

# ----------------------------------------------------------------------
# Opcodes.  The numeric values index the machine's handler table; keep
# them dense and stable within one process (they are also pickled into
# cached artifacts, so bump the cache schema when reordering).
# ----------------------------------------------------------------------
(
    OP_ADD,
    OP_SUB,
    OP_MUL,
    OP_DIV,
    OP_MOD,
    OP_AND,
    OP_OR,
    OP_XOR,
    OP_SHL,
    OP_SHR,
    OP_USHR,
    OP_EQ,
    OP_NE,
    OP_LT,
    OP_LE,
    OP_GT,
    OP_GE,
    OP_NOT,
    OP_NEG,
    OP_NEW,
    OP_LOAD_FIELD,
    OP_STORE_FIELD,
    OP_LOAD_GLOBAL,
    OP_STORE_GLOBAL,
    OP_NEW_ARRAY,
    OP_ARRAY_LOAD,
    OP_ARRAY_STORE,
    OP_ARRAY_LENGTH,
    OP_CALL,
    OP_GOTO,
    OP_IF,
    OP_RETURN,
) = range(32)

OPCODE_NAMES = (
    "add", "sub", "mul", "div", "mod", "and", "or", "xor",
    "shl", "shr", "ushr",
    "eq", "ne", "lt", "le", "gt", "ge",
    "not", "neg", "new",
    "load_field", "store_field", "load_global", "store_global",
    "new_array", "array_load", "array_store", "array_length",
    "call", "goto", "if", "return",
)

#: BinOp -> opcode (arithmetic handlers inline ``eval_binop`` semantics)
ARITH_OPCODES = {
    BinOp.ADD: OP_ADD,
    BinOp.SUB: OP_SUB,
    BinOp.MUL: OP_MUL,
    BinOp.DIV: OP_DIV,
    BinOp.MOD: OP_MOD,
    BinOp.AND: OP_AND,
    BinOp.OR: OP_OR,
    BinOp.XOR: OP_XOR,
    BinOp.SHL: OP_SHL,
    BinOp.SHR: OP_SHR,
    BinOp.USHR: OP_USHR,
}

#: CmpOp -> opcode (EQ/NE keep the reference identity semantics)
CMP_OPCODES = {
    CmpOp.EQ: OP_EQ,
    CmpOp.NE: OP_NE,
    CmpOp.LT: OP_LT,
    CmpOp.LE: OP_LE,
    CmpOp.GT: OP_GT,
    CmpOp.GE: OP_GE,
}


class BytecodeFunction:
    """One translated function: flat code plus its register frame shape.

    ``template`` is the ready-made register file — length ``nregs``,
    constants already materialized in their slots — copied per call
    (``regs = template[:]``) with the arguments overwriting slots
    ``0..nparams-1``.  ``entry_block`` is the IR entry block, recorded
    at frame entry by profiling runs exactly like the reference
    interpreter's block-entry hook.

    ``xcode`` is the fused fast stream built by :mod:`repro.vm.fusion`:
    a mutable *list* parallel to ``code`` where every tuple carries a
    trailing step weight (1 for plain ops, 2 for superinstructions) and
    quickening (:mod:`repro.vm.quicken`) rewrites sites in place on a
    function's first execution.  ``blocks`` records the basic-block
    layout as ``(start_pc, instruction_count, block_name)`` spans, and
    ``const_base``/``const_count`` delimit the interned-constant
    register range — both feed fusion mining, constant baking and the
    closure engine's block-at-a-time lowering.  The extended fields are
    **class-level defaults** so schema-v2 pickles (plain flat-tuple
    bytecode) rehydrate cleanly and simply skip the fast paths.
    """

    xcode: Optional[list] = None
    quickened: bool = True
    blocks: tuple = ()
    const_base: int = 0
    const_count: int = 0

    def __init__(self, name: str, nparams: int) -> None:
        self.name = name
        self.nparams = nparams
        self.nregs = 0
        self.code: tuple = ()
        self.template: list = []
        self.entry_block: Optional[Any] = None

    def __repr__(self) -> str:
        return (
            f"<BytecodeFunction {self.name}: {len(self.code)} ops, "
            f"{self.nregs} regs>"
        )


class BytecodeProgram:
    """A whole translated program.

    ``globals_init`` is the flattened global-variable initialization —
    ``(name, default_value)`` pairs with the defaults already computed
    (defaults are immutable, so one pair list serves every reset).
    """

    def __init__(
        self,
        functions: dict[str, BytecodeFunction],
        globals_init: tuple,
    ) -> None:
        self.functions = functions
        self.globals_init = globals_init

    def function(self, name: str) -> BytecodeFunction:
        return self.functions[name]

    def __repr__(self) -> str:
        return f"<BytecodeProgram: {len(self.functions)} function(s)>"


# ----------------------------------------------------------------------
# Disassembler (debugging aid; also keeps docs/VM.md examples honest).
# ----------------------------------------------------------------------
def _format_edge(edge: tuple) -> str:
    pc, moves, _phis, block = edge
    copies = "".join(f" r{d}<-r{s}" for d, s in moves)
    return f"@{pc}({block.name}){copies}"


def _format_ins(pc: int, ins: tuple) -> str:
    op = ins[0]
    name = OPCODE_NAMES[op]
    dest = f"r{ins[3]} = " if ins[3] >= 0 else ""
    if op == OP_GOTO:
        body = _format_edge(ins[4])
    elif op == OP_IF:
        body = f"r{ins[4]} ? {_format_edge(ins[5])} : {_format_edge(ins[6])}"
    elif op == OP_RETURN:
        body = f"r{ins[4]}" if ins[4] >= 0 else ""
    elif op == OP_CALL:
        args = ", ".join(f"r{r}" for r in ins[5])
        body = f"{ins[4].name}({args})"
    else:
        body = " ".join(
            f"r{o}" if isinstance(o, int) else repr(o) for o in ins[4:]
        )
    return f"  {pc:4d}: {dest}{name} {body}".rstrip()


def _format_xins(pc: int, ins: tuple) -> str:
    # Lazy import: opspec depends on this module.
    from .opspec import BASE_FAMILIES, OPCODE_SPECS

    spec = OPCODE_SPECS.get(ins[0])
    if spec is None:
        return f"  {pc:4d}: ?op{ins[0]} {ins[1:]!r}"
    if spec.family in BASE_FAMILIES:
        return _format_ins(pc, ins[:-1])
    operands = " ".join(
        f"r{o}" if isinstance(o, int) else "<edge>" if isinstance(o, tuple)
        and o and isinstance(o[0], int) and len(o) == 4 else repr(o)
        for o in ins[3:-2]
    )
    return f"  {pc:4d}: {spec.name} [{spec.family} w={ins[-1]}] {operands}"


def disassemble(fn: BytecodeFunction, stream: str = "code") -> str:
    """Human-readable listing of one translated function.

    ``stream="xcode"`` lists the fused/quickened fast stream instead
    (falling back to ``fn.code`` when no fast stream exists), tagging
    superinstructions with their family and step weight.
    """
    lines = [f"fn {fn.name}: {fn.nparams} param(s), {fn.nregs} reg(s)"]
    if stream == "xcode" and fn.xcode is not None:
        for pc, ins in enumerate(fn.xcode):
            lines.append(_format_xins(pc, ins))
    else:
        for pc, ins in enumerate(fn.code):
            lines.append(_format_ins(pc, ins))
    return "\n".join(lines)
