"""Tests for the benchmark workload generators."""

import pytest

from repro.bench.workloads.kernels import KERNEL_BUILDERS, build_kernel
from repro.bench.workloads.suites import (
    ALL_SUITES,
    JAVA_DACAPO,
    MICRO,
    OCTANE,
    SCALA_DACAPO,
    generate_suite,
    generate_workload,
    workload_by_name,
)
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import verify_program

import random


class TestKernels:
    @pytest.mark.parametrize("kind", sorted(KERNEL_BUILDERS))
    def test_each_kernel_compiles_and_runs(self, kind):
        rng = random.Random(kind)
        kernel = build_kernel(kind, "k0", rng, class_id=0)
        source = (
            kernel.declarations
            + kernel.function
            + f"fn main(i: int) -> int {{ return {kernel.call}; }}\n"
        )
        program = compile_source(source)
        verify_program(program)
        for i in (0, 1, 7, 50):
            result = Interpreter(program).run("main", [i])
            assert not result.trapped, f"{kind} trapped on {i}: {result.trap}"

    def test_kernel_determinism(self):
        a = build_kernel("constant-folding", "k", random.Random(5), 0)
        b = build_kernel("constant-folding", "k", random.Random(5), 0)
        assert a == b


class TestSuites:
    def test_benchmark_names_match_paper(self):
        assert "jython" in JAVA_DACAPO.benchmark_names
        assert "xalan" in JAVA_DACAPO.benchmark_names
        assert len(JAVA_DACAPO.benchmark_names) == 10  # paper excludes 4
        assert "scalac" in SCALA_DACAPO.benchmark_names
        assert len(SCALA_DACAPO.benchmark_names) == 12
        assert "akkaPP" in MICRO.benchmark_names
        assert "raytrace" in OCTANE.benchmark_names
        assert len(OCTANE.benchmark_names) == 14

    def test_generation_deterministic(self):
        a = generate_workload(MICRO, "wordcount", seed=3)
        b = generate_workload(MICRO, "wordcount", seed=3)
        assert a.source == b.source

    def test_different_seeds_differ(self):
        a = generate_workload(MICRO, "wordcount", seed=0)
        b = generate_workload(MICRO, "wordcount", seed=1)
        assert a.source != b.source

    def test_different_benchmarks_differ(self):
        a = generate_workload(MICRO, "akkaPP")
        b = generate_workload(MICRO, "wordcount")
        assert a.source != b.source

    @pytest.mark.parametrize("suite", sorted(ALL_SUITES))
    def test_first_benchmark_of_each_suite_runs(self, suite):
        profile = ALL_SUITES[suite]
        workload = generate_workload(profile, profile.benchmark_names[0])
        program = compile_source(workload.source)
        verify_program(program)
        result = Interpreter(program).run(
            workload.entry, list(workload.profile_args[0])
        )
        assert not result.trapped

    def test_workload_by_name(self):
        w = workload_by_name("micro", "charcount")
        assert w.name == "charcount"
        assert w.suite == "micro"

    def test_suite_generation_complete(self):
        workloads = generate_suite(MICRO)
        assert [w.name for w in workloads] == list(MICRO.benchmark_names)

    def test_suite_mixes_respected(self):
        # scala workloads actually draw from the boxing-heavy mix
        workloads = generate_suite(SCALA_DACAPO)
        kinds = {k for w in workloads for k in w.kinds}
        assert "partial-escape-analysis" in kinds
        assert "type-check" in kinds


class TestArrayBoxKernel:
    def test_allocations_removed_by_dbds(self):
        """The Octane-style array-box kernel exists to exercise PEA in a
        hot loop: after DBDS the per-iteration allocations must be gone
        from the optimized unit."""
        import random

        from repro.ir import New
        from repro.pipeline.compiler import compile_and_profile
        from repro.pipeline.config import BASELINE, DBDS

        kernel = build_kernel("array-box", "k0", random.Random(1), class_id=0)
        source = (
            kernel.declarations
            + kernel.function
            + "fn main(i: int) -> int { return k0(i); }\n"
        )

        def allocation_count(config):
            program, _ = compile_and_profile(source, "main", [[6]], config)
            return sum(
                1
                for ins in (
                    i
                    for b in program.function("main").blocks
                    for i in b.instructions
                )
                if isinstance(ins, New)
            )

        assert allocation_count(DBDS) < allocation_count(BASELINE)

    def test_array_box_speedup(self):
        import random

        from repro.bench.harness import measure_workload
        from repro.bench.workloads.suites import Workload
        from repro.pipeline.config import BASELINE, DBDS

        kernel = build_kernel("array-box", "k0", random.Random(5), class_id=0)
        source = (
            kernel.declarations
            + kernel.function
            + "fn main(n: int) -> int {\n"
            "  var acc: int = 0;\n"
            "  var i: int = 0;\n"
            "  while (i < n) { acc = acc + k0(i); i = i + 1; }\n"
            "  return acc;\n}\n"
        )
        workload = Workload(
            name="abox", suite="test", source=source,
            profile_args=[[10]], measure_args=[[30]],
        )
        base = measure_workload(workload, BASELINE)
        dbds = measure_workload(workload, DBDS)
        assert dbds.cycles < base.cycles
