"""Benchmark-suite conftest (helpers live in _support.py)."""
