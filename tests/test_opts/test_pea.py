"""Tests for partial escape analysis / scalar replacement."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import HeapObject, Interpreter
from repro.ir import New, verify_graph
from repro.opts.pea import PartialEscapeAnalysisPhase


def count_allocations(graph):
    return sum(
        1 for b in graph.blocks for i in b.instructions if isinstance(i, New)
    )


def run_phase(source: str, name: str = "f"):
    program = compile_source(source)
    graph = program.function(name)
    replaced = PartialEscapeAnalysisPhase(program).run(graph)
    verify_graph(graph)
    return program, graph, replaced


class TestScalarReplacement:
    def test_simple_allocation_removed(self):
        program, graph, replaced = run_phase(
            """
class A { x: int; }
fn f(v: int) -> int {
  var a: A = new A { x = v };
  return a.x + 1;
}
"""
        )
        assert replaced == 1
        assert count_allocations(graph) == 0
        assert Interpreter(program).run("f", [41]).value == 42

    def test_default_field_value_forwarded(self):
        program, graph, replaced = run_phase(
            "class A { x: int; }\nfn f() -> int { var a: A = new A; return a.x; }"
        )
        assert replaced == 1
        assert Interpreter(program).run("f", []).value == 0

    def test_store_then_load_chain(self):
        program, graph, replaced = run_phase(
            """
class A { x: int; y: int; }
fn f(v: int) -> int {
  var a: A = new A { x = v };
  a.y = a.x * 2;
  return a.x + a.y;
}
"""
        )
        assert replaced == 1
        assert Interpreter(program).run("f", [10]).value == 30

    def test_null_compare_folds(self):
        program, graph, replaced = run_phase(
            """
class A { x: int; }
fn f(v: int) -> int {
  var a: A = new A { x = v };
  if (a == null) { return 0 - 1; }
  return a.x;
}
"""
        )
        assert replaced == 1
        assert count_allocations(graph) == 0
        assert Interpreter(program).run("f", [5]).value == 5

    def test_loads_in_dominated_branches(self):
        program, graph, replaced = run_phase(
            """
class A { x: int; }
fn f(v: int) -> int {
  var a: A = new A { x = v };
  if (v > 0) { return a.x; }
  return a.x - 1;
}
"""
        )
        assert replaced == 1
        assert Interpreter(program).run("f", [3]).value == 3
        assert Interpreter(program).run("f", [-3]).value == -4


class TestEscapes:
    def test_phi_use_escapes(self):
        """Listing 3: the allocation flowing into a phi must be kept —
        this is exactly what duplication later rescues."""
        _, graph, replaced = run_phase(
            """
class A { x: int; }
fn f(a: A) -> int {
  var p: A;
  if (a == null) { p = new A { x = 0 }; } else { p = a; }
  return p.x;
}
"""
        )
        assert replaced == 0
        assert count_allocations(graph) == 1

    def test_return_escapes(self):
        _, graph, replaced = run_phase(
            "class A { x: int; }\nfn f() -> A { return new A { x = 1 }; }"
        )
        assert replaced == 0

    def test_call_argument_escapes(self):
        _, graph, replaced = run_phase(
            """
class A { x: int; }
fn g(a: A) -> int { return a.x; }
fn f() -> int { return g(new A { x = 2 }); }
"""
        )
        assert replaced == 0

    def test_store_into_other_object_escapes(self):
        _, graph, replaced = run_phase(
            """
class A { x: int; }
class Holder { a: A; }
fn f(h: Holder) -> int {
  var a: A = new A { x = 3 };
  h.a = a;
  return a.x;
}
"""
        )
        # `a` escapes into h; only h's own load may be optimized.
        assert count_allocations(graph) == 1

    def test_global_store_escapes(self):
        _, graph, replaced = run_phase(
            """
class A { x: int; }
global keep: A;
fn f() -> int {
  var a: A = new A { x = 3 };
  keep = a;
  return a.x;
}
"""
        )
        assert count_allocations(graph) == 1

    def test_compare_against_object_escapes(self):
        _, graph, replaced = run_phase(
            """
class A { x: int; }
fn f(other: A) -> bool {
  var a: A = new A;
  return a == other;
}
"""
        )
        assert count_allocations(graph) == 1

    def test_load_beyond_merge_bails(self):
        _, graph, replaced = run_phase(
            """
class A { x: int; }
fn f(v: int) -> int {
  var a: A = new A { x = 1 };
  if (v > 0) { a.x = 2; } else { a.x = 3; }
  return a.x;
}
"""
        )
        # The load sits after a merge where the field state differs; our
        # simplified PEA keeps the allocation (documented in DESIGN.md).
        assert replaced == 0


class TestSemantics:
    def test_behaviour_preserved_across_phase(self):
        source = """
class P { a: int; b: int; }
fn f(x: int, y: int) -> int {
  var p: P = new P { a = x };
  p.b = y;
  var q: P = new P { a = p.a + p.b };
  if (q == null) { return 0; }
  return q.a * 2;
}
"""
        program = compile_source(source)
        expected = [
            Interpreter(program).run("f", [i, j]).value
            for i in range(-2, 3)
            for j in range(-2, 3)
        ]
        replaced = PartialEscapeAnalysisPhase(program).run(program.function("f"))
        assert replaced == 2
        verify_graph(program.function("f"))
        actual = [
            Interpreter(program).run("f", [i, j]).value
            for i in range(-2, 3)
            for j in range(-2, 3)
        ]
        assert actual == expected
