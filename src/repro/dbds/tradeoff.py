"""The DBDS trade-off tier (Section 5.4).

Implements the paper's ``shouldDuplicate`` heuristic verbatim:

    (b × p × BS) > c  ∧  (cs < MS)  ∧  (cs + c < is × IB)

with the published constants — BenefitScale BS = 256 (derived
empirically by the authors), code-size IncreaseBudget IB = 1.5 (150 %),
and a maximum compilation-unit size MS standing in for HotSpot's
``JVMCINMethodSizeLimit``.  Candidates are ranked by probability-scaled
benefit so the most promising pairs consume the budget first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs.metrics import current_registry
from ..obs.tracer import Event, Tracer
from .simulation import SimulationResult

#: BS — how much more cost than benefit we tolerate (paper: 256).
BENEFIT_SCALE = 256.0
#: IB — max code size growth per compilation unit (paper: 1.5 = 150%).
INCREASE_BUDGET = 1.5
#: MS — absolute compilation-unit size cap (HotSpot install limit
#: stand-in, in cost-model size units).
MAX_UNIT_SIZE = 20_000.0


@dataclass
class TradeOffConfig:
    """Tunable constants of the heuristic (ablation benches sweep them)."""

    benefit_scale: float = BENEFIT_SCALE
    increase_budget: float = INCREASE_BUDGET
    max_unit_size: float = MAX_UNIT_SIZE
    #: when False, probabilities are ignored (ablation A1)
    use_probability: bool = True


#: canonical rejection wordings (shared by explain and decision events)
REASON_THRESHOLD = "benefit below cost threshold"
REASON_UNIT_SIZE = "compilation unit at max size"
REASON_BUDGET = "code-size budget exhausted"
REASON_INVALIDATED = "invalidated by earlier duplication"
REASON_ACCEPT = "accept"


@dataclass
class TradeOffDecision:
    """One evaluated ``shouldDuplicate`` predicate, term by term.

    This is the record the telemetry subsystem serializes as a
    ``dbds.decision`` event, and the record ``repro.dbds.explain``
    renders — one source of truth for the three terms.
    """

    weighted: float
    threshold_term: bool
    unit_size_term: bool
    budget_term: bool
    current_size: float
    initial_size: float

    @property
    def accepted(self) -> bool:
        return self.threshold_term and self.unit_size_term and self.budget_term

    def reason(self) -> str:
        """``"accept"`` or the comma-joined failing terms."""
        if self.accepted:
            return REASON_ACCEPT
        reasons = []
        if not self.threshold_term:
            reasons.append(REASON_THRESHOLD)
        if not self.unit_size_term:
            reasons.append(REASON_UNIT_SIZE)
        if not self.budget_term:
            reasons.append(REASON_BUDGET)
        return ", ".join(reasons)


def evaluate_candidate(
    candidate: SimulationResult,
    current_size: float,
    initial_size: float,
    config: TradeOffConfig | None = None,
) -> TradeOffDecision:
    """Evaluate every term of the paper's shouldDuplicate predicate."""
    cfg = config or TradeOffConfig()
    b = candidate.benefit
    p = candidate.probability if cfg.use_probability else 1.0
    c = candidate.cost
    return TradeOffDecision(
        weighted=b * p,
        threshold_term=b * p * cfg.benefit_scale > c,
        unit_size_term=current_size < cfg.max_unit_size,
        budget_term=current_size + c < initial_size * cfg.increase_budget,
        current_size=current_size,
        initial_size=initial_size,
    )


def should_duplicate(
    candidate: SimulationResult,
    current_size: float,
    initial_size: float,
    config: TradeOffConfig | None = None,
) -> bool:
    """The paper's shouldDuplicate(bpi, bm, benefit, cost) predicate."""
    return evaluate_candidate(candidate, current_size, initial_size, config).accepted


def emit_decision(
    tracer: Tracer,
    graph_name: str,
    candidate: SimulationResult,
    decision: TradeOffDecision,
    *,
    iteration: int = 0,
    mode: str = "dbds",
) -> Optional[Event]:
    """Record one ``dbds.decision`` event and bump the accept/reject
    counters; returns the event (None when the tracer is disabled)."""
    accepted = decision.accepted
    tracer.count("dbds.decision.accepted" if accepted else "dbds.decision.rejected")
    current_registry().inc(
        "repro_dbds_decisions_total",
        outcome="accepted" if accepted else "rejected",
    )
    return tracer.event(
        "dbds.decision",
        graph=graph_name,
        merge=candidate.merge.name,
        pred=candidate.pred.name,
        benefit=candidate.benefit,
        cost=candidate.cost,
        probability=candidate.probability,
        weighted=decision.weighted,
        threshold_term=decision.threshold_term,
        unit_size_term=decision.unit_size_term,
        budget_term=decision.budget_term,
        accepted=accepted,
        reason=decision.reason(),
        current_size=decision.current_size,
        initial_size=decision.initial_size,
        iteration=iteration,
        mode=mode,
    )


def sort_candidates(
    candidates: list[SimulationResult], config: TradeOffConfig | None = None
) -> list[SimulationResult]:
    """Rank by probability-weighted benefit (desc), then by cost (asc).

    "We sort duplication candidates based on these values and optimize
    the most likely and most beneficial ones first" — important when the
    code-size budget runs out before all candidates are performed.
    """
    cfg = config or TradeOffConfig()

    def key(c: SimulationResult) -> tuple[float, float]:
        weighted = c.benefit * (c.probability if cfg.use_probability else 1.0)
        return (-weighted, c.cost)

    return sorted(candidates, key=key)
