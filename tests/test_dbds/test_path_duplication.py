"""Tests for the path-duplication extension (Section 8 future work)."""

import dataclasses

import pytest

from repro.dbds.phase import DbdsConfig, DbdsPhase
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import verify_graph
from repro.pipeline.config import PATH_DBDS
from tests.helpers import outcomes

# An inner merge with a local fold whose Goto leads straight into an
# outer merge with a *further* opportunity: absorbing both needs either
# a second DBDS iteration or path duplication.
CHAINED = """
fn f(x: int, y: int) -> int {
  var p: int;
  if (x > 0) {
    var t: int;
    if (y > 0) { t = y; } else { t = 0; }
    p = t * 4 + 1;
  } else {
    p = 2;
  }
  if (p >= 1) { return p * 3 + x; }
  return x;
}
"""


class TestPathExtension:
    def test_single_iteration_reaches_deeper(self):
        """With one DBDS iteration, path mode performs strictly more
        duplications than plain mode (which needs iteration 2+)."""
        plain_program = compile_source(CHAINED)
        plain_stats = DbdsPhase(
            plain_program, DbdsConfig(max_iterations=1)
        ).run(plain_program.function("f"))

        path_program = compile_source(CHAINED)
        path_stats = DbdsPhase(
            path_program,
            DbdsConfig(max_iterations=1, path_duplication=True, paranoid=True),
        ).run(path_program.function("f"))

        assert path_stats.duplications_performed > plain_stats.duplications_performed
        verify_graph(path_program.function("f"))

    def test_semantics_preserved(self):
        program = compile_source(CHAINED)
        args = [[x, y] for x in range(-2, 8) for y in range(-2, 9)]
        expected = outcomes(program, "f", args)
        DbdsPhase(
            program, DbdsConfig(path_duplication=True, paranoid=True)
        ).run(program.function("f"))
        assert outcomes(program, "f", args) == expected

    def test_path_length_limit(self):
        # Stack several merges; a tiny limit must bound the chain.
        source = "fn f(x: int) -> int {\n  var acc: int = x;\n"
        for j in range(5):
            source += (
                f"  var p{j}: int;\n"
                f"  if (acc > {j}) {{ p{j} = acc; }} else {{ p{j} = {j}; }}\n"
                f"  acc = acc + p{j} * 2;\n"
            )
        source += "  return acc;\n}\n"
        program = compile_source(source)
        limited = DbdsPhase(
            program,
            DbdsConfig(max_iterations=1, path_duplication=True, max_path_length=1),
        ).run(program.function("f"))
        assert limited.duplications_performed >= 1
        verify_graph(program.function("f"))

    def test_respects_budget(self):
        from repro.dbds.tradeoff import TradeOffConfig

        program = compile_source(CHAINED)
        stats = DbdsPhase(
            program,
            DbdsConfig(
                path_duplication=True,
                trade_off=TradeOffConfig(max_unit_size=1.0),
            ),
        ).run(program.function("f"))
        assert stats.duplications_performed == 0

    def test_config_wiring(self):
        assert PATH_DBDS.path_duplication
        assert PATH_DBDS.dbds_config().path_duplication

    def test_pipeline_config_semantics(self):
        from repro.pipeline.compiler import compile_and_profile

        source = CHAINED + (
            "fn main(n: int) -> int {\n"
            "  var t: int = 0;\n  var i: int = 0;\n"
            "  while (i < n) { t = t + f(i, t); i = i + 1; }\n"
            "  return t;\n}\n"
        )
        reference = outcomes(compile_source(source), "main", [[0], [3], [9]])
        config = dataclasses.replace(PATH_DBDS, paranoid=True)
        program, report = compile_and_profile(source, "main", [[9]], config)
        assert outcomes(program, "main", [[0], [3], [9]]) == reference
