"""Shared helpers for the benchmark suite.

Every benchmark regenerates one evaluation artifact of the paper
(Figures 5–8 + the headline numbers + the Section 3.1 backtracking
comparison + trade-off ablations).  Results are printed and also written
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference a
stable location.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_figure(name: str, text: str) -> None:
    """Print a regenerated figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
