"""Random MiniLang program generator and source mutator for
differential testing.

Two complementary strategies:

* :class:`ProgramGenerator` grows syntactically valid,
  always-terminating programs from scratch (ints, bools, objects,
  arrays, globals, calls, branches, bounded loops).  Programs may trap
  (division by zero, null dereference, out-of-bounds) — traps are part
  of the observable outcome the configurations must agree on.
* :class:`SourceMutator` perturbs *real* programs
  (template-extraction-style, after Zang et al.'s JAttack/template
  JIT testing): swap integer constants, flip comparison operators
  inside ``if`` conditions, and wrap loop bodies in a redundant
  always-true branch.  Mutating hand-written sources reaches idiom
  combinations the generator's grammar never emits, while keeping the
  program shape realistic; :func:`repro.analysis.validate.fuzz_mutations`
  drives the mutants through the translation-validation harness.

Mutation operators deliberately avoid ``while`` headers: loop bounds
and conditions stay as authored so mutants terminate like their
originals (a flipped ``if`` can still change how much work runs —
:func:`~repro.analysis.validate.fuzz_mutations` screens mutants with a
small interpreter step budget before differential runs).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Optional


class ProgramGenerator:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.fresh = 0

    def name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def int_expr(self, vars_: list[str], depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            if vars_ and rng.random() < 0.7:
                return rng.choice(vars_)
            return str(rng.randint(-20, 100))
        kind = rng.random()
        if kind < 0.75:
            op = rng.choice(["+", "-", "*", "&", "|", "^"])
            return (
                f"({self.int_expr(vars_, depth - 1)} {op} "
                f"{self.int_expr(vars_, depth - 1)})"
            )
        if kind < 0.85:
            # Division/modulo: may trap, which is intentional.
            op = rng.choice(["/", "%"])
            return (
                f"({self.int_expr(vars_, depth - 1)} {op} "
                f"{self.int_expr(vars_, depth - 1)})"
            )
        op = rng.choice(["<<", ">>"])
        return f"({self.int_expr(vars_, depth - 1)} {op} {self.rng.randint(0, 5)})"

    def bool_expr(self, vars_: list[str], depth: int) -> str:
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        left = self.int_expr(vars_, depth - 1)
        right = self.int_expr(vars_, depth - 1)
        base = f"({left} {op} {right})"
        if depth > 1 and rng.random() < 0.3:
            joiner = rng.choice(["&&", "||"])
            other = self.bool_expr(vars_, depth - 1)
            return f"({base} {joiner} {other})"
        if rng.random() < 0.15:
            return f"(!{base})"
        return base

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def statements(self, vars_: list[str], depth: int, budget: int) -> list[str]:
        rng = self.rng
        out: list[str] = []
        count = rng.randint(1, max(1, budget))
        for _ in range(count):
            kind = rng.random()
            if kind < 0.3 or not vars_:
                var = self.name("v")
                out.append(f"var {var}: int = {self.int_expr(vars_, 2)};")
                vars_.append(var)
            elif kind < 0.55:
                # Induction variables (i-prefixed) are reserved: loops
                # must terminate.
                writable = [v for v in vars_ if not v.startswith("i")]
                if not writable:
                    continue
                target = rng.choice(writable)
                out.append(f"{target} = {self.int_expr(vars_, 2)};")
            elif kind < 0.8 and depth > 0:
                cond = self.bool_expr(vars_, 2)
                then_body = self.indent(
                    self.statements(list(vars_), depth - 1, budget - 1)
                )
                if rng.random() < 0.6:
                    else_body = self.indent(
                        self.statements(list(vars_), depth - 1, budget - 1)
                    )
                    out.append(
                        f"if ({cond}) {{\n{then_body}\n}} else {{\n{else_body}\n}}"
                    )
                else:
                    out.append(f"if ({cond}) {{\n{then_body}\n}}")
            elif kind < 0.9 and depth > 0:
                # Canonical bounded loop; the induction variable is
                # reserved (never reassigned by the body).
                i = self.name("i")
                bound = rng.randint(1, 6)
                body_vars = list(vars_) + [i]
                body = self.indent(self.statements(body_vars, depth - 1, budget - 1))
                out.append(
                    f"var {i}: int = 0;\n"
                    f"while ({i} < {bound}) {{\n{body}\n  {i} = {i} + 1;\n}}"
                )
            else:
                out.append(f"g = g + {rng.choice(vars_)};")
        return out

    @staticmethod
    def indent(statements: list[str]) -> str:
        lines = []
        for stmt in statements:
            for line in stmt.split("\n"):
                lines.append("  " + line)
        return "\n".join(lines) if lines else "  g = g + 0;"

    # ------------------------------------------------------------------
    def helper(self, index: int) -> str:
        vars_ = ["x", "y"]
        # Object/array flavour in some helpers (chosen before the body
        # is generated so declared variables match the emitted code).
        flavour = self.rng.random()
        prologue = ""
        if flavour < 0.35:
            prologue = (
                f"  var box: D = new D {{ a = x, b = {self.rng.randint(0, 9)} }};\n"
                f"  var bv: int = box.a + box.b;\n"
            )
            vars_.append("bv")
            body = self.statements(vars_, depth=1, budget=3)
        elif flavour < 0.55:
            size = self.rng.randint(1, 5)
            prologue = (
                f"  var arr: int[] = new int[{size}];\n"
                f"  arr[{self.rng.randint(0, size - 1)}] = x;\n"
                f"  var av: int = arr[{self.rng.randint(0, size)}];\n"
            )
            vars_.append("av")
            body = self.statements(vars_, depth=1, budget=3)
        else:
            body = self.statements(vars_, depth=2, budget=4)
        stmts = "\n".join("  " + line for s in body for line in s.split("\n"))
        ret = self.int_expr(vars_, 2)
        return (
            f"fn h{index}(x: int, y: int) -> int {{\n"
            f"{prologue}{stmts}\n  return {ret};\n}}\n"
        )

    def generate(self) -> str:
        helper_count = self.rng.randint(1, 3)
        helpers = "".join(self.helper(i) for i in range(helper_count))
        calls = " + ".join(
            f"h{i}(k, acc)" for i in range(helper_count)
        )
        return (
            "class D { a: int; b: int; }\n"
            "global g: int;\n"
            f"{helpers}"
            "fn main(n: int) -> int {\n"
            "  var acc: int = 0;\n"
            "  var k: int = 0;\n"
            "  while (k < n) {\n"
            f"    acc = acc + {calls};\n"
            "    k = k + 1;\n"
            "  }\n"
            "  return acc + g;\n"
            "}\n"
        )


def random_program(seed: int) -> str:
    """A deterministic random program for the given seed."""
    return ProgramGenerator(seed).generate()


# ----------------------------------------------------------------------
# Template-extraction-style source mutation
# ----------------------------------------------------------------------
#: the three mutation operators, in canonical order
MUTATION_KINDS = ("swap-constant", "flip-comparison", "wrap-loop-body")

#: comparison operators and their flips (``==``/``!=`` negate; ordered
#: comparisons move the boundary value across the branch)
_FLIP = {"==": "!=", "!=": "==", "<": "<=", "<=": "<", ">": ">=", ">=": ">"}

#: a comparison operator that is neither part of a shift (``<<``,
#: ``>>``, ``>>>``), an arrow (``->``), an assignment (``=``), nor a
#: logical/bitwise compound (``&&``, ``||``, ``^``, ``!``)
_CMP_RE = re.compile(r"(?<![<>=!&|^\-])(==|!=|<=|>=|<|>)(?![<>=])")

_INT_RE = re.compile(r"(?<![\w.])\d+\b")


@dataclass(frozen=True)
class MutatedProgram:
    """One mutant: the new source plus what was done to produce it."""

    source: str
    base: str
    applied: tuple[str, ...]

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def _comment_spans(source: str) -> list[tuple[int, int]]:
    """``//`` comment regions (mutations must not touch them)."""
    spans = []
    offset = 0
    for line in source.splitlines(keepends=True):
        at = line.find("//")
        if at >= 0:
            spans.append((offset + at, offset + len(line)))
        offset += len(line)
    return spans


def _matching_paren(source: str, open_at: int) -> Optional[int]:
    """Index of the ``)`` closing the ``(`` at ``open_at``."""
    depth = 0
    for index in range(open_at, len(source)):
        if source[index] == "(":
            depth += 1
        elif source[index] == ")":
            depth -= 1
            if depth == 0:
                return index
    return None


def _matching_brace(source: str, open_at: int) -> Optional[int]:
    """Index of the ``}`` closing the ``{`` at ``open_at``."""
    depth = 0
    for index in range(open_at, len(source)):
        if source[index] == "{":
            depth += 1
        elif source[index] == "}":
            depth -= 1
            if depth == 0:
                return index
    return None


def _keyword_spans(source: str, keyword: str) -> list[tuple[int, int]]:
    """Paren-delimited header spans of ``while``/``if`` keywords."""
    spans = []
    for match in re.finditer(rf"\b{keyword}\b", source):
        open_at = source.find("(", match.end())
        if open_at < 0:
            continue
        close_at = _matching_paren(source, open_at)
        if close_at is not None:
            spans.append((open_at, close_at + 1))
    return spans


def _inside(position: int, spans: list[tuple[int, int]]) -> bool:
    return any(start <= position < end for start, end in spans)


class SourceMutator:
    """Deterministic, seed-driven mutations of real MiniLang sources.

    Every operator preserves syntactic validity; semantic changes are
    the point — the mutant and its original are *different* programs,
    each of which must still agree with itself across compiler
    configurations (that is what the translation-validation harness
    checks).
    """

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    # -- operators ------------------------------------------------------
    def swap_constant(self, source: str) -> Optional[str]:
        """Replace one integer literal with a small different one.

        ``while`` headers are off-limits (termination), comments are
        skipped (no-op mutations).
        """
        forbidden = _comment_spans(source) + _keyword_spans(source, "while")
        sites = [
            m for m in _INT_RE.finditer(source)
            if not _inside(m.start(), forbidden)
        ]
        if not sites:
            return None
        site = self.rng.choice(sites)
        old = int(site.group())
        new = self.rng.randint(0, 9)
        if new == old:
            new = (new + 1) % 10
        return source[: site.start()] + str(new) + source[site.end():]

    def flip_comparison(self, source: str) -> Optional[str]:
        """Flip one comparison operator inside an ``if`` condition."""
        comments = _comment_spans(source)
        headers = [
            span
            for span in _keyword_spans(source, "if")
            if not _inside(span[0], comments)
        ]
        sites = []
        for start, end in headers:
            sites.extend(
                m for m in _CMP_RE.finditer(source, start, end)
                if not _inside(m.start(), comments)
            )
        if not sites:
            return None
        site = self.rng.choice(sites)
        flipped = _FLIP[site.group()]
        return source[: site.start()] + flipped + source[site.end():]

    def wrap_loop_body(self, source: str) -> Optional[str]:
        """Wrap one ``while`` body in an always-true ``if``.

        Semantically neutral, structurally loud: the extra branch adds
        a merge point inside the loop, exactly the shape DBDS
        simulates, and cleanup phases must fold it away again.
        """
        comments = _comment_spans(source)
        sites = []
        for match in re.finditer(r"\bwhile\b", source):
            if _inside(match.start(), comments):
                continue
            open_paren = source.find("(", match.end())
            if open_paren < 0:
                continue
            close_paren = _matching_paren(source, open_paren)
            if close_paren is None:
                continue
            open_brace = source.find("{", close_paren)
            if open_brace < 0:
                continue
            close_brace = _matching_brace(source, open_brace)
            if close_brace is not None and close_brace > open_brace + 1:
                sites.append((open_brace, close_brace))
        if not sites:
            return None
        open_brace, close_brace = self.rng.choice(sites)
        body = source[open_brace + 1 : close_brace]
        return (
            source[: open_brace + 1]
            + " if (0 == 0) {"
            + body
            + "} "
            + source[close_brace:]
        )

    # -- driver ---------------------------------------------------------
    def mutate(self, source: str, mutations: int = 2, base: str = "<source>") -> MutatedProgram:
        """Apply up to ``mutations`` random operators to ``source``.

        Operators that find no applicable site are skipped; the result
        records which ones actually fired (possibly none).
        """
        applied = []
        current = source
        for _ in range(mutations):
            kind = self.rng.choice(MUTATION_KINDS)
            mutated = {
                "swap-constant": self.swap_constant,
                "flip-comparison": self.flip_comparison,
                "wrap-loop-body": self.wrap_loop_body,
            }[kind](current)
            if mutated is not None:
                current = mutated
                applied.append(kind)
        return MutatedProgram(source=current, base=base, applied=tuple(applied))


def mutated_program(
    seed: int, corpus: Optional[list[str]] = None, mutations: int = 2
) -> MutatedProgram:
    """A deterministic mutant for the given seed.

    With a ``corpus`` of real sources, one is chosen and mutated
    (template-extraction style); without, a generated program is
    mutated instead so the API works in any environment.
    """
    mutator = SourceMutator(seed)
    if corpus:
        index = mutator.rng.randrange(len(corpus))
        return mutator.mutate(
            corpus[index], mutations=mutations, base=f"corpus[{index}]"
        )
    return mutator.mutate(
        random_program(seed), mutations=mutations, base=f"generated[{seed}]"
    )


__all__ = [
    "MUTATION_KINDS",
    "MutatedProgram",
    "ProgramGenerator",
    "SourceMutator",
    "mutated_program",
    "random_program",
]
