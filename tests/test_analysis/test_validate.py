"""Translation-validation tests: real runs plus divergence detection."""

from __future__ import annotations

import repro.analysis.validate as validate_mod
from repro.analysis import fuzz_translation, validate_translation
from repro.pipeline.config import BASELINE, DBDS, DUPALOT

SOURCE = """
fn main(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    if (i % 3 == 0) { s = s + i * 2; } else { s = s - 1; }
    i = i + 1;
  }
  return s;
}
"""


def test_validate_translation_agrees_on_real_program():
    result = validate_translation(SOURCE, "main", arg_sets=[[0], [5], [12]])
    assert result.ok
    assert result.configs == ["baseline", "dbds"]
    assert result.runs == 6  # 3 arg sets x 2 configs


def test_validate_translation_accepts_custom_configs():
    result = validate_translation(
        SOURCE, "main", arg_sets=[[4]], configs=(BASELINE, DBDS, DUPALOT)
    )
    assert result.ok
    assert result.configs == ["baseline", "dbds", "dupalot"]


def test_divergence_is_reported_against_the_reference(monkeypatch):
    outcomes = {"baseline": [(10, None, ())], "dbds": [(11, None, ())]}

    def fake_compile(source, entry, sets, config):
        return config.name, None

    monkeypatch.setattr(validate_mod, "_outcomes", lambda p, e, s: outcomes[p])
    import repro.pipeline.compiler as compiler_mod

    monkeypatch.setattr(compiler_mod, "compile_and_profile", fake_compile)
    result = validate_translation(SOURCE, "main", arg_sets=[[3]], seed=42)
    assert not result.ok
    record = result.divergences[0]
    assert record.config_a == "baseline" and record.config_b == "dbds"
    assert record.args == (3,)
    assert record.seed == 42
    assert "seed 42" in record.format()
    assert "baseline" in record.format() and "dbds" in record.format()


def test_fuzz_translation_smoke():
    report = fuzz_translation(seed=1, programs=3)
    assert report.ok, report.format()
    assert report.programs == 3
    assert report.runs == 3 * 2 * len(validate_mod.DEFAULT_ARG_VALUES)
    assert "translation validation: ok" in report.format()


def test_fuzz_translation_honours_time_budget():
    report = fuzz_translation(seed=0, programs=1000, time_budget=0.0)
    assert report.programs == 0


def test_fuzz_translation_records_compile_crashes(monkeypatch):
    def broken(*args, **kwargs):
        raise RuntimeError("synthetic compiler crash")

    monkeypatch.setattr(validate_mod, "validate_translation", broken)
    report = fuzz_translation(seed=7, programs=2)
    assert not report.ok
    assert len(report.compile_failures) == 2
    assert report.compile_failures[0][0] == 7
    assert "synthetic compiler crash" in report.format()
