"""Experiment H1 — the paper's headline numbers (abstract + Section 8).

Paper: peak performance improvements of **up to 40%** with a **mean of
+5.89%**, at a mean compile-time increase of **+18.44%** and code-size
increase of **+9.93%** (means across the four suites).

This benchmark runs all four suites and aggregates:
* the maximum per-benchmark speedup ("up to X%"),
* the cross-suite geometric-mean speedup / compile time / code size.

Shape checks: a clearly positive mean speedup with standout individual
benchmarks, bought with extra compilation time.
"""

from _support import bench_cache, record_figure

from repro.bench.harness import run_suite
from repro.bench.stats import format_percent, geometric_mean
from repro.bench.workloads.suites import ALL_SUITES


def _run_all():
    cache = bench_cache()  # warm reruns opt in via REPRO_BENCH_CACHE=1
    return {
        name: run_suite(profile, cache=cache)
        for name, profile in ALL_SUITES.items()
    }


def test_headline_means(benchmark):
    reports = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    speedups, ctimes, sizes, best = [], [], [], ("", 0.0)
    for report in reports.values():
        for row in report.rows:
            s = row.speedup("dbds")
            speedups.append(1.0 + s / 100.0)
            ctimes.append(1.0 + row.compile_time_increase("dbds") / 100.0)
            sizes.append(1.0 + row.code_size_increase("dbds") / 100.0)
            if s > best[1]:
                best = (f"{report.suite}/{row.workload}", s)

    mean_speedup = (geometric_mean(speedups) - 1.0) * 100.0
    mean_ctime = (geometric_mean(ctimes) - 1.0) * 100.0
    mean_size = (geometric_mean(sizes) - 1.0) * 100.0

    lines = [
        "=== Headline (paper: up to +40% perf, mean +5.89% perf, "
        "+18.44% compile time, +9.93% code size) ===",
        f"benchmarks measured : {len(speedups)}",
        f"max speedup         : {format_percent(best[1])} ({best[0]})",
        f"mean speedup        : {format_percent(mean_speedup)}",
        f"mean compile time   : {format_percent(mean_ctime)}",
        f"mean code size      : {format_percent(mean_size)}",
    ]
    for name, report in reports.items():
        lines.append(
            f"  {name:<13s} perf {format_percent(report.geomean_speedup('dbds')):>9s}"
            f"  ctime {format_percent(report.geomean_compile_time('dbds')):>9s}"
            f"  size {format_percent(report.geomean_code_size('dbds')):>9s}"
        )
    record_figure("headline", "\n".join(lines))

    assert mean_speedup > 0.0, "DBDS must improve the overall mean"
    assert best[1] > mean_speedup, "standout benchmarks exceed the mean"
    assert mean_ctime > 0.0, "duplication costs compile time"
    # Java DaCapo benefits least — the paper's suite ordering.
    assert reports["java-dacapo"].geomean_speedup("dbds") <= max(
        reports["micro"].geomean_speedup("dbds"),
        reports["octane"].geomean_speedup("dbds"),
        reports["scala-dacapo"].geomean_speedup("dbds"),
    )
