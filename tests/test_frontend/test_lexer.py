"""Tests for the MiniLang tokenizer."""

import pytest

from repro.frontend.lexer import CompileError, Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_integers(self):
        tokens = tokenize("0 42 1234567890")
        assert [t.text for t in tokens[:-1]] == ["0", "42", "1234567890"]
        assert all(t.kind is TokenKind.INT for t in tokens[:-1])

    def test_identifiers_and_keywords(self):
        tokens = tokenize("foo if bar while _x x_1")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[1].kind is TokenKind.KEYWORD
        assert tokens[2].kind is TokenKind.IDENT
        assert tokens[3].kind is TokenKind.KEYWORD
        assert tokens[4].text == "_x"
        assert tokens[5].text == "x_1"

    def test_all_keywords_recognized(self):
        for kw in ("class", "global", "fn", "var", "if", "else", "while",
                   "return", "true", "false", "null", "new", "len", "int",
                   "bool", "void"):
            token = tokenize(kw)[0]
            assert token.kind is TokenKind.KEYWORD, kw


class TestOperators:
    def test_maximal_munch(self):
        assert texts("a >>> b") == ["a", ">>>", "b"]
        assert texts("a >> b") == ["a", ">>", "b"]
        assert texts("a >= b") == ["a", ">=", "b"]
        assert texts("a > = b") == ["a", ">", "=", "b"]
        assert texts("a == b") == ["a", "==", "b"]
        assert texts("a = =b") == ["a", "=", "=", "b"]

    def test_compound_expression(self):
        assert texts("x<<2|y&&!z") == ["x", "<<", "2", "|", "y", "&&", "!", "z"]

    def test_arrow(self):
        assert texts("fn f() -> int") == ["fn", "f", "(", ")", "->", "int"]


class TestCommentsAndWhitespace:
    def test_line_comments_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_comment_at_eof(self):
        assert texts("a // no newline") == ["a"]

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc") == ["a", "b", "c"]


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 4

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a $ b")

    def test_error_carries_position(self):
        try:
            tokenize("ok\n  @")
        except CompileError as e:
            assert e.line == 2
            assert e.column == 3
        else:
            pytest.fail("expected CompileError")


class TestTokenHelpers:
    def test_is_punct_and_keyword(self):
        t = tokenize("if (")
        assert t[0].is_keyword("if") and not t[0].is_punct("if")
        assert t[1].is_punct("(") and not t[1].is_keyword("(")

    def test_repr(self):
        assert "if" in repr(tokenize("if")[0])
