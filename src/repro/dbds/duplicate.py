"""The tail-duplication transformation (optimization tier, Section 4.3).

``duplicate_into(graph, pred, merge)`` specializes one merge block into
one predecessor — the paper's predecessor-merge pair granularity:

1. the merge's instructions are appended to the predecessor, with every
   phi replaced by its input along the duplicated edge;
2. the merge's terminator is cloned onto the predecessor, whose edge to
   the merge disappears;
3. phi inputs on the merge's successors are extended for the new edges;
4. uses of merge-defined values in dominated blocks are rewired through
   on-demand SSA repair (phis on the iterated dominance frontier) —
   the costly step the simulation tier never has to perform;
5. structural invariants are restored (critical edges, degenerate phis).
"""

from __future__ import annotations

from ..ir.block import Block
from ..ir.cfgutils import (
    fold_redundant_ifs,
    remove_unreachable_blocks,
    simplify_degenerate_phis,
    split_critical_edges,
)
from ..ir.copy import clone_instruction, clone_terminator
from ..ir.graph import Graph
from ..ir.loops import LoopForest
from ..ir.nodes import Goto, Phi, Value
from ..ir.ssa_repair import collect_external_uses, repair_value


class DuplicationError(Exception):
    """The requested predecessor-merge pair cannot be duplicated."""


def can_duplicate(graph: Graph, pred: Block, merge: Block, loops: LoopForest | None = None) -> bool:
    """Whether ``merge`` may be specialized into ``pred``.

    Requirements: a real merge, reached from ``pred`` via Goto (the
    critical-edge invariant guarantees this), not a loop header (that
    would be loop peeling), and not a self-loop.
    """
    if not merge.is_merge() or pred is merge:
        return False
    if pred not in merge.predecessors:
        return False
    if not isinstance(pred.terminator, Goto) or pred.terminator.target is not merge:
        return False
    forest = loops or graph.loop_forest()
    if forest.is_loop_header(merge):
        return False
    return True


def duplicate_into(graph: Graph, pred: Block, merge: Block) -> dict[Value, Value]:
    """Perform the duplication; returns the original→copy value map."""
    if not can_duplicate(graph, pred, merge):
        raise DuplicationError(
            f"cannot duplicate {merge.name} into {pred.name}"
        )

    pred_index = merge.predecessor_index(pred)

    # ------------------------------------------------------------------
    # 1. Value mapping: phis specialize to their input along this edge;
    #    instructions are cloned in order.
    # ------------------------------------------------------------------
    mapping: dict[Value, Value] = {}
    for phi in merge.phis:
        mapping[phi] = phi.input(pred_index)

    def mapped(value: Value) -> Value:
        return mapping.get(value, value)

    copies = []
    for ins in merge.instructions:
        copy = clone_instruction(ins, mapped)
        mapping[ins] = copy
        copies.append(copy)

    new_terminator = clone_terminator(merge.terminator, mapped, lambda b: b)

    # ------------------------------------------------------------------
    # 2. Capture external uses of merge-defined values *before* rewiring
    #    (the phi inputs dropped by remove_predecessor must not linger).
    # ------------------------------------------------------------------
    defined = list(merge.phis) + list(merge.instructions)

    # ------------------------------------------------------------------
    # 3. Rewire: pred stops jumping to merge and adopts the copies.
    #    set_terminator drops pred from merge.predecessors, which also
    #    deletes the phi inputs for this edge.
    # ------------------------------------------------------------------
    for copy in copies:
        pred.append(copy)
    pred.set_terminator(new_terminator)

    # 4. Successor phi inputs for the new edges: the new terminator's
    #    targets each gained `pred` as predecessor (appended last); the
    #    corresponding phi input is the mapped value of the input they
    #    receive along the existing edge from `merge`.
    for target in new_terminator.targets:
        if not target.phis:
            continue
        merge_edge_index = target.predecessor_index(merge)
        for phi in target.phis:
            phi._append_input(mapped(phi.input(merge_edge_index)))

    # ------------------------------------------------------------------
    # 5. SSA repair for uses in dominated blocks.
    # ------------------------------------------------------------------
    dom = graph.dominator_tree()
    for value in defined:
        uses = collect_external_uses(value, within=merge)
        if not uses:
            continue
        definitions = {merge: value, pred: mapping[value]}
        repair_value(graph, dom, definitions, uses, value.type)

    # ------------------------------------------------------------------
    # 6. Restore invariants. The merge may have collapsed to a single
    #    predecessor (degenerate phis), the pred's new If may have
    #    created critical edges, and constant-folded Ifs may leave
    #    unreachable regions.
    # ------------------------------------------------------------------
    simplify_degenerate_phis(graph)
    fold_redundant_ifs(graph)
    remove_unreachable_blocks(graph)
    split_critical_edges(graph)
    return mapping
