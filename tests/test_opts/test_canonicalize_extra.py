"""Tests for the extended canonicalizations: reassociation, operand
normalization and negated-branch simplification."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Constant,
    Graph,
    If,
    INT,
    Not,
    verify_graph,
)
from repro.opts.base import OptimizationContext
from repro.opts.canonicalize import (
    CanonicalizerPhase,
    canonicalize_instruction,
    simplify_negated_branches,
)

i64 = st.integers(min_value=-(2**62), max_value=2**62)


@pytest.fixture
def graph():
    return Graph("f", [("x", INT)], INT)


def canon(graph, ins):
    return canonicalize_instruction(ins, OptimizationContext(graph))


class TestReassociation:
    def test_add_chain_folds(self, graph):
        x = graph.parameters[0]
        inner = ArithOp(BinOp.ADD, x, graph.const_int(3))
        outer = ArithOp(BinOp.ADD, inner, graph.const_int(4))
        rewrite = canon(graph, outer)
        assert rewrite is not None and rewrite.reason == "reassociate-constants"
        combined = rewrite.new_instructions[0]
        assert combined.x is x and combined.y.value == 7

    def test_mul_chain_folds(self, graph):
        x = graph.parameters[0]
        inner = ArithOp(BinOp.MUL, x, graph.const_int(6))
        outer = ArithOp(BinOp.MUL, inner, graph.const_int(7))
        rewrite = canon(graph, outer)
        assert rewrite.new_instructions[0].y.value == 42

    def test_mixed_ops_not_reassociated(self, graph):
        x = graph.parameters[0]
        inner = ArithOp(BinOp.ADD, x, graph.const_int(3))
        outer = ArithOp(BinOp.MUL, inner, graph.const_int(4))
        rewrite = canon(graph, outer)
        assert rewrite is None or rewrite.reason != "reassociate-constants"

    def test_sub_not_reassociated(self, graph):
        x = graph.parameters[0]
        inner = ArithOp(BinOp.SUB, x, graph.const_int(3))
        outer = ArithOp(BinOp.SUB, inner, graph.const_int(4))
        assert canon(graph, outer) is None

    @given(i64, st.integers(min_value=-1000, max_value=1000), st.integers(min_value=-1000, max_value=1000))
    def test_add_reassociation_is_semantics_preserving(self, x, c1, c2):
        source = f"fn f(x: int) -> int {{ return (x + {c1}) + {c2}; }}"
        program = compile_source(source)
        expected = Interpreter(program).run("f", [x]).value
        CanonicalizerPhase().run(program.function("f"))
        assert Interpreter(program).run("f", [x]).value == expected

    def test_phase_collapses_long_chain(self):
        program = compile_source(
            "fn f(x: int) -> int { return x + 1 + 2 + 3 + 4 + 5; }"
        )
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        adds = [
            i
            for b in graph.blocks
            for i in b.instructions
            if isinstance(i, ArithOp)
        ]
        assert len(adds) == 1
        assert adds[0].y.value == 15


class TestOperandNormalization:
    def test_constant_moves_right(self, graph):
        x = graph.parameters[0]
        cmp = Compare(CmpOp.LT, graph.const_int(5), x)
        rewrite = canon(graph, cmp)
        normalized = rewrite.new_instructions[0]
        assert normalized.op is CmpOp.GT
        assert normalized.x is x
        assert isinstance(normalized.y, Constant)

    def test_already_normalized_untouched(self, graph):
        x = graph.parameters[0]
        cmp = Compare(CmpOp.GT, x, graph.const_int(5))
        assert canon(graph, cmp) is None

    def test_enables_gvn(self):
        from repro.opts.gvn import GlobalValueNumberingPhase

        program = compile_source(
            "fn f(x: int) -> bool { return (5 < x) == (x > 5); }"
        )
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        GlobalValueNumberingPhase().run(graph)
        CanonicalizerPhase().run(graph)
        # Both compares canonicalize identically; GVN merges them and
        # `c == c` folds to true.
        compares = [
            i for b in graph.blocks for i in b.instructions
            if isinstance(i, Compare)
        ]
        assert len(compares) == 0


class TestNegatedBranches:
    def test_if_of_not_swaps_targets(self, graph):
        x = graph.parameters[0]
        cmp = graph.entry.append(Compare(CmpOp.GT, x, graph.const_int(0)))
        negated = graph.entry.append(Not(cmp))
        t, f = graph.new_block("t"), graph.new_block("f")
        from repro.ir import Return

        graph.entry.set_terminator(If(negated, t, f, 0.25))
        t.set_terminator(Return(graph.const_int(1)))
        f.set_terminator(Return(graph.const_int(2)))
        assert simplify_negated_branches(graph) == 1
        term = graph.entry.terminator
        assert term.condition is cmp
        assert term.true_target is f and term.false_target is t
        assert term.true_probability == pytest.approx(0.75)
        verify_graph(graph)

    def test_phase_eliminates_negation_entirely(self):
        program = compile_source(
            "fn f(x: int) -> int { if (!(x > 0)) { return 1; } return 2; }"
        )
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        nots = [
            i for b in graph.blocks for i in b.instructions
            if isinstance(i, Not)
        ]
        assert nots == []
        assert Interpreter(program).run("f", [5]).value == 2
        assert Interpreter(program).run("f", [-5]).value == 1
