"""Register-based bytecode VM for optimized IR programs.

The reference interpreter (:mod:`repro.interp`) walks the SSA graph
instruction object by instruction object, so benchmark wall-clock is
dominated by Python dispatch overhead rather than by the work the
program does.  This package compiles a :class:`~repro.ir.graph.Program`
into flat, pre-decoded bytecode — dense register slots instead of a
``dict[Value, Any]`` environment, constants materialized at translation
time, phis lowered to per-edge parallel-copy move sequences, branch
targets resolved to instruction indices — and executes it with a
per-opcode handler table.

Semantics are bit-for-bit those of the reference interpreter: shared
heap/trap/outcome types, identical trap messages, identical step
accounting and budget behaviour, identical :class:`ProfileCollector`
and observer hooks.  ``repro check --diff-engines`` and the
``tests/test_vm`` differential suite enforce this; see docs/VM.md.
"""

from .bytecode import BytecodeFunction, BytecodeProgram, disassemble
from .machine import VirtualMachine
from .profiler import ProfilingVirtualMachine, VMProfile, profile_run
from .translate import translate_graph, translate_program

__all__ = [
    "BytecodeFunction",
    "BytecodeProgram",
    "ProfilingVirtualMachine",
    "VMProfile",
    "VirtualMachine",
    "disassemble",
    "profile_run",
    "translate_graph",
    "translate_program",
]
