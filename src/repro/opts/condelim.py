"""Conditional elimination (Section 2, Listing 1/2).

A depth-first traversal of the dominator tree carries a stack of facts
derived from dominating branch conditions ("Every split in the control-
flow graph narrows the information for a dominating condition's
operands", Section 4.1).  Dominated conditions that the facts decide are
folded, letting the CFG cleanup remove the dead branch.

The fact store (:class:`FactScope`) is also the state the DBDS
simulation traversal reuses when it pauses at a predecessor-merge pair.
"""

from __future__ import annotations

from typing import Optional

from ..ir.block import Block
from ..ir.cfgutils import canonical_cfg_cleanup
from ..ir.dominators import DominatorTree
from ..ir.graph import Graph
from ..ir.nodes import Compare, Constant, Goto, If, Instruction, Not, Value
from ..ir.ops import CmpOp
from ..ir.stamps import (
    FALSE_STAMP,
    IntStamp,
    ObjectStamp,
    Stamp,
    TRUE_STAMP,
    join as stamp_join,
)
from .base import OptimizationContext, Phase
from .canonicalize import remove_dead_instructions
from .stampmath import compare_stamps, refine_by_compare


class FactScope:
    """A scoped map of value → refined stamp with undo support."""

    def __init__(self) -> None:
        self._facts: dict[Value, Stamp] = {}
        self._undo: list[list[tuple[Value, Optional[Stamp]]]] = []

    def push_scope(self) -> None:
        self._undo.append([])

    def pop_scope(self) -> None:
        for value, old in reversed(self._undo.pop()):
            if old is None:
                del self._facts[value]
            else:
                self._facts[value] = old

    def refine(self, value: Value, stamp: Stamp) -> None:
        if isinstance(value, Constant):
            return  # constants cannot be refined further
        current = self._facts.get(value)
        try:
            combined = stamp_join(current, stamp) if current is not None else stamp_join(value.stamp, stamp)
        except TypeError:
            return  # mismatched stamp kinds: ignore the fact
        if self._undo:
            self._undo[-1].append((value, current))
        self._facts[value] = combined

    def stamp_of(self, value: Value) -> Stamp:
        return self._facts.get(value, value.stamp)

    def snapshot(self) -> dict[Value, Stamp]:
        return dict(self._facts)


class FactContext(OptimizationContext):
    """Optimization context whose stamps include branch facts."""

    def __init__(self, graph: Graph, facts: FactScope) -> None:
        super().__init__(graph)
        self.facts = facts

    def stamp(self, value: Value) -> Stamp:
        return self.facts.stamp_of(self.resolve(value))


def assume_condition(facts: FactScope, condition: Value, holds: bool) -> None:
    """Record everything implied by ``condition == holds``.

    * the condition value itself becomes a known boolean;
    * ``Not`` unwraps with the outcome flipped;
    * a :class:`Compare` refines both operand stamps (integer ranges,
      null-ness for reference equality).
    """
    facts.refine(condition, TRUE_STAMP if holds else FALSE_STAMP)
    if isinstance(condition, Not):
        assume_condition(facts, condition.input(0), not holds)
        return
    if not isinstance(condition, Compare):
        return
    x, y = condition.x, condition.y
    sx, sy = facts.stamp_of(x), facts.stamp_of(y)
    if isinstance(sx, IntStamp) and isinstance(sy, IntStamp):
        nx, ny = refine_by_compare(condition.op, sx, sy, holds)
        facts.refine(x, nx)
        facts.refine(y, ny)
        return
    if isinstance(sx, ObjectStamp) and isinstance(sy, ObjectStamp):
        op = condition.op if holds else condition.op.negate()
        if op is CmpOp.EQ:
            if sy.always_null:
                facts.refine(x, ObjectStamp(sx.type, always_null=True))
            if sx.always_null:
                facts.refine(y, ObjectStamp(sy.type, always_null=True))
        elif op is CmpOp.NE:
            if sy.always_null:
                facts.refine(x, ObjectStamp(sx.type, non_null=True))
            if sx.always_null:
                facts.refine(y, ObjectStamp(sy.type, non_null=True))


class ConditionalEliminationPhase(Phase):
    """Fold dominated conditions that dominating branches decide."""

    name = "conditional-elimination"

    def run(self, graph: Graph) -> int:
        folded = self._run_traversal(graph)
        if folded:
            canonical_cfg_cleanup(graph)
            remove_dead_instructions(graph)
        return folded

    def _run_traversal(self, graph: Graph) -> int:
        dom = graph.dominator_tree()
        facts = FactScope()
        #: If terminators to fold: (block, decided outcome)
        decisions: list[tuple[Block, bool]] = []

        # Iterative DFS to avoid Python recursion limits on deep CFGs.
        self._iterative_dfs(graph, dom, facts, decisions)

        for block, outcome in decisions:
            term = block.terminator
            if isinstance(term, If):
                target = term.true_target if outcome else term.false_target
                block.set_terminator(Goto(target))
        return len(decisions)

    def _iterative_dfs(
        self,
        graph: Graph,
        dom: DominatorTree,
        facts: FactScope,
        decisions: list[tuple[Block, bool]],
    ) -> None:
        ENTER, LEAVE = 0, 1
        stack: list[tuple[int, Block]] = [(ENTER, graph.entry)]
        while stack:
            action, block = stack.pop()
            if action == LEAVE:
                facts.pop_scope()
                continue
            facts.push_scope()
            stack.append((LEAVE, block))
            self._apply_edge_facts(block, dom, facts)
            term = block.terminator
            if isinstance(term, If):
                outcome = self._decide(term.condition, facts)
                if outcome is not None:
                    decisions.append((block, outcome))
            for child in reversed(dom.dominator_tree_children(block)):
                stack.append((ENTER, child))

    @staticmethod
    def _apply_edge_facts(block: Block, dom: DominatorTree, facts: FactScope) -> None:
        """When ``block`` is a branch target of its immediate dominator's
        ``If`` (and its only predecessor), the branch condition holds or
        fails throughout the dominator subtree rooted here."""
        if len(block.predecessors) != 1:
            return
        pred = block.predecessors[0]
        if dom.immediate_dominator(block) is not pred:
            return
        term = pred.terminator
        if not isinstance(term, If):
            return
        assume_condition(facts, term.condition, block is term.true_target)

    @staticmethod
    def _decide(condition: Value, facts: FactScope) -> Optional[bool]:
        stamp = facts.stamp_of(condition)
        known = stamp.as_constant()
        if known is not None:
            return bool(known[0])
        if isinstance(condition, Compare):
            return compare_stamps(
                condition.op,
                facts.stamp_of(condition.x),
                facts.stamp_of(condition.y),
            )
        return None
