"""Tests for IR values/instructions: use-def bookkeeping, properties."""

import pytest

from repro.ir import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    BinOp,
    BOOL,
    Call,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    ObjectType,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
)
from repro.ir.stamps import IntStamp, ObjectStamp


@pytest.fixture
def graph():
    return Graph("f", [("a", INT), ("b", INT)], INT)


class TestUseDef:
    def test_inputs_registered(self, graph):
        a, b = graph.parameters
        add = ArithOp(BinOp.ADD, a, b)
        assert add in a.uses and add in b.uses
        assert a.uses[add] == 1

    def test_duplicate_operand_counted(self, graph):
        a = graph.parameters[0]
        add = ArithOp(BinOp.ADD, a, a)
        assert a.uses[add] == 2

    def test_set_input_updates_uses(self, graph):
        a, b = graph.parameters
        add = ArithOp(BinOp.ADD, a, a)
        add.set_input(0, b)
        assert a.uses[add] == 1
        assert b.uses[add] == 1
        assert add.inputs == (b, a)

    def test_replace_input_all_slots(self, graph):
        a, b = graph.parameters
        add = ArithOp(BinOp.ADD, a, a)
        add.replace_input(a, b)
        assert add.inputs == (b, b)
        assert a.uses.get(add) is None
        assert b.uses[add] == 2

    def test_replace_all_uses(self, graph):
        a, b = graph.parameters
        add1 = ArithOp(BinOp.ADD, a, graph.const_int(1))
        add2 = ArithOp(BinOp.MUL, add1, add1)
        add1.replace_all_uses(b)
        assert add2.inputs == (b, b)
        assert not add1.has_uses()

    def test_replace_all_uses_with_self_is_noop(self, graph):
        a = graph.parameters[0]
        add = ArithOp(BinOp.ADD, a, a)
        a.replace_all_uses(a)
        assert add.inputs == (a, a)

    def test_drop_inputs(self, graph):
        a, b = graph.parameters
        add = ArithOp(BinOp.ADD, a, b)
        add.drop_inputs()
        assert not a.uses and not b.uses
        assert add.inputs == ()


class TestProperties:
    def test_side_effect_flags(self, graph):
        a = graph.parameters[0]
        obj_ty = ObjectType("A")
        assert New(obj_ty).has_side_effect
        assert StoreGlobal("g", a).has_side_effect
        assert Call("f", [a], INT).has_side_effect
        assert not ArithOp(BinOp.ADD, a, a).has_side_effect
        assert not Compare(CmpOp.LT, a, a).has_side_effect

    def test_trap_flags(self, graph):
        a = graph.parameters[0]
        assert ArithOp(BinOp.DIV, a, a).can_trap
        assert not ArithOp(BinOp.ADD, a, a).can_trap
        alloc = New(ObjectType("A"))
        assert LoadField(alloc, "x", INT).can_trap
        assert ArrayLength(alloc).can_trap

    def test_is_removable(self, graph):
        a = graph.parameters[0]
        assert ArithOp(BinOp.ADD, a, a).is_removable
        assert not ArithOp(BinOp.DIV, a, a).is_removable
        assert not StoreGlobal("g", a).is_removable

    def test_types_from_stamps(self, graph):
        a = graph.parameters[0]
        assert ArithOp(BinOp.ADD, a, a).type == INT
        assert Compare(CmpOp.LT, a, a).type == BOOL
        assert Not(Compare(CmpOp.LT, a, a)).type == BOOL
        assert Neg(a).type == INT

    def test_new_stamp_non_null(self):
        alloc = New(ObjectType("A"))
        assert isinstance(alloc.stamp, ObjectStamp)
        assert alloc.stamp.non_null

    def test_array_length_stamp_non_negative(self, graph):
        arr = NewArray(INT, graph.const_int(4))
        length = ArrayLength(arr)
        assert isinstance(length.stamp, IntStamp)
        assert length.stamp.lo == 0

    def test_declared_types(self, graph):
        alloc = New(ObjectType("A"))
        assert LoadField(alloc, "x", INT).type == INT
        assert LoadGlobal("g", BOOL).type == BOOL
        assert ArrayLoad(alloc, graph.const_int(0), INT).type == INT
        assert Call("f", [], BOOL).type == BOOL


class TestConstants:
    def test_interning(self, graph):
        assert graph.const_int(3) is graph.const_int(3)
        assert graph.const_int(3) is not graph.const_int(4)
        assert graph.const_bool(True) is graph.const_bool(True)
        # int 1 and bool True must not collide
        assert graph.const_int(1) is not graph.const_bool(True)

    def test_null_interning(self, graph):
        ty = ObjectType("A")
        assert graph.const_null(ty) is graph.const_null(ty)

    def test_constant_values(self, graph):
        assert graph.const_int(-7).value == -7
        assert graph.const_bool(False).value is False
        assert graph.const_null(ObjectType("A")).value is None

    def test_infer_type(self, graph):
        assert graph.constant(5).type == INT
        assert graph.constant(True).type == BOOL
        with pytest.raises(TypeError):
            graph.constant(None)

    def test_repr(self, graph):
        assert repr(graph.const_int(9)) == "c9"
        assert repr(graph.const_bool(True)) == "true"
        assert repr(graph.const_null(ObjectType("A"))) == "null"


class TestTerminators:
    def test_if_probability(self, graph):
        a = graph.parameters[0]
        t1, t2 = graph.new_block(), graph.new_block()
        cond = Compare(CmpOp.GT, a, graph.const_int(0))
        branch = If(cond, t1, t2, 0.8)
        assert branch.probability_of(t1) == pytest.approx(0.8)
        assert branch.probability_of(t2) == pytest.approx(0.2)
        assert branch.condition is cond

    def test_return_value_optional(self, graph):
        assert Return(None).value is None
        r = Return(graph.const_int(1))
        assert r.value is graph.const_int(1)

    def test_goto_target(self, graph):
        b = graph.new_block()
        assert Goto(b).target is b

    def test_terminator_describe(self, graph):
        b = graph.new_block("tgt")
        assert "tgt" in Goto(b).describe()
        assert "Return" in Return(None).describe()


class TestPhi:
    def test_positional_inputs(self, graph):
        a, b = graph.parameters
        p1, p2, merge = graph.new_block(), graph.new_block(), graph.new_block()
        p1.set_terminator(Goto(merge))
        p2.set_terminator(Goto(merge))
        phi = Phi(merge, INT, [a, b])
        merge.add_phi(phi)
        assert phi.input_for_predecessor_index(0) is a
        assert phi.input_for_predecessor_index(1) is b
        assert phi.type == INT
        assert "Phi" in phi.describe()
