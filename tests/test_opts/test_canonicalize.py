"""Tests for canonicalization ACs and the destructive phase."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import (
    ArithOp,
    ArrayLength,
    BinOp,
    CmpOp,
    Compare,
    Constant,
    Goto,
    Graph,
    If,
    INT,
    Neg,
    NewArray,
    Not,
    Return,
    verify_graph,
)
from repro.ir.stamps import IntStamp
from repro.opts.base import OptimizationContext, Rewrite
from repro.opts.canonicalize import (
    CanonicalizerPhase,
    canonicalize_instruction,
    fold_constant_branches,
    remove_dead_instructions,
)


@pytest.fixture
def graph():
    return Graph("f", [("x", INT), ("y", INT)], INT)


def canon(graph, ins):
    return canonicalize_instruction(ins, OptimizationContext(graph))


class TestConstantFolding:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (BinOp.ADD, 2, 3, 5),
            (BinOp.SUB, 2, 3, -1),
            (BinOp.MUL, 4, 5, 20),
            (BinOp.DIV, 7, 2, 3),
            (BinOp.MOD, 7, 3, 1),
            (BinOp.AND, 12, 10, 8),
            (BinOp.SHL, 1, 4, 16),
        ],
    )
    def test_arith_folds(self, graph, op, a, b, expected):
        ins = ArithOp(op, graph.const_int(a), graph.const_int(b))
        rewrite = canon(graph, ins)
        assert rewrite is not None
        assert isinstance(rewrite.replacement, Constant)
        assert rewrite.replacement.value == expected

    def test_division_by_zero_not_folded(self, graph):
        ins = ArithOp(BinOp.DIV, graph.const_int(1), graph.const_int(0))
        assert canon(graph, ins) is None

    def test_compare_folds(self, graph):
        ins = Compare(CmpOp.LT, graph.const_int(1), graph.const_int(2))
        rewrite = canon(graph, ins)
        assert rewrite.replacement.value is True

    def test_not_folds(self, graph):
        rewrite = canon(graph, Not(graph.const_bool(True)))
        assert rewrite.replacement.value is False

    def test_neg_folds(self, graph):
        rewrite = canon(graph, Neg(graph.const_int(5)))
        assert rewrite.replacement.value == -5


class TestAlgebraicIdentities:
    def test_add_zero(self, graph):
        x = graph.parameters[0]
        rewrite = canon(graph, ArithOp(BinOp.ADD, x, graph.const_int(0)))
        assert rewrite.replacement is x

    def test_add_zero_left_commutes(self, graph):
        x = graph.parameters[0]
        rewrite = canon(graph, ArithOp(BinOp.ADD, graph.const_int(0), x))
        assert rewrite.replacement is x

    def test_mul_one_and_zero(self, graph):
        x = graph.parameters[0]
        assert canon(graph, ArithOp(BinOp.MUL, x, graph.const_int(1))).replacement is x
        zero = canon(graph, ArithOp(BinOp.MUL, x, graph.const_int(0)))
        assert zero.replacement.value == 0

    def test_sub_self(self, graph):
        x = graph.parameters[0]
        rewrite = canon(graph, ArithOp(BinOp.SUB, x, x))
        assert rewrite.replacement.value == 0

    def test_xor_self(self, graph):
        x = graph.parameters[0]
        assert canon(graph, ArithOp(BinOp.XOR, x, x)).replacement.value == 0

    def test_and_or_self(self, graph):
        x = graph.parameters[0]
        assert canon(graph, ArithOp(BinOp.AND, x, x)).replacement is x
        assert canon(graph, ArithOp(BinOp.OR, x, x)).replacement is x

    def test_and_masks(self, graph):
        x = graph.parameters[0]
        assert canon(graph, ArithOp(BinOp.AND, x, graph.const_int(0))).replacement.value == 0
        assert canon(graph, ArithOp(BinOp.AND, x, graph.const_int(-1))).replacement is x

    def test_shift_zero(self, graph):
        x = graph.parameters[0]
        assert canon(graph, ArithOp(BinOp.SHL, x, graph.const_int(0))).replacement is x

    def test_no_rewrite_for_plain_op(self, graph):
        x, y = graph.parameters
        assert canon(graph, ArithOp(BinOp.ADD, x, y)) is None


class TestStrengthReduction:
    def test_mul_power_of_two_becomes_shift(self, graph):
        x = graph.parameters[0]
        rewrite = canon(graph, ArithOp(BinOp.MUL, x, graph.const_int(8)))
        assert len(rewrite.new_instructions) == 1
        shift = rewrite.new_instructions[0]
        assert isinstance(shift, ArithOp) and shift.op is BinOp.SHL
        assert shift.y.value == 3

    def test_div_power_of_two_nonneg_single_shift(self, graph):
        length = ArrayLength(NewArray(INT, graph.parameters[0]))
        rewrite = canon(graph, ArithOp(BinOp.DIV, length, graph.const_int(4)))
        assert len(rewrite.new_instructions) == 1
        assert rewrite.new_instructions[0].op is BinOp.SHR

    def test_div_power_of_two_signed_sequence(self, graph):
        x = graph.parameters[0]  # may be negative
        rewrite = canon(graph, ArithOp(BinOp.DIV, x, graph.const_int(4)))
        assert rewrite is not None
        assert len(rewrite.new_instructions) == 4
        # still much cheaper than a 32-cycle divide
        assert rewrite.cycles_delta(ArithOp(BinOp.DIV, x, graph.const_int(4))) > 0

    def test_mod_power_of_two_nonneg(self, graph):
        length = ArrayLength(NewArray(INT, graph.parameters[0]))
        rewrite = canon(graph, ArithOp(BinOp.MOD, length, graph.const_int(8)))
        assert rewrite.new_instructions[0].op is BinOp.AND
        assert rewrite.new_instructions[0].y.value == 7

    def test_mul_nonpower_not_reduced(self, graph):
        x = graph.parameters[0]
        assert canon(graph, ArithOp(BinOp.MUL, x, graph.const_int(6))) is None

    @given(st.integers(min_value=-1000, max_value=1000), st.sampled_from([2, 4, 8, 16]))
    def test_signed_div_sequence_is_correct(self, value, divisor):
        """The signed strength-reduction sequence must compute exactly
        a truncating division for all inputs."""
        source = f"fn f(x: int) -> int {{ return x / {divisor}; }}"
        program = compile_source(source)
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        # No Div instruction survives.
        ops = [
            i.op for b in graph.blocks for i in b.instructions
            if isinstance(i, ArithOp)
        ]
        assert BinOp.DIV not in ops
        result = Interpreter(program).run("f", [value])
        import math
        expected = abs(value) // divisor * (1 if value >= 0 else -1)
        assert result.value == expected


class TestCompareCanonicalization:
    def test_stamp_fold_disjoint_ranges(self, graph):
        length = ArrayLength(NewArray(INT, graph.parameters[0]))  # >= 0
        rewrite = canon(graph, Compare(CmpOp.LT, length, graph.const_int(0)))
        assert rewrite.replacement.value is False

    def test_self_compare(self, graph):
        x = graph.parameters[0]
        assert canon(graph, Compare(CmpOp.EQ, x, x)).replacement.value is True
        assert canon(graph, Compare(CmpOp.LT, x, x)).replacement.value is False
        assert canon(graph, Compare(CmpOp.GE, x, x)).replacement.value is True

    def test_bool_unwrap(self, graph):
        cmp = Compare(CmpOp.LT, graph.parameters[0], graph.parameters[1])
        eq_true = Compare(CmpOp.EQ, cmp, graph.const_bool(True))
        assert canon(graph, eq_true).replacement is cmp
        eq_false = Compare(CmpOp.EQ, cmp, graph.const_bool(False))
        rewrite = canon(graph, eq_false)
        assert isinstance(rewrite.new_instructions[0], Not)

    def test_not_of_compare_becomes_negated_compare(self, graph):
        cmp = Compare(CmpOp.LT, graph.parameters[0], graph.parameters[1])
        rewrite = canon(graph, Not(cmp))
        negated = rewrite.new_instructions[0]
        assert isinstance(negated, Compare) and negated.op is CmpOp.GE

    def test_double_not(self, graph):
        cmp = Compare(CmpOp.LT, graph.parameters[0], graph.parameters[1])
        inner = Not(cmp)
        rewrite = canon(graph, Not(inner))
        assert rewrite.replacement is cmp


class TestArrayLengthFold:
    def test_length_of_new_array(self, graph):
        length_input = ArrayLength(NewArray(INT, graph.parameters[0]))  # >=0 stamp
        arr = NewArray(INT, length_input)
        rewrite = canon(graph, ArrayLength(arr))
        assert rewrite.replacement is length_input

    def test_unknown_sign_not_folded(self, graph):
        arr = NewArray(INT, graph.parameters[0])
        assert canon(graph, ArrayLength(arr)) is None


class TestPhaseDriver:
    def test_phase_runs_to_fixpoint(self):
        program = compile_source(
            "fn f(x: int) -> int { return (x * 1 + 0) * 4 / 2 + (3 - 3); }"
        )
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        verify_graph(graph)
        result = Interpreter(program).run("f", [10])
        assert result.value == 20

    def test_constant_branch_folds_away(self):
        program = compile_source(
            "fn f(x: int) -> int { if (1 < 2) { return x; } return 0; }"
        )
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        assert len(graph.blocks) == 1
        assert not any(isinstance(b.terminator, If) for b in graph.blocks)

    def test_dead_code_removed(self):
        program = compile_source(
            "fn f(x: int) -> int { var unused: int = x * 99 + 3; return x; }"
        )
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        assert graph.instruction_count() == 0

    def test_trap_instructions_not_removed(self):
        program = compile_source(
            "fn f(x: int) -> int { var unused: int = 10 / x; return x; }"
        )
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        # The division may trap: it must survive even though unused.
        ops = [
            i.op for b in graph.blocks for i in b.instructions
            if isinstance(i, ArithOp)
        ]
        assert BinOp.DIV in ops
        assert Interpreter(program).run("f", [0]).trapped

    def test_semantics_preserved_on_mixed_program(self):
        source = """
fn f(x: int) -> int {
  var a: int = x * 2;
  var b: int = a + 0;
  var c: int = b * 1;
  if (c >= c) { return c - x; }
  return 0 - 1;
}
"""
        program = compile_source(source)
        expected = [Interpreter(program).run("f", [k]).value for k in range(-5, 6)]
        CanonicalizerPhase().run(program.function("f"))
        verify_graph(program.function("f"))
        actual = [Interpreter(program).run("f", [k]).value for k in range(-5, 6)]
        assert actual == expected
