"""Setuptools shim.

Allows legacy editable installs (`pip install -e . --no-build-isolation`
via `setup.py develop`) in offline environments that lack the `wheel`
package; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
