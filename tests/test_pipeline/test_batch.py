"""Batch driver behavior: ordering, errors, warm-cache profiles, CLI."""

from __future__ import annotations

import json
import textwrap

from repro.__main__ import main
from repro.obs import Tracer, event_to_dict, validate_record
from repro.pipeline.batch import BatchOptions, compile_batch
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.config import DBDS

ADD = textwrap.dedent(
    """
    fn main(n: int) -> int {
      var acc: int = 0;
      var i: int = 0;
      while (i < n) {
        if (i > 1) { acc = acc + i; } else { acc = acc - i; }
        i = i + 1;
      }
      return acc;
    }
    """
)

MUL = ADD.replace("acc + i", "acc + 2 * i")
BROKEN = "fn main(n: int) -> int { return undefined_name; }"


def batch_options(**overrides):
    defaults = dict(config=DBDS, jobs=1, args=(5,))
    defaults.update(overrides)
    return BatchOptions(**defaults)


def test_batch_results_in_input_order():
    specs = [("b.mini", MUL), ("a.mini", ADD)]
    report = compile_batch(specs, batch_options())
    assert [r.name for r in report.results] == ["b.mini", "a.mini"]
    assert report.ok
    assert report.compiled == 2 and report.hits == 0
    for result in report.results:
        assert result.manifest["digest"]
        assert result.report is not None
        # The rehydrated program still runs.
        assert result.program().function("main") is not None


def test_batch_error_file_does_not_abort_batch():
    specs = [("bad.mini", BROKEN), ("good.mini", ADD)]
    report = compile_batch(specs, batch_options())
    assert not report.ok
    bad, good = report.results
    assert bad.error is not None and not bad.ok
    assert good.ok and good.error is None
    assert report.compiled == 1


def test_batch_emits_worker_events():
    tracer = Tracer()
    report = compile_batch([("a.mini", ADD)], batch_options(), tracer=tracer)
    assert report.ok
    workers = [e for e in tracer.events if e.name == "batch.worker"]
    assert len(workers) == 1
    assert workers[0].attrs["path"] == "a.mini"
    assert workers[0].attrs["ok"] is True
    assert validate_record(event_to_dict(workers[0])) == []
    assert tracer.counter("batch.worker") == 1


def test_cold_batch_profile_has_phase_spans():
    report = compile_batch([("a.mini", ADD)], batch_options())
    profile = report.profile()
    assert profile.phases, "a cold compile must record optimization phases"
    assert "dbds" in profile.phases


def test_warm_batch_runs_zero_optimization_phase_spans(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    specs = [("a.mini", ADD), ("b.mini", MUL)]

    cold = compile_batch(specs, batch_options(cache=cache))
    assert cold.ok and cold.compiled == 2 and cold.hits == 0
    assert cold.profile().phases

    # A fresh cache object over the same directory: the warm run models
    # a new process finding the previous run's artifacts on disk.
    cache = ArtifactCache(tmp_path / "cache")
    warm = compile_batch(specs, batch_options(cache=cache))
    assert warm.ok and warm.hits == 2 and warm.compiled == 0
    # The acceptance criterion: a warm-cache rerun executes zero
    # optimization-phase spans.
    assert warm.profile().phases == {}
    assert warm.profile().total_time == 0.0
    assert warm.events() == []
    # ... and the artifacts served from cache are the cold ones.
    for before, after in zip(cold.results, warm.results):
        assert after.cached
        assert after.manifest["digest"] == before.manifest["digest"]
    assert cache.stats.hit_rate >= 0.9


def test_warm_batch_entries_keep_their_decision_trace(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    compile_batch([("a.mini", ADD)], batch_options(cache=cache))
    warm = compile_batch([("a.mini", ADD)], batch_options(cache=cache))
    (result,) = warm.results
    # The stored per-file trace survives for offline explainability even
    # though it is excluded from the batch profile.
    assert any(e.name == "dbds.decision" for e in result.events)
    assert result.manifest["decisions"]


def test_cache_key_respects_batch_args(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    compile_batch([("a.mini", ADD)], batch_options(cache=cache))
    # Different profiling args → different key → recompile, not a hit.
    report = compile_batch([("a.mini", ADD)], batch_options(args=(6,), cache=cache))
    assert report.hits == 0 and report.compiled == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def write_examples(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "a.mini").write_text(ADD)
    (src / "b.mini").write_text(MUL)
    return src


def test_cli_batch_json(tmp_path, capsys):
    src = write_examples(tmp_path)
    rc = main(
        [
            "batch", str(src), "-j", "1", "--args", "5",
            "--cache-dir", str(tmp_path / "cache"), "--json",
        ]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["compiled"] == 2 and payload["hits"] == 0
    assert len(payload["files"]) == 2
    assert payload["profile"]["phases"]


def test_cli_batch_warm_rerun_profile_is_empty(tmp_path, capsys):
    src = write_examples(tmp_path)
    cache_dir = str(tmp_path / "cache")
    base = ["batch", str(src), "-j", "1", "--args", "5", "--cache-dir", cache_dir]

    assert main(base + ["--profile-compile", "--cache-stats"]) == 0
    cold = capsys.readouterr()
    assert "compiled" in cold.out
    assert "0% hit rate" in cold.err

    assert main(base + ["--profile-compile", "--cache-stats"]) == 0
    captured = capsys.readouterr()
    warm_out = captured.out
    # Every file served from cache...
    assert warm_out.count("cache\n") + warm_out.count("cache \n") >= 1
    assert "2 from cache, 0 compiled" in warm_out
    # ...with ≥90% hits and an empty compile profile: the acceptance
    # criterion that no optimization phase ran on the warm path.
    assert "100% hit rate" in captured.err
    assert "compile profile (0.00 ms total)" in warm_out
    profile_tail = warm_out.split("compile profile", 1)[1]
    assert "dbds" not in profile_tail
    assert "canonicalize" not in profile_tail


def test_cli_batch_no_cache_flag(tmp_path, capsys):
    src = write_examples(tmp_path)
    args = [
        "batch", str(src), "-j", "1", "--args", "5",
        "--cache-dir", str(tmp_path / "cache"), "--no-cache", "--json",
    ]
    assert main(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    second = json.loads(capsys.readouterr().out)
    assert first["hits"] == 0 and second["hits"] == 0
    assert second["compiled"] == 2
    assert not (tmp_path / "cache").exists()


def test_cli_batch_reports_bad_file(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.mini").write_text(BROKEN)
    (src / "good.mini").write_text(ADD)
    rc = main(["batch", str(src), "-j", "1", "--args", "5", "--no-cache"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "error" in out
    assert "1 compiled" in out
