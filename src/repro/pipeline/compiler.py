"""The compilation pipeline: front-end phases, DBDS, metrics.

Mirrors the Graal front end of Section 5.1: inlining and the high-level
optimizations run first, DBDS sits in the middle, and cleanup phases run
after.  Per compilation unit the pipeline records the three quantities
the paper evaluates: compile time (wall clock of the phases), code size
(node-cost-model size of the final graph), and — via
:func:`measure_performance` — the simulated peak performance of the
generated code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..analysis.blame import CHECK_OFF, PhaseGuard, use_guard
from ..costmodel.estimator import graph_code_size
from ..costmodel.model import cycles_of
from ..dbds.backtracking import BacktrackingDuplication
from ..dbds.phase import DbdsPhase
from ..frontend.irbuilder import compile_source
from ..interp.interpreter import ExecutionResult, Interpreter
from ..interp.profile import apply_profile, profile_program
from ..ir.graph import Graph, Program
from ..ir.verifier import verify_graph
from ..obs.metrics import current_registry
from ..obs.tracer import Tracer, use_tracer
from ..opts.canonicalize import CanonicalizerPhase
from ..opts.condelim import ConditionalEliminationPhase
from ..opts.gvn import GlobalValueNumberingPhase
from ..opts.inline import InliningPhase
from ..opts.licm import LoopInvariantCodeMotionPhase
from ..opts.pea import PartialEscapeAnalysisPhase
from ..opts.readelim import ReadEliminationPhase
from .config import BASELINE, CompilerConfig


@dataclass
class UnitMetrics:
    """Metrics of one compiled function (compilation unit).

    ``duplications`` and ``candidates`` are wired from the tracer's
    ``dbds.*`` counters; ``phase_times`` (phase name → seconds) is
    populated only when compiling under an event-recording tracer.
    """

    function: str
    compile_time: float = 0.0
    code_size: float = 0.0
    initial_code_size: float = 0.0
    duplications: int = 0
    candidates: int = 0
    phase_times: dict[str, float] = field(default_factory=dict)

    @property
    def code_size_increase(self) -> float:
        if self.initial_code_size == 0:
            return 0.0
        return self.code_size / self.initial_code_size - 1.0

    def to_json(self) -> dict[str, Any]:
        return {
            "function": self.function,
            "compile_time": self.compile_time,
            "code_size": self.code_size,
            "initial_code_size": self.initial_code_size,
            "duplications": self.duplications,
            "candidates": self.candidates,
            "phase_times": dict(self.phase_times),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "UnitMetrics":
        return cls(
            function=data["function"],
            compile_time=data.get("compile_time", 0.0),
            code_size=data.get("code_size", 0.0),
            initial_code_size=data.get("initial_code_size", 0.0),
            duplications=data.get("duplications", 0),
            candidates=data.get("candidates", 0),
            phase_times=dict(data.get("phase_times", {})),
        )


@dataclass
class CompilationReport:
    """Aggregated result of compiling a whole program."""

    config: str
    units: list[UnitMetrics] = field(default_factory=list)

    @property
    def total_compile_time(self) -> float:
        return sum(u.compile_time for u in self.units)

    @property
    def total_code_size(self) -> float:
        return sum(u.code_size for u in self.units)

    @property
    def total_duplications(self) -> int:
        return sum(u.duplications for u in self.units)

    def total_phase_times(self) -> dict[str, float]:
        """Seconds per phase summed over units (empty if untraced)."""
        totals: dict[str, float] = {}
        for unit in self.units:
            for phase, seconds in unit.phase_times.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def to_json(self) -> dict[str, Any]:
        """Machine-readable form (``python -m repro compile --json``)."""
        return {
            "config": self.config,
            "units": [unit.to_json() for unit in self.units],
            "totals": {
                "compile_time": self.total_compile_time,
                "code_size": self.total_code_size,
                "duplications": self.total_duplications,
                "phase_times": self.total_phase_times(),
            },
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CompilationReport":
        return cls(
            config=data["config"],
            units=[UnitMetrics.from_json(u) for u in data.get("units", [])],
        )


class Compiler:
    """Compiles IR programs under a :class:`CompilerConfig`.

    Pass an event-recording :class:`~repro.obs.tracer.Tracer` to get a
    full trace — per-phase spans, DBDS candidate and decision events.
    By default a counting-only tracer is used, which keeps overhead at
    one flag check per phase while still feeding the ``dbds.*``
    counters that :class:`UnitMetrics` is wired from.

    ``check_ir`` selects the IR sanitizer mode (``--check-ir``): ``off``
    (default), ``boundaries`` (pipeline entry/exit only), or
    ``each-phase`` (around every optimization phase, with phase-blame
    diagnostics).  ``fail_fast=False`` collects every violation instead
    of raising :class:`~repro.analysis.PhaseBlameError` on the first.
    """

    def __init__(
        self,
        config: CompilerConfig = BASELINE,
        tracer: Optional[Tracer] = None,
        check_ir: str = CHECK_OFF,
        fail_fast: bool = True,
    ) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.guard: Optional[PhaseGuard] = (
            PhaseGuard(mode=check_ir, fail_fast=fail_fast)
            if check_ir != CHECK_OFF
            else None
        )

    # ------------------------------------------------------------------
    def compile_program(self, program: Program) -> CompilationReport:
        """Optimize every function in place; returns per-unit metrics."""
        report = CompilationReport(config=self.config.name)
        for name in list(program.functions):
            report.units.append(self.compile_function(program, name))
        return report

    def compile_function(self, program: Program, name: str) -> UnitMetrics:
        with use_tracer(self.tracer):
            if self.guard is None:
                return self._compile_function(program, name)
            with use_guard(self.guard):
                return self._compile_function(program, name)

    def _compile_function(self, program: Program, name: str) -> UnitMetrics:
        tracer = self.tracer
        registry = current_registry()
        graph = program.function(name)
        metrics = UnitMetrics(function=name)
        candidates_before = tracer.counter("dbds.candidates")
        duplications_before = tracer.counter("dbds.duplications")
        span_start = len(tracer.events)
        with tracer.span("compile", function=name, config=self.config.name):
            start = time.perf_counter()
            if self.guard is not None:
                self.guard.check_boundary("pipeline-entry", graph)

            if self.config.enable_inlining:
                InliningPhase(program).run(graph)
            self._cleanup_phases(program, graph)
            if self.config.enable_peeling:
                from ..opts.peeling import LoopPeelingPhase

                LoopPeelingPhase().run(graph)
                self._cleanup_phases(program, graph)
            metrics.initial_code_size = graph_code_size(graph)

            if self.config.backtracking:
                backtracker = BacktrackingDuplication(program)
                bt_start = time.perf_counter() if registry.enabled else 0.0
                with tracer.span(
                    "phase", phase=BacktrackingDuplication.name, graph=name
                ):
                    new_graph = backtracker.run(graph)
                if registry.enabled:
                    # Not a Phase subclass, so the phase-entry hook
                    # never sees it — observe its wall time here.
                    registry.observe(
                        "repro_compile_phase_seconds",
                        time.perf_counter() - bt_start,
                        phase=BacktrackingDuplication.name,
                    )
                if new_graph is not graph:
                    program.functions[name] = new_graph
                    graph = new_graph
                tracer.count("dbds.duplications", backtracker.stats.kept)
                # Backtracking swaps whole graphs rather than running as
                # a Phase, so the per-phase guard hook never sees it.
                if self.guard is not None and self.guard.per_phase:
                    self.guard.check_boundary("backtracking", graph)
            elif self.config.enable_dbds:
                DbdsPhase(program, self.config.dbds_config()).run(graph)

            self._cleanup_phases(program, graph)
            if self.guard is not None:
                self.guard.check_boundary("pipeline-exit", graph)
            metrics.compile_time = time.perf_counter() - start

        metrics.duplications = (
            tracer.counter("dbds.duplications") - duplications_before
        )
        metrics.candidates = tracer.counter("dbds.candidates") - candidates_before
        metrics.code_size = graph_code_size(graph)
        if tracer.enabled:
            for event in tracer.events[span_start:]:
                if event.kind == "span" and event.name == "phase":
                    phase_name = str(event.attrs.get("phase", "?"))
                    metrics.phase_times[phase_name] = (
                        metrics.phase_times.get(phase_name, 0.0)
                        + (event.dur or 0.0)
                    )
        registry.inc("repro_compile_units_total")
        registry.observe("repro_compile_unit_seconds", metrics.compile_time)
        if self.config.paranoid:
            verify_graph(graph)
        return metrics

    def _cleanup_phases(self, program: Program, graph: Graph) -> None:
        CanonicalizerPhase().run(graph)
        GlobalValueNumberingPhase().run(graph)
        LoopInvariantCodeMotionPhase().run(graph)
        ConditionalEliminationPhase().run(graph)
        ReadEliminationPhase(program).run(graph)
        PartialEscapeAnalysisPhase(program).run(graph)
        CanonicalizerPhase().run(graph)
        if self.config.paranoid:
            verify_graph(graph)


# ----------------------------------------------------------------------
# Convenience entry points used by examples, tests and the harness.
# ----------------------------------------------------------------------
def compile_and_profile(
    source: str,
    entry: str,
    profile_args: Iterable[list[Any]],
    config: CompilerConfig = BASELINE,
    tracer: Optional[Tracer] = None,
    check_ir: str = CHECK_OFF,
    fail_fast: bool = True,
) -> tuple[Program, CompilationReport]:
    """Front-end + profiling run + optimizing compilation.

    This is the full JIT story in one call: parse, collect a profile by
    interpreting the unoptimized program, feed the profile to the
    compiler, optimize.  Pass a ``tracer`` to record the compilation,
    a ``check_ir`` mode to run the IR sanitizers while compiling.
    """
    program = compile_source(source)
    collector = profile_program(program, entry, profile_args)
    apply_profile(program, collector)
    compiler = Compiler(config, tracer=tracer, check_ir=check_ir, fail_fast=fail_fast)
    report = compiler.compile_program(program)
    return program, report


#: Execution engines usable for measurement runs.
ENGINES = ("reference", "vm", "closure", "megaunit", "tiered")

#: engines accepted by :func:`make_engine` — the public five plus
#: ``vm-nofuse``, the flat-tuple machine loops with the fused/quickened
#: fast stream pinned off (the bench engine matrix's ablation row)
ALL_ENGINES = ENGINES + ("vm-nofuse",)


def make_engine(
    engine: str,
    program: Program,
    bytecode: Any = None,
    max_steps: int = 50_000_000,
    metered: bool = True,
    check_bc: str = "off",
    tiering: Any = None,
    plan_cache: Any = None,
) -> Any:
    """Construct a runner for ``engine`` (uniform run/reset/state API).

    ``reference`` is the tree-walking interpreter; ``vm`` the bytecode
    machine with superinstruction fusion and quickening; ``vm-nofuse``
    the same machine pinned to its flat-tuple loops; ``closure`` the
    closure-compiling engine; ``megaunit`` the whole-program compiler
    (one exec unit, direct calls — see docs/VM.md); ``tiered`` the
    adaptive machine that
    starts every function in the unfused baseline and promotes hot
    ones at run time (see docs/TIERING.md — ``tiering`` passes a
    :class:`~repro.vm.tiering.TieringPolicy`, ``plan_cache`` an
    :class:`~repro.pipeline.cache.ArtifactCache` whose aux store keeps
    profile-fingerprint-keyed tier-up plans).  VM engines accept a
    pre-translated ``bytecode`` program to skip re-translation (e.g. a
    cache hit) — except ``tiered``, which always translates its own
    unfused baseline so every function starts cold.  All engines
    report identical cycles/steps/outcomes by construction.
    ``check_bc="rewrite"`` verifies any bytecode translated here (see
    :func:`repro.vm.translate.translate_program`); pre-translated
    bytecode is the cache's responsibility (``--check-bc=load``).
    """
    if engine == "reference":
        return Interpreter(
            program,
            max_steps=max_steps,
            cycle_cost=cycles_of if metered else None,
            terminator_cost=cycles_of if metered else None,
        )
    if engine == "tiered":
        from ..vm import TieredVirtualMachine, translate_program

        # A fused cache artifact would start every function already
        # promoted; the tiered engine instead translates its own
        # baseline stream (cheap next to the compile it follows) and
        # verifies it under the same --check-bc contract.
        baseline = translate_program(program, fuse=False, check_bc=check_bc)
        if tiering is not None and tiering.check_bc == "off" and check_bc == "rewrite":
            from dataclasses import replace

            tiering = replace(tiering, check_bc="rewrite")
        elif tiering is None and check_bc == "rewrite":
            from ..vm.tiering import TieringPolicy

            tiering = TieringPolicy(check_bc="rewrite")
        return TieredVirtualMachine(
            program,
            baseline,
            max_steps=max_steps,
            metered=metered,
            policy=tiering,
            plan_cache=plan_cache,
        )
    if engine not in ("vm", "vm-nofuse", "closure", "megaunit"):
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {ALL_ENGINES})"
        )
    from ..vm import (
        ClosureVirtualMachine,
        MegaunitVirtualMachine,
        VirtualMachine,
        translate_program,
    )

    if bytecode is None:
        bytecode = translate_program(program, check_bc=check_bc)
    if engine == "closure":
        return ClosureVirtualMachine(
            bytecode, max_steps=max_steps, metered=metered,
            codegen_cache=plan_cache,
        )
    if engine == "megaunit":
        return MegaunitVirtualMachine(
            bytecode, max_steps=max_steps, metered=metered,
            codegen_cache=plan_cache,
        )
    return VirtualMachine(
        bytecode,
        max_steps=max_steps,
        metered=metered,
        fused=engine == "vm",
    )


def measure_performance(
    program: Program,
    entry: str,
    arg_sets: Iterable[list[Any]],
    max_steps: int = 50_000_000,
    engine: str = "reference",
    bytecode: Any = None,
    check_bc: str = "off",
    tiering: Any = None,
    plan_cache: Any = None,
) -> tuple[float, list[ExecutionResult]]:
    """Simulated peak performance: total cost-model cycles over runs.

    ``engine`` selects the executor (see :func:`make_engine`): the
    ``reference`` tree-walking interpreter, the ``vm`` bytecode engine,
    the ``closure`` compiling engine or the adaptive ``tiered`` machine
    — pass a pre-translated ``bytecode`` program to skip
    re-translation, e.g. from a cache hit (``tiered`` ignores it and
    starts from its own cold baseline; ``tiering``/``plan_cache``
    configure it).  All engines report identical cycles/steps/outcomes
    by construction.
    """
    runner = make_engine(
        engine, program, bytecode=bytecode, max_steps=max_steps,
        check_bc=check_bc, tiering=tiering, plan_cache=plan_cache,
    )
    results = []
    total = 0.0
    for args in arg_sets:
        runner.reset()
        result = runner.run(entry, list(args))
        results.append(result)
        total += result.cycles
    if results:
        current_registry().inc(
            "repro_vm_runs_total", len(results), engine=engine
        )
    return total, results
