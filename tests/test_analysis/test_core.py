"""Framework tests: registry, selection, fail modes, counters."""

from __future__ import annotations

import pytest

from repro.analysis import (
    CORE_CHECKERS,
    Severity,
    all_checkers,
    checker,
    get_checker,
    run_checkers,
    run_program_checkers,
)
from repro.analysis.core import _REGISTRY
from repro.frontend.irbuilder import compile_source
from repro.obs.tracer import Tracer, use_tracer

from tests.helpers import build_diamond


def test_registry_holds_all_expected_checkers():
    names = [c.name for c in all_checkers()]
    assert names == [
        "block-structure",
        "edge-consistency",
        "phi-inputs",
        "phi-ordering",
        "ssa-dominance",
        "use-lists",
        "stamp-soundness",
        "loop-structure",
        "block-frequency",
        "lir-structure",
        "lir-liveness",
        "lir-allocation",
        "bc-structure",
        "bc-defuse",
        "bc-accounting",
        "bc-xcode-equivalence",
        "bc-codegen-lint",
        "bc-retranslate",
    ]


def test_scope_filtering():
    assert all(c.scope == "ir" for c in all_checkers("ir"))
    assert [c.name for c in all_checkers("lir")] == [
        "lir-structure",
        "lir-liveness",
        "lir-allocation",
    ]
    assert [c.name for c in all_checkers("bc")] == [
        "bc-structure",
        "bc-defuse",
        "bc-accounting",
        "bc-xcode-equivalence",
        "bc-codegen-lint",
        "bc-retranslate",
    ]


def test_get_checker_names_known_checkers_on_miss():
    with pytest.raises(KeyError, match="block-structure"):
        get_checker("no-such-checker")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        checker("block-structure")(lambda ctx: None)
    # A fresh name registers and can be removed again.
    @checker("test-dummy")
    def dummy(ctx):
        pass

    assert get_checker("test-dummy").func is dummy
    del _REGISTRY["test-dummy"]


def test_clean_graph_passes_everything(diamond):
    report = run_checkers(diamond["graph"])
    assert report.ok
    assert not report.violations
    assert list(report.checkers_run) == [c.name for c in all_checkers("ir")]
    assert set(report.checker_times) == set(report.checkers_run)


def test_enable_disable_selection(diamond):
    report = run_checkers(diamond["graph"], checkers=["block-structure"])
    assert report.checkers_run == ["block-structure"]
    report = run_checkers(diamond["graph"], disable=["stamp-soundness"])
    assert "stamp-soundness" not in report.checkers_run


def test_fail_fast_stops_at_first_erroring_checker(diamond):
    graph = diamond["graph"]
    # Two independent corruptions owned by different checkers.
    graph.entry.terminator.true_probability = 1.5
    diamond["phi"]._remove_input_at(1)
    keep_going = run_checkers(graph, checkers=CORE_CHECKERS)
    assert {v.checker for v in keep_going.errors()} == {
        "block-structure",
        "phi-inputs",
    }
    fast = run_checkers(graph, checkers=CORE_CHECKERS, fail_fast=True)
    assert [v.checker for v in fast.errors()] == ["block-structure"]
    assert fast.checkers_run == ["block-structure"]


def test_report_groups_violations_by_checker(diamond):
    graph = diamond["graph"]
    graph.entry.terminator.true_probability = -0.25
    report = run_checkers(graph)
    grouped = report.by_checker()
    assert set(grouped) == {"block-structure"}
    assert "probability" in report.format()


def test_run_program_checkers_covers_every_function():
    program = compile_source(
        """
        fn helper(x: int) -> int { return x + 1; }
        fn main(n: int) -> int { return helper(n); }
        """
    )
    reports = run_program_checkers(program)
    assert sorted(r.graph for r in reports) == ["helper", "main"]
    assert all(r.ok for r in reports)


def test_checker_crash_becomes_violation(diamond):
    @checker("test-crasher")
    def crasher(ctx):
        raise RuntimeError("boom")

    try:
        report = run_checkers(diamond["graph"], checkers=["test-crasher"])
    finally:
        del _REGISTRY["test-crasher"]
    assert not report.ok
    assert "checker crashed: RuntimeError: boom" in report.violations[0].message


def test_tracer_counters_record_pass_fail_and_time(diamond):
    tracer = Tracer()
    with use_tracer(tracer):
        run_checkers(diamond["graph"], checkers=["block-structure"])
        diamond["graph"].entry.terminator.true_probability = 7.0
        run_checkers(diamond["graph"], checkers=["block-structure"])
    assert tracer.counter("analysis.checker.block-structure.pass") == 1
    assert tracer.counter("analysis.checker.block-structure.fail") == 1
    assert tracer.counter("analysis.checker.block-structure.violations") == 1
    assert tracer.counter("analysis.checker.block-structure.us") >= 0
    assert tracer.counter("analysis.runs") == 2
    assert tracer.counter("analysis.runs.pass") == 1
    assert tracer.counter("analysis.runs.fail") == 1


def test_warnings_do_not_fail_a_run(diamond):
    @checker("test-warner", severity=Severity.WARNING)
    def warner(ctx):
        ctx.report("just a heads-up")

    try:
        report = run_checkers(diamond["graph"], checkers=["test-warner"])
    finally:
        del _REGISTRY["test-warner"]
    assert report.ok
    assert len(report.warnings()) == 1
