"""Integration tests on the bundled MiniLang applications: known-answer
checks plus cross-configuration and backend differentials."""

import pathlib

import pytest

from repro import BASELINE, DBDS, DUPALOT, compile_and_profile, compile_source
from repro.backend import Machine, compile_to_machine
from repro.interp.interpreter import Interpreter

APPS_DIR = pathlib.Path(__file__).parent.parent / "examples" / "apps"


def app_source(name: str) -> str:
    return (APPS_DIR / f"{name}.mini").read_text()


class TestNQueens:
    KNOWN = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92}

    @pytest.mark.parametrize("n,expected", sorted(KNOWN.items()))
    def test_known_solution_counts(self, n, expected):
        program = compile_source(app_source("nqueens"))
        assert Interpreter(program).run("main", [n]).value == expected

    def test_configs_agree(self):
        source = app_source("nqueens")
        values = {}
        for config in (BASELINE, DBDS, DUPALOT):
            program, _ = compile_and_profile(source, "main", [[5]], config)
            values[config.name] = Interpreter(program).run("main", [7]).value
        assert set(values.values()) == {40}

    def test_backend_agrees(self):
        program = compile_source(app_source("nqueens"))
        machine = Machine(compile_to_machine(program))
        assert machine.run("main", [6]).value == 4


class TestWordFreq:
    def test_deterministic_result(self):
        program = compile_source(app_source("wordfreq"))
        first = Interpreter(program).run("main", [300]).value
        second = Interpreter(program).run("main", [300]).value
        assert first == second

    def test_configs_agree(self):
        source = app_source("wordfreq")
        reference_program = compile_source(source)
        reference = Interpreter(reference_program).run("main", [250]).value
        for config in (DBDS, DUPALOT):
            program, _ = compile_and_profile(source, "main", [[60]], config)
            assert Interpreter(program).run("main", [250]).value == reference

    def test_backend_agrees(self):
        source = app_source("wordfreq")
        program = compile_source(source)
        reference = Interpreter(program).run("main", [150]).value
        machine = Machine(compile_to_machine(compile_source(source)))
        assert machine.run("main", [150]).value == reference

    def test_global_state_builds_chains(self):
        program = compile_source(app_source("wordfreq"))
        interp = Interpreter(program)
        interp.run("main", [500])
        assert interp.state.globals["table"] is not None
        assert interp.state.globals["collisions"] > 0


class TestMatrix:
    def test_power_identities(self):
        program = compile_source(app_source("matrix"))
        interp = Interpreter(program)
        # trace(M^0) == trace(I) == 4
        assert interp.run("main", [0]).value == 4

    def test_deterministic_and_config_invariant(self):
        source = app_source("matrix")
        reference = Interpreter(compile_source(source)).run("main", [11]).value
        for config in (DBDS, DUPALOT):
            program, _ = compile_and_profile(source, "main", [[3]], config)
            assert Interpreter(program).run("main", [11]).value == reference

    def test_backend_agrees(self):
        source = app_source("matrix")
        reference = Interpreter(compile_source(source)).run("main", [8]).value
        machine = Machine(compile_to_machine(compile_source(source)))
        assert machine.run("main", [8]).value == reference
