"""Experiment V1 — Section 8 (future work): validate the performance
estimator.

The paper closes with: "we plan to validate the presented IR performance
estimator ... conduct experiments validating a correlation between our
benefit and cost estimations and the real performance and code size of
an application."  This repository can run that experiment: the static
estimator (frequency-weighted node-cost cycles, Section 5.3) is
correlated against the *measured* dynamic cycles of the interpreter
across the benchmark corpus.

Checks (and the honest outcome of the authors' proposed experiment):
* static cycle estimates correlate strongly with measured dynamic
  cycles across workloads (Pearson r > 0.8 on log values) — the
  estimator is a good magnitude model;
* the estimator's predicted DBDS improvement has non-negative rank
  correlation with the measured speedup — but the correlation is weak:
  per-candidate benefit estimates over-promise where follow-up phases
  would have caught the same optimization anyway (the charhist-style
  outliers), which is exactly the kind of insight the validation was
  proposed to surface.
"""

import math

from _support import record_figure

from repro.bench.harness import measure_workload
from repro.bench.workloads.suites import ALL_SUITES, generate_workload
from repro.costmodel.estimator import estimated_run_time
from repro.frontend.irbuilder import compile_source
from repro.interp.profile import apply_profile, profile_program
from repro.pipeline.compiler import Compiler
from repro.pipeline.config import BASELINE, DBDS

# A spread of workloads across all four suites.
CORPUS = [
    ("java-dacapo", "avrora"), ("java-dacapo", "h2"), ("java-dacapo", "pmd"),
    ("java-dacapo", "sunflow"), ("java-dacapo", "xalan"),
    ("scala-dacapo", "actors"), ("scala-dacapo", "kiama"),
    ("scala-dacapo", "tmt"), ("scala-dacapo", "specs"),
    ("micro", "akkaPP"), ("micro", "charhist"), ("micro", "wordcount"),
    ("micro", "chisquare"),
    ("octane", "deltablue"), ("octane", "richards"), ("octane", "splay"),
    ("octane", "zlib"), ("octane", "raytrace"),
]


def _pearson(xs, ys):
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    vy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)


def _spearman(xs, ys):
    def ranks(vals):
        order = sorted(range(len(vals)), key=vals.__getitem__)
        r = [0.0] * len(vals)
        for rank, idx in enumerate(order):
            r[idx] = float(rank)
        return r

    return _pearson(ranks(xs), ranks(ys))


def _static_estimate(source, entry, profile_args, config):
    """Compile under `config` and statically estimate one entry call."""
    program = compile_source(source)
    collector = profile_program(program, entry, profile_args)
    apply_profile(program, collector)
    Compiler(config).compile_program(program)
    # The entry's estimate subsumes callees via Call node costs only;
    # after inlining the hot helpers live inside the entry graph.
    return estimated_run_time(program.function(entry))


def _gather():
    rows = []
    for suite_name, bench in CORPUS:
        profile = ALL_SUITES[suite_name]
        workload = generate_workload(profile, bench)
        est_base = _static_estimate(
            workload.source, workload.entry, workload.profile_args, BASELINE
        )
        est_dbds = _static_estimate(
            workload.source, workload.entry, workload.profile_args, DBDS
        )
        measured_base = measure_workload(workload, BASELINE)
        measured_dbds = measure_workload(workload, DBDS)
        rows.append(
            (
                f"{suite_name}/{bench}",
                est_base,
                measured_base.cycles,
                est_base / max(est_dbds, 1e-9) - 1.0,
                measured_base.cycles / max(measured_dbds.cycles, 1e-9) - 1.0,
            )
        )
    return rows


def test_estimator_correlates_with_measured_cycles(benchmark):
    rows = benchmark.pedantic(_gather, rounds=1, iterations=1)
    log_est = [math.log(max(r[1], 1e-9)) for r in rows]
    log_measured = [math.log(max(r[2], 1e-9)) for r in rows]
    magnitude_r = _pearson(log_est, log_measured)

    predicted_gain = [r[3] for r in rows]
    measured_gain = [r[4] for r in rows]
    gain_rho = _spearman(predicted_gain, measured_gain)

    lines = [
        "=== Estimator validation (Section 8 future work) ===",
        f"{'workload':<24s}{'est cycles':>12s}{'measured':>12s}"
        f"{'pred gain':>11s}{'real gain':>11s}",
    ]
    for name, est, measured, pred, real in rows:
        lines.append(
            f"{name:<24s}{est:>12.0f}{measured:>12.0f}"
            f"{pred * 100:>+10.1f}%{real * 100:>+10.1f}%"
        )
    lines.append(f"Pearson r (log est vs log measured cycles): {magnitude_r:.3f}")
    lines.append(f"Spearman rho (predicted vs measured DBDS gain): {gain_rho:.3f}")
    record_figure("estimator_validation", "\n".join(lines))

    assert magnitude_r > 0.8, "static estimate must track measured cycles"
    assert gain_rho > 0.0, "predicted gains must not anti-correlate"
