"""Function graphs and whole programs.

A :class:`Graph` is one compilation unit: an entry block, a block list,
parameters, and an interning table for constants.  A :class:`Program`
bundles the class table, global variable declarations and all function
graphs — the unit the interpreter executes and the pipeline compiles.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .block import Block
from .nodes import Constant, Parameter, Value
from .types import BOOL, INT, ClassTable, Type, VOID


class Graph:
    """A single function in SSA form."""

    def __init__(
        self,
        name: str,
        param_specs: Iterable[tuple[str, Type]] = (),
        return_type: Type = VOID,
    ) -> None:
        self.name = name
        self.return_type = return_type
        self._block_ids = 0
        #: lazily computed CFG analyses (dominators/loops/frequency);
        #: cleared by invalidate_analyses at every CFG mutation point
        self._analysis_cache: dict = {}
        self.blocks: list[Block] = []
        self.parameters: list[Parameter] = [
            Parameter(i, pname, ty) for i, (pname, ty) in enumerate(param_specs)
        ]
        self._constants: dict[tuple, Constant] = {}
        self.entry: Block = self.new_block("entry")

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def _next_block_id(self) -> int:
        self._block_ids += 1
        return self._block_ids

    def new_block(self, name: Optional[str] = None) -> Block:
        block = Block(self, name)
        self.blocks.append(block)
        self.invalidate_analyses()
        return block

    def remove_block(self, block: Block) -> None:
        """Delete an unreachable block: drop its edges and all uses held
        by its phis, instructions and terminator."""
        assert block is not self.entry, "cannot remove the entry block"
        block.clear_terminator()
        for ins in list(block.phis) + list(block.instructions):
            # Uses from within the dying block are released by
            # drop_inputs of the sibling instructions; external uses
            # must already be gone (verifier property of unreachable
            # removal: callers remove whole unreachable regions).
            ins.drop_inputs()
            ins.uses.clear()
            ins.block = None
        block.phis.clear()
        block.instructions.clear()
        self.blocks.remove(block)
        self.invalidate_analyses()

    # ------------------------------------------------------------------
    # Cached CFG analyses
    # ------------------------------------------------------------------
    def invalidate_analyses(self) -> None:
        """Drop every cached analysis; called at CFG mutation points
        (edge/block changes, profile application)."""
        cache = self._analysis_cache
        if cache:
            cache.clear()

    def dominator_tree(self):
        """The (cached) dominator tree of the current CFG."""
        tree = self._analysis_cache.get("dominators")
        if tree is None:
            from ..obs.tracer import current_tracer
            from .dominators import DominatorTree

            current_tracer().count("analysis.dominators")
            tree = DominatorTree(self)
            self._analysis_cache["dominators"] = tree
        return tree

    def loop_forest(self):
        """The (cached) natural-loop forest of the current CFG."""
        forest = self._analysis_cache.get("loops")
        if forest is None:
            from ..obs.tracer import current_tracer
            from .loops import LoopForest

            current_tracer().count("analysis.loops")
            forest = LoopForest(self, self.dominator_tree())
            self._analysis_cache["loops"] = forest
        return forest

    def block_frequencies(self):
        """The (cached) profile-driven block frequencies."""
        freqs = self._analysis_cache.get("frequency")
        if freqs is None:
            from ..obs.tracer import current_tracer
            from .frequency import BlockFrequencies

            current_tracer().count("analysis.frequency")
            freqs = BlockFrequencies(self, self.loop_forest())
            self._analysis_cache["frequency"] = freqs
        return freqs

    def __getstate__(self) -> dict:
        # Cached analyses are snapshots full of cross-references; a
        # rehydrated graph recomputes them on demand instead.
        state = self.__dict__.copy()
        state["_analysis_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    def constant(self, value, ty: Optional[Type] = None) -> Constant:
        """Interned constant; type is inferred for ints/bools/None."""
        if ty is None:
            if isinstance(value, bool):
                ty = BOOL
            elif isinstance(value, int):
                ty = INT
            else:
                raise TypeError(f"cannot infer constant type of {value!r}")
        key = (value if value is not None else "<null>", repr(ty))
        existing = self._constants.get(key)
        if existing is not None:
            return existing
        const = Constant(value, ty)
        self._constants[key] = const
        return const

    def const_int(self, value: int) -> Constant:
        return self.constant(value, INT)

    def const_bool(self, value: bool) -> Constant:
        return self.constant(bool(value), BOOL)

    def const_null(self, ty: Type) -> Constant:
        return self.constant(None, ty)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def instruction_count(self) -> int:
        """Number of phis + instructions across all blocks."""
        return sum(len(b.phis) + len(b.instructions) for b in self.blocks)

    def merge_blocks(self) -> list[Block]:
        return [b for b in self.blocks if b.is_merge()]

    def describe(self) -> str:
        from .cfgutils import reverse_post_order

        header = f"fn {self.name}({', '.join(repr(p) for p in self.parameters)}) -> {self.return_type!r}"
        body = "\n".join(b.describe() for b in reverse_post_order(self))
        return f"{header}\n{body}"

    def __repr__(self) -> str:
        return f"<Graph {self.name}: {len(self.blocks)} blocks>"


class Program:
    """A whole MiniLang program: classes, globals and functions."""

    def __init__(self) -> None:
        self.class_table = ClassTable()
        self.globals: dict[str, Type] = {}
        self.functions: dict[str, Graph] = {}

    def declare_global(self, name: str, ty: Type) -> None:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        self.globals[name] = ty

    def add_function(self, graph: Graph) -> Graph:
        if graph.name in self.functions:
            raise ValueError(f"duplicate function {graph.name!r}")
        self.functions[graph.name] = graph
        return graph

    def function(self, name: str) -> Graph:
        return self.functions[name]

    def describe(self) -> str:
        return "\n\n".join(g.describe() for g in self.functions.values())


def uses_of(value: Value):
    """All (user, count) pairs of a value — convenience for analyses."""
    return list(value.uses.items())
