"""Tests for the inliner."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import Call, verify_graph
from repro.opts.inline import InliningPhase


def count_calls(graph):
    return sum(
        1 for b in graph.blocks for i in b.instructions if isinstance(i, Call)
    )


def inline_into(source: str, name: str):
    program = compile_source(source)
    graph = program.function(name)
    inlined = InliningPhase(program).run(graph)
    verify_graph(graph)
    return program, graph, inlined


class TestBasicInlining:
    def test_single_return_callee(self):
        program, graph, inlined = inline_into(
            """
fn add(a: int, b: int) -> int { return a + b; }
fn f(x: int) -> int { return add(x, 1) * 2; }
""",
            "f",
        )
        assert inlined == 1
        assert count_calls(graph) == 0
        assert Interpreter(program).run("f", [20]).value == 42

    def test_multi_return_callee_gets_phi(self):
        program, graph, inlined = inline_into(
            """
fn pick(a: int) -> int { if (a > 0) { return a; } return 0 - a; }
fn f(x: int) -> int { return pick(x) + 1; }
""",
            "f",
        )
        assert inlined == 1
        assert count_calls(graph) == 0
        assert Interpreter(program).run("f", [-4]).value == 5
        assert Interpreter(program).run("f", [4]).value == 5

    def test_void_callee(self):
        program, graph, inlined = inline_into(
            """
global g: int;
fn bump(v: int) { g = g + v; }
fn f(x: int) -> int { bump(x); bump(x); return 0; }
""",
            "f",
        )
        assert inlined == 2
        interp = Interpreter(program)
        interp.run("f", [5])
        assert interp.state.globals["g"] == 10

    def test_callee_with_control_flow_and_loop(self):
        program, graph, inlined = inline_into(
            """
fn tri(n: int) -> int {
  var s: int = 0; var i: int = 0;
  while (i < n) { s = s + i; i = i + 1; }
  return s;
}
fn f(x: int) -> int { return tri(x) + tri(x + 1); }
""",
            "f",
        )
        assert inlined == 2
        assert Interpreter(program).run("f", [5]).value == 10 + 15

    def test_nested_inlining_across_rounds(self):
        program, graph, inlined = inline_into(
            """
fn inner(a: int) -> int { return a + 1; }
fn middle(a: int) -> int { return inner(a) * 2; }
fn f(x: int) -> int { return middle(x); }
""",
            "f",
        )
        assert count_calls(graph) == 0
        assert Interpreter(program).run("f", [3]).value == 8

    def test_callee_graph_untouched(self):
        program, graph, inlined = inline_into(
            """
fn add(a: int, b: int) -> int { return a + b; }
fn f(x: int) -> int { return add(x, 1); }
""",
            "f",
        )
        callee = program.function("add")
        verify_graph(callee)
        assert Interpreter(program).run("add", [1, 2]).value == 3


class TestLimits:
    def test_direct_recursion_not_inlined(self):
        program, graph, inlined = inline_into(
            """
fn f(n: int) -> int {
  if (n <= 0) { return 0; }
  return n + f(n - 1);
}
""",
            "f",
        )
        assert inlined == 0
        assert count_calls(graph) == 1

    def test_mutual_recursion_bounded(self):
        program, graph, inlined = inline_into(
            """
fn even(n: int) -> bool { if (n == 0) { return true; } return odd(n - 1); }
fn odd(n: int) -> bool { if (n == 0) { return false; } return even(n - 1); }
fn f(n: int) -> bool { return even(n); }
""",
            "f",
        )
        verify_graph(graph)
        # Bounded by rounds; semantics must hold regardless.
        assert Interpreter(program).run("f", [6]).value is True
        assert Interpreter(program).run("f", [7]).value is False

    def test_large_callee_rejected(self):
        lines = "\n".join(f"  s = s + {i};" for i in range(120))
        program, graph, inlined = inline_into(
            f"""
fn big(x: int) -> int {{
  var s: int = x;
{lines}
  return s;
}}
fn f(x: int) -> int {{ return big(x); }}
""",
            "f",
        )
        assert inlined == 0
        assert count_calls(graph) == 1

    def test_callee_without_return_kept(self):
        # A callee with no structural Return (infinite loop) would leave
        # the continuation unreachable; the inliner must skip it.  The
        # frontend cannot produce such a function, so build it by hand.
        from repro.ir import Goto, Graph, INT

        program = compile_source("fn spin(x: int) -> int { return x; }\nfn f(x: int) -> int { return spin(x); }")
        looping = Graph("spin2", [("x", INT)], INT)
        body = looping.new_block()
        looping.entry.set_terminator(Goto(body))
        body.set_terminator(Goto(body))
        program.functions["spin"] = looping  # swap in the infinite loop
        graph = program.function("f")
        inlined = InliningPhase(program).run(graph)
        assert inlined == 0
        assert count_calls(graph) == 1


class TestProbabilityPreservation:
    def test_profiles_survive_inlining(self):
        from repro.interp.profile import apply_profile, profile_program
        from repro.ir.nodes import If

        source = """
fn branchy(x: int) -> int { if (x > 10) { return 1; } return 0; }
fn f(k: int) -> int {
  var t: int = 0; var i: int = 0;
  while (i < k) { t = t + branchy(i); i = i + 1; }
  return t;
}
"""
        program = compile_source(source)
        collector = profile_program(program, "f", [[20]])
        apply_profile(program, collector)
        graph = program.function("f")
        InliningPhase(program).run(graph)
        probs = {
            round(b.terminator.true_probability, 2)
            for b in graph.blocks
            if isinstance(b.terminator, If)
        }
        assert 0.45 in probs  # branchy's 9/20 profile came along
