"""Persistent cache for exec-generated engine source.

The closure and megaunit engines *generate Python source* from
bytecode streams and ``exec`` it.  Codegen is pure — a deterministic
function of the instruction stream, the metering mode and the baked-in
limits — so the generated text can be persisted in the artifact
cache's aux store (:meth:`~repro.pipeline.cache.ArtifactCache.put_aux`)
and reused by warm runs, skipping source generation and the per-line
f-string work entirely.

Keys are content digests over schema + engine + per-function stream
digests + every baked knob (``metered``, ``max_steps``,
``max_call_depth``), so a stale artifact can never be executed against
a stream it was not generated from.  Payloads carry the source plus
the callee-name order needed to rebuild the exec namespace without
regenerating.  Hits and misses are counted by the
``repro_codegen_cache_total`` metric, labelled by engine.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any, Optional, Sequence

from ..obs.metrics import current_registry
from .bytecode import BytecodeFunction, disassemble

#: codegen-cache payload layout version (part of every aux key)
CODEGEN_SCHEMA = 1

#: default reprs embed ``id()`` addresses; scrub them so digests are
#: pure functions of structure and compare equal across processes
_ADDR = re.compile(r" object at 0x[0-9a-f]+")


def stream_digest(fn: BytecodeFunction, stream: str = "code") -> str:
    """Scrubbed digest of one function's instruction stream."""
    text = _ADDR.sub("", disassemble(fn, stream=stream))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def function_digest(fn: BytecodeFunction) -> str:
    """Digest of everything codegen reads from one function: the frame
    shape, the constant template, the block spans and the base stream."""
    payload = json.dumps(
        {
            "name": fn.name,
            "nparams": fn.nparams,
            "nregs": fn.nregs,
            "const_base": fn.const_base,
            "const_count": fn.const_count,
            "template": _ADDR.sub("", repr(fn.template)),
            "blocks": [
                [start, count, _ADDR.sub("", str(name))]
                for start, count, name in fn.blocks
            ],
            "stream": stream_digest(fn),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def codegen_key(
    engine: str,
    fns: Sequence[BytecodeFunction],
    metered: bool,
    max_steps: int,
    max_call_depth: int,
) -> str:
    """The aux-store key for one generated source unit."""
    payload = json.dumps(
        {
            "schema": CODEGEN_SCHEMA,
            "engine": engine,
            "functions": [function_digest(fn) for fn in fns],
            "metered": bool(metered),
            "max_steps": max_steps,
            "max_call_depth": max_call_depth,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_source(
    cache: Optional[Any], key: str, engine: str
) -> Optional[dict]:
    """Aux-store lookup; counts ``repro_codegen_cache_total``.

    Returns the payload dict on a schema- and engine-matching hit,
    ``None`` otherwise (including when ``cache`` is ``None``)."""
    if cache is None:
        return None
    payload = cache.get_aux(key)
    hit = (
        isinstance(payload, dict)
        and payload.get("schema") == CODEGEN_SCHEMA
        and payload.get("engine") == engine
        and isinstance(payload.get("source"), str)
    )
    registry = current_registry()
    if registry.enabled:
        registry.inc(
            "repro_codegen_cache_total",
            result="hit" if hit else "miss",
            engine=engine,
        )
    return payload if hit else None


def store_source(cache: Optional[Any], key: str, payload: dict) -> None:
    """Persist one generated source unit (no-op without a cache)."""
    if cache is None:
        return
    cache.put_aux(key, dict(payload, schema=CODEGEN_SCHEMA))


__all__ = [
    "CODEGEN_SCHEMA",
    "codegen_key",
    "function_digest",
    "load_source",
    "store_source",
    "stream_digest",
]
