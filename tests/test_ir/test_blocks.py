"""Tests for basic-block structure and edge maintenance."""

import pytest

from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
)


@pytest.fixture
def graph():
    return Graph("f", [("x", INT)], INT)


class TestTerminatorInstallation:
    def test_set_terminator_registers_predecessors(self, graph):
        b = graph.new_block()
        graph.entry.set_terminator(Goto(b))
        assert b.predecessors == [graph.entry]
        assert graph.entry.successors == (b,)

    def test_replacing_terminator_unregisters(self, graph):
        b, c = graph.new_block(), graph.new_block()
        graph.entry.set_terminator(Goto(b))
        graph.entry.set_terminator(Goto(c))
        assert b.predecessors == []
        assert c.predecessors == [graph.entry]

    def test_if_registers_both_targets(self, graph):
        x = graph.parameters[0]
        t, f = graph.new_block(), graph.new_block()
        cond = graph.entry.append(Compare(CmpOp.GT, x, graph.const_int(0)))
        graph.entry.set_terminator(If(cond, t, f))
        assert t.predecessors == [graph.entry]
        assert f.predecessors == [graph.entry]
        assert graph.entry.successors == (t, f)

    def test_clear_terminator(self, graph):
        b = graph.new_block()
        graph.entry.set_terminator(Goto(b))
        graph.entry.clear_terminator()
        assert graph.entry.terminator is None
        assert b.predecessors == []


class TestPredecessorRemoval:
    def test_remove_predecessor_drops_phi_input(self, graph):
        x = graph.parameters[0]
        p1, p2, m = graph.new_block(), graph.new_block(), graph.new_block()
        p1.set_terminator(Goto(m))
        p2.set_terminator(Goto(m))
        phi = Phi(m, INT, [x, graph.const_int(0)])
        m.add_phi(phi)
        index = m.remove_predecessor(p1)
        assert index == 0
        assert m.predecessors == [p2]
        assert phi.inputs == (graph.const_int(0),)

    def test_remove_unknown_predecessor_raises(self, graph):
        m = graph.new_block()
        with pytest.raises(ValueError):
            m.remove_predecessor(graph.entry)

    def test_predecessor_index(self, graph):
        p1, p2, m = graph.new_block(), graph.new_block(), graph.new_block()
        p1.set_terminator(Goto(m))
        p2.set_terminator(Goto(m))
        assert m.predecessor_index(p1) == 0
        assert m.predecessor_index(p2) == 1


class TestInstructionManagement:
    def test_append_sets_block(self, graph):
        x = graph.parameters[0]
        add = graph.entry.append(ArithOp(BinOp.ADD, x, x))
        assert add.block is graph.entry
        assert graph.entry.instructions == [add]

    def test_insert_at_position(self, graph):
        x = graph.parameters[0]
        a = graph.entry.append(ArithOp(BinOp.ADD, x, x))
        b = graph.entry.insert(0, ArithOp(BinOp.MUL, x, x))
        assert graph.entry.instructions == [b, a]

    def test_remove_instruction_releases_uses(self, graph):
        x = graph.parameters[0]
        add = graph.entry.append(ArithOp(BinOp.ADD, x, x))
        graph.entry.remove_instruction(add)
        assert not x.uses
        assert add.block is None
        assert graph.entry.instructions == []

    def test_remove_used_instruction_asserts(self, graph):
        x = graph.parameters[0]
        a = graph.entry.append(ArithOp(BinOp.ADD, x, x))
        graph.entry.append(ArithOp(BinOp.MUL, a, a))
        with pytest.raises(AssertionError):
            graph.entry.remove_instruction(a)

    def test_all_instructions_phis_first(self, graph):
        x = graph.parameters[0]
        p1, p2, m = graph.new_block(), graph.new_block(), graph.new_block()
        p1.set_terminator(Goto(m))
        p2.set_terminator(Goto(m))
        phi = Phi(m, INT, [x, x])
        m.add_phi(phi)
        add = m.append(ArithOp(BinOp.ADD, phi, phi))
        assert list(m.all_instructions()) == [phi, add]


class TestQueries:
    def test_is_merge(self, graph):
        p1, p2, m = graph.new_block(), graph.new_block(), graph.new_block()
        assert not m.is_merge()
        p1.set_terminator(Goto(m))
        assert not m.is_merge()
        p2.set_terminator(Goto(m))
        assert m.is_merge()

    def test_ends_with_goto(self, graph):
        b = graph.new_block()
        graph.entry.set_terminator(Goto(b))
        b.set_terminator(Return(None))
        assert graph.entry.ends_with_goto()
        assert not b.ends_with_goto()

    def test_describe_contains_structure(self, graph):
        b = graph.new_block("body")
        graph.entry.set_terminator(Goto(b))
        b.set_terminator(Return(None))
        text = b.describe()
        assert "body" in text and "Return" in text and "entry" in text
