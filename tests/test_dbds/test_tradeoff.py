"""Tests for the Section 5.4 trade-off heuristic."""

import pytest

from repro.dbds.simulation import SimulationResult
from repro.dbds.tradeoff import (
    BENEFIT_SCALE,
    INCREASE_BUDGET,
    TradeOffConfig,
    should_duplicate,
    sort_candidates,
)


def candidate(benefit=10.0, cost=5.0, probability=1.0):
    return SimulationResult(
        pred=None, merge=None, benefit=benefit, cost=cost, probability=probability
    )


class TestPaperConstants:
    def test_published_values(self):
        assert BENEFIT_SCALE == 256.0
        assert INCREASE_BUDGET == 1.5
        config = TradeOffConfig()
        assert config.benefit_scale == 256.0
        assert config.increase_budget == 1.5


class TestShouldDuplicate:
    def test_beneficial_candidate_accepted(self):
        assert should_duplicate(candidate(), current_size=100, initial_size=100)

    def test_zero_benefit_rejected(self):
        assert not should_duplicate(
            candidate(benefit=0.0), current_size=100, initial_size=100
        )

    def test_benefit_scale_term(self):
        # b*p*BS > c: with b=1, p=1: cost 255 passes, 257 fails.
        # (initial_size is large so the growth budget is not the limit.)
        assert should_duplicate(
            candidate(benefit=1.0, cost=255.0), current_size=100, initial_size=1000
        )
        assert not should_duplicate(
            candidate(benefit=1.0, cost=257.0), current_size=100, initial_size=1000
        )

    def test_probability_scales_benefit(self):
        cold = candidate(benefit=1.0, cost=100.0, probability=0.01)
        hot = candidate(benefit=1.0, cost=100.0, probability=1.0)
        assert not should_duplicate(cold, current_size=100, initial_size=1000)
        assert should_duplicate(hot, current_size=100, initial_size=1000)

    def test_probability_ignored_when_disabled(self):
        config = TradeOffConfig(use_probability=False)
        cold = candidate(benefit=1.0, cost=100.0, probability=0.01)
        assert should_duplicate(cold, current_size=100, initial_size=1000, config=config)

    def test_max_unit_size_cap(self):
        config = TradeOffConfig(max_unit_size=500.0)
        assert not should_duplicate(
            candidate(), current_size=500.0, initial_size=100, config=config
        )
        assert should_duplicate(
            candidate(), current_size=499.0, initial_size=400, config=config
        )

    def test_increase_budget(self):
        # cs + c < is * 1.5
        assert should_duplicate(
            candidate(cost=49.0), current_size=100.0, initial_size=100.0
        )
        assert not should_duplicate(
            candidate(cost=51.0), current_size=100.0, initial_size=100.0
        )

    def test_budget_consumed_by_growth(self):
        # After growing to 149, even a cost-2 candidate busts 150.
        assert not should_duplicate(
            candidate(cost=2.0), current_size=149.0, initial_size=100.0
        )


class TestSorting:
    def test_by_weighted_benefit_descending(self):
        a = candidate(benefit=10.0, probability=0.1)  # weighted 1.0
        b = candidate(benefit=2.0, probability=1.0)  # weighted 2.0
        c = candidate(benefit=100.0, probability=0.5)  # weighted 50.0
        assert sort_candidates([a, b, c]) == [c, b, a]

    def test_cost_breaks_ties(self):
        cheap = candidate(benefit=5.0, cost=1.0)
        pricey = candidate(benefit=5.0, cost=9.0)
        assert sort_candidates([pricey, cheap]) == [cheap, pricey]

    def test_probability_disabled_changes_order(self):
        hot_small = candidate(benefit=2.0, probability=1.0)
        cold_big = candidate(benefit=10.0, probability=0.1)
        default = sort_candidates([hot_small, cold_big])
        assert default[0] is hot_small
        raw = sort_candidates(
            [hot_small, cold_big], TradeOffConfig(use_probability=False)
        )
        assert raw[0] is cold_big

    def test_empty(self):
        assert sort_candidates([]) == []
