"""Tests for the tail-duplication transformation."""

import pytest

from repro.dbds.duplicate import DuplicationError, can_duplicate, duplicate_into
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
    verify_graph,
)
from repro.ir.loops import LoopForest
from tests.helpers import build_diamond


class TestCanDuplicate:
    def test_diamond_pairs_allowed(self, diamond):
        g = diamond["graph"]
        assert can_duplicate(g, diamond["true_block"], diamond["merge"])
        assert can_duplicate(g, diamond["false_block"], diamond["merge"])

    def test_non_merge_rejected(self, diamond):
        g = diamond["graph"]
        assert not can_duplicate(g, g.entry, diamond["true_block"])

    def test_non_predecessor_rejected(self, diamond):
        g = diamond["graph"]
        assert not can_duplicate(g, g.entry, diamond["merge"])

    def test_loop_header_rejected(self):
        program = compile_source(
            "fn f(n: int) -> int { var i: int = 0; while (i < n) { i = i + 1; } return i; }"
        )
        graph = program.function("f")
        forest = LoopForest(graph)
        header = forest.loops[0].header
        for pred in header.predecessors:
            assert not can_duplicate(graph, pred, header)

    def test_duplicate_into_invalid_raises(self, diamond):
        g = diamond["graph"]
        with pytest.raises(DuplicationError):
            duplicate_into(g, g.entry, diamond["merge"])


class TestReturnTerminatedMerge:
    def test_structure_after_duplication(self, diamond):
        g = diamond["graph"]
        mapping = duplicate_into(g, diamond["true_block"], diamond["merge"])
        verify_graph(g)
        # The true branch now ends in its own Return.
        assert isinstance(diamond["true_block"].terminator, Return)
        # The phi was specialized to x on this edge.
        assert mapping[diamond["phi"]] is diamond["x"]
        # The copied Add uses x directly.
        copied_add = mapping[diamond["add"]]
        assert copied_add.block is diamond["true_block"]
        assert diamond["x"] in copied_add.inputs

    def test_merge_degenerates_for_other_pred(self, diamond):
        g = diamond["graph"]
        duplicate_into(g, diamond["true_block"], diamond["merge"])
        # The merge lost one predecessor; its phi collapsed.
        assert diamond["phi"].block is None

    def test_semantics_preserved(self):
        source_parts = build_diamond()
        g = source_parts["graph"]
        from repro.ir.graph import Program

        program = Program()
        program.add_function(g)
        before = [Interpreter(program).run("foo", [k]).value for k in range(-3, 4)]
        duplicate_into(g, source_parts["true_block"], source_parts["merge"])
        verify_graph(g)
        after = [Interpreter(program).run("foo", [k]).value for k in range(-3, 4)]
        assert after == before

    def test_both_preds_sequentially(self, diamond):
        g = diamond["graph"]
        duplicate_into(g, diamond["true_block"], diamond["merge"])
        verify_graph(g)
        # After the first duplication the merge degenerated and was
        # left with a single predecessor: no longer duplicable.
        assert not diamond["merge"].is_merge()


def build_merge_with_successor():
    """A merge whose value is used in a *dominated* block, forcing SSA
    repair: the scenario of Section 3.1's 'complex analysis'."""
    g = Graph("g", [("x", INT)], INT)
    x = g.parameters[0]
    bt, bf = g.new_block("t"), g.new_block("f")
    merge, tail = g.new_block("m"), g.new_block("tail")
    cond = g.entry.append(Compare(CmpOp.GT, x, g.const_int(0)))
    g.entry.set_terminator(If(cond, bt, bf))
    bt.set_terminator(Goto(merge))
    bf.set_terminator(Goto(merge))
    phi = Phi(merge, INT, [x, g.const_int(7)])
    merge.add_phi(phi)
    val = merge.append(ArithOp(BinOp.ADD, phi, g.const_int(1)))
    merge.set_terminator(Goto(tail))
    user = tail.append(ArithOp(BinOp.MUL, val, val))
    tail.set_terminator(Return(user))
    return g, bt, bf, merge, tail, val, user


class TestGotoTerminatedMerge:
    def test_ssa_repair_inserts_phi(self):
        g, bt, bf, merge, tail, val, user = build_merge_with_successor()
        verify_graph(g)
        duplicate_into(g, bt, merge)
        verify_graph(g)
        # tail now merges the original and the copy: it needs a phi.
        assert tail.is_merge()
        assert len(tail.phis) == 1
        assert user.inputs[0] is tail.phis[0]

    def test_semantics_with_dominated_use(self):
        g, bt, bf, merge, tail, val, user = build_merge_with_successor()
        from repro.ir.graph import Program

        program = Program()
        program.add_function(g)
        expected = [Interpreter(program).run("g", [k]).value for k in range(-3, 4)]
        duplicate_into(g, bt, merge)
        actual = [Interpreter(program).run("g", [k]).value for k in range(-3, 4)]
        assert actual == expected

    def test_successor_phi_extended(self):
        # The merge's successor already has a phi over another value.
        g = Graph("g", [("x", INT)], INT)
        x = g.parameters[0]
        bt, bf = g.new_block("t"), g.new_block("f")
        merge, other, join = g.new_block("m"), g.new_block("o"), g.new_block("j")
        cond = g.entry.append(Compare(CmpOp.GT, x, g.const_int(0)))
        g.entry.set_terminator(If(cond, bt, bf))
        bt.set_terminator(Goto(merge))
        bf.set_terminator(Goto(other))
        phi_m = Phi(merge, INT, [x])
        # make merge a real merge: add an extra edge from a new block
        extra = g.new_block("extra")
        # route: entry->bt->merge, entry->bf->other->join; extra unreachable
        # Instead: make bf go to merge too and other unused.
        bf.set_terminator(Goto(merge))
        phi_m._append_input(g.const_int(5))
        merge.add_phi(phi_m)
        merge.set_terminator(Goto(join))
        other.set_terminator(Goto(join))
        phi_j = Phi(join, INT, [phi_m, g.const_int(9)])
        join.add_phi(phi_j)
        join.set_terminator(Return(phi_j))
        from repro.ir.cfgutils import remove_unreachable_blocks

        remove_unreachable_blocks(g)
        verify_graph(g)
        duplicate_into(g, bt, merge)
        verify_graph(g)
        # join gained an edge from bt with the specialized value x.
        index = join.predecessor_index(bt)
        assert phi_j.inputs[index] is x


class TestIfTerminatedMerge:
    def build(self):
        """Listing 1's shape: merge ends in a branch on the phi."""
        program = compile_source(
            """
fn f(i: int) -> int {
  var p: int;
  if (i > 0) { p = i; } else { p = 13; }
  if (p > 12) { return 12; }
  return i;
}
"""
        )
        return program, program.function("f")

    def test_duplication_splits_branch(self):
        program, graph = self.build()
        merge = next(b for b in graph.blocks if b.is_merge())
        pred = merge.predecessors[0]
        duplicate_into(graph, pred, merge)
        verify_graph(graph)

    def test_semantics(self):
        program, graph = self.build()
        expected = [Interpreter(program).run("f", [k]).value for k in range(-3, 20)]
        merge = next(b for b in graph.blocks if b.is_merge())
        for pred in list(merge.predecessors):
            if can_duplicate(graph, pred, merge):
                duplicate_into(graph, pred, merge)
                break
        verify_graph(graph)
        actual = [Interpreter(program).run("f", [k]).value for k in range(-3, 20)]
        assert actual == expected


class TestManyPredecessors:
    def test_three_way_merge_partial_duplication(self):
        program = compile_source(
            """
fn f(x: int) -> int {
  var p: int;
  if (x > 10) { p = 1; }
  else {
    if (x > 5) { p = 2; } else { p = 3; }
  }
  return p * 100 + x;
}
"""
        )
        graph = program.function("f")
        expected = [Interpreter(program).run("f", [k]).value for k in range(0, 15)]
        # Duplicate into each available predecessor, one at a time.
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for merge in list(graph.merge_blocks()):
                for pred in list(merge.predecessors):
                    if can_duplicate(graph, pred, merge):
                        duplicate_into(graph, pred, merge)
                        verify_graph(graph)
                        changed = True
                        break
                if changed:
                    break
        actual = [Interpreter(program).run("f", [k]).value for k in range(0, 15)]
        assert actual == expected


class TestMergeWithSideEffects:
    def test_stores_and_calls_duplicated(self):
        program = compile_source(
            """
global log: int;
fn note(v: int) -> int { log = log + v; return v; }
fn f(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 1; }
  log = log + p;
  return note(p) + log;
}
"""
        )
        graph = program.function("f")

        def observe():
            outs = []
            for k in range(-3, 4):
                interp = Interpreter(program)
                r = interp.run("f", [k])
                outs.append((r.value, interp.state.globals["log"]))
            return outs

        expected = observe()
        merge = next(b for b in graph.blocks if b.is_merge())
        duplicate_into(graph, merge.predecessors[0], merge)
        verify_graph(graph)
        assert observe() == expected
