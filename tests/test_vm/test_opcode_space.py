"""Opcode-space exhaustiveness: specs, handlers and engines agree.

The extended opcode space grows by appending — fusion and quickening
register handlers into ``machine.XHANDLERS`` and shapes into
``opspec.OPCODE_SPECS`` side by side.  These tests pin the invariants
the verifier (and the pickled cache format) depend on: the two tables
cover exactly the same opcodes, numbering is collision-free, every
fused/quickened form decomposes into base opcodes every engine can run,
and the fast loops' inline-dispatch bindings stay sound.
"""

from __future__ import annotations

import repro.vm  # noqa: F401  (pins the handler/spec import order)
from repro.pipeline.compiler import ALL_ENGINES, ENGINES
from repro.vm.bytecode import OPCODE_NAMES
from repro.vm.closure import CLOSURE_COVERED
from repro.vm.machine import XHANDLERS, fast_op_bindings
from repro.vm.opspec import (
    BASE_FAMILIES,
    OPCODE_SPECS,
    TERMINATOR_FAMILIES,
)

#: families whose handlers may return a negative pc (returns) or embed
#: an arbitrary second half — they must sit *below* the fast loops'
#: range-dispatch base so the return-pc check still runs for them
_RANGE_UNSAFE = BASE_FAMILIES | {"fused-if", "fused2", "fused2-goto"}


def test_specs_cover_exactly_the_handler_table():
    assert set(OPCODE_SPECS) == set(range(len(XHANDLERS)))
    assert all(callable(h) for h in XHANDLERS)


def test_numbering_is_collision_free():
    # dict keys can't collide, so drift shows up as *names* colliding
    names = [spec.name for spec in OPCODE_SPECS.values()]
    assert len(names) == len(set(names))


def test_base_opcodes_are_the_first_32():
    for op in range(len(OPCODE_NAMES)):
        assert OPCODE_SPECS[op].family in BASE_FAMILIES
        assert OPCODE_SPECS[op].name == OPCODE_NAMES[op]
    for op in range(len(OPCODE_NAMES), len(XHANDLERS)):
        assert OPCODE_SPECS[op].family not in BASE_FAMILIES


def test_every_extended_opcode_decomposes_to_base_opcodes():
    """Each fused/quickened form names base-opcode origins, so the
    nofuse engine (plain ``fn.code``) always has a generic fallback and
    the accounting checker can price the constituents."""
    for op in range(len(OPCODE_NAMES), len(XHANDLERS)):
        spec = OPCODE_SPECS[op]
        if spec.family in ("fused2", "fused2-goto"):
            # dynamic pair fusion: constituents live in the tuple itself
            assert spec.origin == ()
            continue
        assert spec.origin, spec.name
        assert all(0 <= o < len(OPCODE_NAMES) for o in spec.origin), spec.name


def test_weights_match_family():
    expected = {
        "fused-if": 2, "fused-pair": 2, "fused-goto": 2,
        "fused-triple": 3, "fused2": 2, "fused2-goto": 2,
        "quick-const": 1, "quick-guard": 1,
    }
    for spec in OPCODE_SPECS.values():
        if spec.family in BASE_FAMILIES:
            assert spec.weight == 1
        else:
            assert spec.weight == expected[spec.family], spec.name


def test_closure_engine_covers_the_full_base_space():
    assert CLOSURE_COVERED == frozenset(range(len(OPCODE_NAMES)))


def test_fast_dispatch_bindings_are_sound():
    spec_base, if_lt, if_gt, if_ge = fast_op_bindings()
    assert spec_base <= len(XHANDLERS)
    # the dedicated inline arms point at the fused compare+branch forms
    for op, name in ((if_lt, "if_lt"), (if_gt, "if_gt"), (if_ge, "if_ge")):
        assert OPCODE_SPECS[op].name == name
        assert OPCODE_SPECS[op].family == "fused-if"
        assert op < spec_base
    # everything dispatched by range must hand back a non-negative pc:
    # no returns, no calls, no embedded arbitrary second halves
    for op in range(spec_base, len(XHANDLERS)):
        assert OPCODE_SPECS[op].family not in _RANGE_UNSAFE, (
            op, OPCODE_SPECS[op].name
        )


def test_terminator_flag_matches_family():
    for spec in OPCODE_SPECS.values():
        assert spec.terminator == (spec.family in TERMINATOR_FAMILIES)


def test_engine_registry_names():
    assert set(ENGINES) <= set(ALL_ENGINES)
    assert "vm-nofuse" in ALL_ENGINES
