"""Shared helpers for the benchmark suite.

Every benchmark regenerates one evaluation artifact of the paper
(Figures 5–8 + the headline numbers + the Section 3.1 backtracking
comparison + trade-off ablations).  Results are printed and also written
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference a
stable location.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: artifact cache shared by benchmark reruns (opt-in via env var)
CACHE_DIR = RESULTS_DIR / ".cache"


def record_figure(name: str, text: str) -> None:
    """Print a regenerated figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def bench_cache():
    """The benchmarks' shared :class:`~repro.pipeline.cache.ArtifactCache`.

    Opt-in: set ``REPRO_BENCH_CACHE=1`` to reuse compilation artifacts
    across benchmark reruns (pass the result as ``run_suite(...,
    cache=bench_cache())``).  Off by default so published compile-time
    figures always reflect cold compiles.
    """
    if os.environ.get("REPRO_BENCH_CACHE", "") not in ("1", "true", "yes"):
        return None
    from repro.pipeline.cache import ArtifactCache

    RESULTS_DIR.mkdir(exist_ok=True)
    return ArtifactCache(CACHE_DIR)
