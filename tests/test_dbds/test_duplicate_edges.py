"""Edge cases of the duplication transformation not covered elsewhere:
void merges, call-bearing merges, deep merge chains, and interaction
with profile probabilities."""

import pytest

from repro.dbds.duplicate import can_duplicate, duplicate_into
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter, observable_outcome
from repro.ir import Call, Goto, If, Return, verify_graph


def first_duplicable(graph):
    from repro.ir.loops import LoopForest

    forest = LoopForest(graph)
    for merge in graph.merge_blocks():
        for pred in merge.predecessors:
            if can_duplicate(graph, pred, merge, forest):
                return pred, merge
    return None, None


def observe(program, entry, arg_sets):
    outs = []
    for args in arg_sets:
        interp = Interpreter(program)
        outs.append(observable_outcome(interp.run(entry, args), interp.state))
    return outs


class TestVoidMerges:
    SRC = """
global log: int;
fn f(x: int) {
  if (x > 0) { log = log + 1; } else { log = log + 100; }
  log = log * 2;
}
"""

    def test_void_function_merge_duplicates(self):
        program = compile_source(self.SRC)
        graph = program.function("f")
        expected = observe(program, "f", [[1], [-1], [0]])
        pred, merge = first_duplicable(graph)
        assert merge is not None
        duplicate_into(graph, pred, merge)
        verify_graph(graph)
        assert observe(program, "f", [[1], [-1], [0]]) == expected


class TestCallBearingMerges:
    SRC = """
global calls: int;
fn side(v: int) -> int { calls = calls + 1; return v * 2; }
fn f(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 7; }
  return side(p) + side(x);
}
"""

    def test_calls_copied_exactly_once_per_path(self):
        program = compile_source(self.SRC)
        graph = program.function("f")
        expected = observe(program, "f", [[3], [-3]])
        pred, merge = first_duplicable(graph)
        duplicate_into(graph, pred, merge)
        verify_graph(graph)
        # Side-effect counts must be identical: each path still performs
        # exactly two calls.
        assert observe(program, "f", [[3], [-3]]) == expected

    def test_call_instruction_duplicated_structurally(self):
        program = compile_source(self.SRC)
        graph = program.function("f")
        before = sum(
            1 for b in graph.blocks for i in b.instructions if isinstance(i, Call)
        )
        pred, merge = first_duplicable(graph)
        duplicate_into(graph, pred, merge)
        after = sum(
            1 for b in graph.blocks for i in b.instructions if isinstance(i, Call)
        )
        assert after == before + 2  # both calls copied into the pred


class TestProbabilityBookkeeping:
    def test_duplicated_if_keeps_probability(self):
        program = compile_source(
            """
fn f(x: int, y: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 1; }
  if (y > 10) { return p; }
  return p + y;
}
"""
        )
        graph = program.function("f")
        # Stamp a recognizable probability on the second branch.
        merge = next(b for b in graph.blocks if b.is_merge())
        assert isinstance(merge.terminator, If)
        merge.terminator.true_probability = 0.875
        pred, m = first_duplicable(graph)
        duplicate_into(graph, pred, m)
        verify_graph(graph)
        copied = [
            b.terminator
            for b in graph.blocks
            if isinstance(b.terminator, If)
            and abs(b.terminator.true_probability - 0.875) < 1e-9
        ]
        assert len(copied) == 2  # original + the duplicated copy


class TestChainedDuplications:
    def test_exhaustive_duplication_terminates(self):
        """Repeatedly duplicating every available pair must reach a
        fixpoint (non-merge CFG) on an acyclic function."""
        program = compile_source(
            """
fn f(a: int, b: int) -> int {
  var p: int;
  if (a > 0) { p = a; } else { p = 1; }
  var q: int;
  if (b > 0) { q = b; } else { q = p; }
  var r: int;
  if (a > b) { r = p + q; } else { r = p - q; }
  return r * 2;
}
"""
        )
        graph = program.function("f")
        expected = observe(program, "f", [[1, 2], [-1, 5], [3, -4], [0, 0]])
        for _ in range(100):
            pred, merge = first_duplicable(graph)
            if merge is None:
                break
            duplicate_into(graph, pred, merge)
            verify_graph(graph)
        else:
            pytest.fail("duplication did not reach a fixpoint")
        assert not any(
            can_duplicate(graph, p, m)
            for m in graph.merge_blocks()
            for p in m.predecessors
        )
        assert observe(program, "f", [[1, 2], [-1, 5], [3, -4], [0, 0]]) == expected


class TestReturnNoneMerges:
    def test_merge_ending_in_bare_return(self):
        program = compile_source(
            """
global g: int;
fn f(x: int) {
  if (x > 0) { g = x; } else { g = 0 - x; }
  g = g + 1;
  return;
}
"""
        )
        graph = program.function("f")
        expected = observe(program, "f", [[5], [-5]])
        pred, merge = first_duplicable(graph)
        assert isinstance(merge.terminator, Return)
        duplicate_into(graph, pred, merge)
        verify_graph(graph)
        assert observe(program, "f", [[5], [-5]]) == expected
