"""Translation validation: differential execution across configurations.

The strongest correctness signal available for a duplication-based
optimizer: compile the same source twice (DBDS off / DBDS on), run
both through the reference interpreter on concrete inputs, and demand
identical observable outcomes (return value or trap, plus the global
state).  :func:`fuzz_translation` drives this with generated programs
from :mod:`repro.analysis.progen`, which is how the ``repro check
--fuzz`` verb and the CI fuzz job catch miscompiles that no static
invariant can see.

Pipeline imports are deferred into the functions: this module is part
of :mod:`repro.analysis`, which the optimization framework itself
imports for phase guarding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from .progen import random_program

#: entry argument values used when the caller does not supply arg sets
DEFAULT_ARG_VALUES = (0, 1, 2, 3, 7)


@dataclass(frozen=True)
class DivergenceRecord:
    """One input on which two configurations disagreed."""

    entry: str
    args: tuple
    config_a: str
    config_b: str
    outcome_a: tuple
    outcome_b: tuple
    #: generator seed when the program came from the fuzzer
    seed: Optional[int] = None

    def format(self) -> str:
        where = f"{self.entry}({', '.join(map(repr, self.args))})"
        source = f" [seed {self.seed}]" if self.seed is not None else ""
        return (
            f"{where}{source}: {self.config_a} -> {self.outcome_a!r} but "
            f"{self.config_b} -> {self.outcome_b!r}"
        )


@dataclass
class ValidationResult:
    """Outcome of validating one program across configurations."""

    entry: str
    configs: list[str] = field(default_factory=list)
    runs: int = 0
    divergences: list[DivergenceRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _outcomes(program, entry: str, arg_sets: list[list[Any]]) -> list[tuple]:
    from ..interp.interpreter import Interpreter, observable_outcome

    interpreter = Interpreter(program)
    results = []
    for args in arg_sets:
        interpreter.reset()
        result = interpreter.run(entry, list(args))
        results.append(observable_outcome(result, interpreter.state))
    return results


def validate_translation(
    source: str,
    entry: str = "main",
    arg_sets: Optional[Iterable[Sequence[Any]]] = None,
    configs: Optional[Sequence] = None,
    seed: Optional[int] = None,
) -> ValidationResult:
    """Compile ``source`` under each configuration and compare runs.

    The first configuration is the reference (defaults: baseline vs.
    DBDS); every other configuration's observable outcomes must match
    it on every argument set.
    """
    from ..pipeline.compiler import compile_and_profile
    from ..pipeline.config import BASELINE, DBDS

    if configs is None:
        configs = (BASELINE, DBDS)
    sets = [list(args) for args in (arg_sets or [[v] for v in DEFAULT_ARG_VALUES])]
    result = ValidationResult(entry=entry, configs=[c.name for c in configs])

    per_config: list[tuple[str, list[tuple]]] = []
    for config in configs:
        program, _ = compile_and_profile(source, entry, sets, config)
        per_config.append((config.name, _outcomes(program, entry, sets)))
        result.runs += len(sets)

    reference_name, reference = per_config[0]
    for name, outcomes in per_config[1:]:
        for args, expected, actual in zip(sets, reference, outcomes):
            if actual != expected:
                result.divergences.append(
                    DivergenceRecord(
                        entry=entry,
                        args=tuple(args),
                        config_a=reference_name,
                        config_b=name,
                        outcome_a=expected,
                        outcome_b=actual,
                        seed=seed,
                    )
                )
    return result


@dataclass
class FuzzReport:
    """Aggregate of one translation-validation fuzz session."""

    programs: int = 0
    runs: int = 0
    elapsed: float = 0.0
    divergences: list[DivergenceRecord] = field(default_factory=list)
    #: seeds whose compilation itself crashed, with the error text
    compile_failures: list[tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.compile_failures

    def format(self) -> str:
        status = "ok" if self.ok else "FAILED"
        lines = [
            f"translation validation: {status} — {self.programs} programs, "
            f"{self.runs} runs in {self.elapsed:.1f}s"
        ]
        for seed, message in self.compile_failures:
            lines.append(f"  seed {seed}: compile error: {message}")
        for record in self.divergences:
            lines.append(f"  {record.format()}")
        return "\n".join(lines)


def fuzz_translation(
    seed: int = 0,
    programs: int = 20,
    time_budget: Optional[float] = None,
    configs: Optional[Sequence] = None,
    arg_values: Sequence[int] = DEFAULT_ARG_VALUES,
) -> FuzzReport:
    """Validate ``programs`` generated programs starting at ``seed``.

    A ``time_budget`` (seconds) bounds the session for CI: generation
    stops early once the budget is spent, however many programs ran.
    """
    report = FuzzReport()
    start = time.perf_counter()
    arg_sets = [[value] for value in arg_values]
    for index in range(programs):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
        program_seed = seed + index
        source = random_program(program_seed)
        try:
            result = validate_translation(
                source, "main", arg_sets, configs, seed=program_seed
            )
        except Exception as exc:  # compile crash: also a fuzz finding
            report.compile_failures.append(
                (program_seed, f"{type(exc).__name__}: {exc}")
            )
            report.programs += 1
            continue
        report.programs += 1
        report.runs += result.runs
        report.divergences.extend(result.divergences)
    report.elapsed = time.perf_counter() - start
    return report
