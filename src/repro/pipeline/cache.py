"""Persistent compilation-artifact cache.

A warm recompile of an unchanged source must skip the whole
simulate → trade-off → optimize pipeline.  The cache stores one
:class:`CacheEntry` per *(source, configuration, repro version,
profiling inputs)* combination — the optimized program (pickled), the
:class:`~repro.pipeline.compiler.CompilationReport`, the full event
trace of the original compilation, and a deterministic **artifact
manifest** (IR dump + DBDS decision list + size/duplication numbers,
no wall-clock fields) whose SHA-256 digest is the identity the
differential tests compare — parallel batch compiles must be
byte-identical to serial ones at the manifest level.

Storage layout and durability::

    <cache-dir>/<key[:2]>/<key>.entry
    # file = "<sha256-hex-of-payload>\n" + pickle(payload)

Writes go to a per-process temp file in the same directory followed by
``os.replace``, so concurrent writers of the same key can never
produce a torn read — the last complete write wins.  Reads verify the
leading digest; any mismatch or unpickling failure counts as a
corrupted entry: the file is deleted, a ``cache.evict`` event is
emitted, and the caller falls back to a cold compile.

Telemetry: ``cache.hit`` / ``cache.miss`` / ``cache.store`` /
``cache.evict`` events flow through :mod:`repro.obs` (the ambient
tracer by default); see docs/OBSERVABILITY.md for the schema and
docs/PIPELINE.md for the key diagram.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from ..ir.graph import Program
from ..obs.metrics import current_registry
from ..obs.sinks import event_from_dict, event_to_dict
from ..obs.tracer import Event, Tracer, current_tracer
from .compiler import CompilationReport
from .config import CompilerConfig

#: bump when the on-disk payload layout changes (invalidates old dirs).
#: v3: bytecode artifacts carry the fused/quickened fast stream
#: (extended opcodes, block spans, const ranges) — legacy v2 blobs
#: unpickle fine (class-level field defaults) but keyed entries are
#: invalidated so fused streams are rebuilt with stable opcode numbers.
#: v4: the aux store additionally carries exec-generated engine source
#: (closure drivers and whole-program megaunit modules, keyed per
#: repro.vm.codegen_cache) — old dirs are invalidated wholesale so a
#: v3 tree can never serve generated text to the new engines.
CACHE_SCHEMA_VERSION = 4

#: pickle protocol pinned so parent and pool workers agree
PICKLE_PROTOCOL = 4


def repro_version() -> str:
    """The package version baked into every cache key."""
    from .. import __version__

    return __version__


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def config_fingerprint(config: CompilerConfig) -> str:
    """Deterministic digest of every tunable in a configuration
    (delegates to :meth:`CompilerConfig.fingerprint`)."""
    return config.fingerprint()


def source_fingerprint(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def cache_key(
    source: str,
    config: CompilerConfig,
    entry: str = "main",
    profile_args: Sequence[Sequence[Any]] = ((10,),),
    check_ir: str = "off",
    version: Optional[str] = None,
) -> str:
    """The cache identity of one compilation.

    ``entry``/``profile_args`` are part of the key because the
    profiling run feeds branch probabilities into the trade-off tier —
    different profiles legitimately produce different artifacts.
    ``check_ir`` is included so a checked compile never satisfies a
    request for an unchecked one (and vice versa).
    """
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "source": source_fingerprint(source),
            "config": config_fingerprint(config),
            "version": version if version is not None else repro_version(),
            "entry": entry,
            "profile_args": [list(args) for args in profile_args],
            "check_ir": check_ir,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Artifact manifests
# ----------------------------------------------------------------------
_VALUE_NAME_RE = re.compile(r"\bv(\d+)\b")


def normalize_ir(dump: str) -> str:
    """Renumber SSA value names in an IR dump to first-appearance order.

    ``Value.id`` comes from a process-global counter, so two isomorphic
    compiles of the same source print different absolute ``vN`` names
    depending on what the process compiled before.  Manifests must be a
    function of the compilation alone — a pool worker and an inline
    compile have different ID histories but identical IR — so value
    names are canonicalized to ``v0, v1, ...`` in order of appearance.
    Block labels and parameter/constant names are already per-graph
    deterministic and pass through untouched.
    """
    mapping: dict[str, str] = {}

    def rename(match: "re.Match[str]") -> str:
        old = match.group(1)
        if old not in mapping:
            mapping[old] = f"v{len(mapping)}"
        return mapping[old]

    return _VALUE_NAME_RE.sub(rename, dump)


def artifact_manifest(
    program: Program,
    report: CompilationReport,
    events: Iterable[Event] = (),
) -> dict[str, Any]:
    """The deterministic identity of one compilation's output.

    Contains only reproducible facts — the optimized IR of every unit,
    the DBDS decision list (event attrs, no timestamps), code sizes,
    duplication and candidate counts.  Wall-clock fields are excluded
    on purpose: a parallel compile is *bit-identical* to a serial one
    exactly when the manifests match byte for byte.
    """
    decisions = [
        dict(sorted(event.attrs.items()))
        for event in events
        if event.name == "dbds.decision"
    ]
    manifest = {
        "config": report.config,
        "units": [
            {
                "function": unit.function,
                "code_size": unit.code_size,
                "initial_code_size": unit.initial_code_size,
                "duplications": unit.duplications,
                "candidates": unit.candidates,
            }
            for unit in report.units
        ],
        "ir": normalize_ir(program.describe()),
        "decisions": decisions,
    }
    manifest["digest"] = manifest_digest(manifest)
    return manifest


def manifest_digest(manifest: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON form (``digest`` key excluded)."""
    body = {k: v for k, v in manifest.items() if k != "digest"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
@dataclass
class CacheEntry:
    """Everything needed to skip a recompile.

    ``program_blob`` is the packed artifact — the pickled optimized
    :class:`Program` together with its VM bytecode translation (see
    :func:`pack_artifact`); ``events`` is the original compilation's
    full trace (so ``repro explain``-style decision rendering works
    offline from cache); ``counters`` is the original tracer's counter
    table.
    """

    key: str
    manifest: dict[str, Any]
    report: CompilationReport
    program_blob: bytes
    events: list[Event] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    #: memoized (program, bytecode) pair — unpickling is not free and
    #: callers ask for both halves of the same blob
    _artifact: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _unpack(self) -> tuple:
        if self._artifact is None:
            self._artifact = unpack_artifact(self.program_blob)
        return self._artifact

    def program(self) -> Program:
        """Rehydrate the optimized program."""
        return self._unpack()[0]

    def bytecode(self):
        """The VM translation of the program, or ``None`` for entries
        written before bytecode was cached (schema < 2 blobs)."""
        return self._unpack()[1]

    # -- serialization --------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "manifest": self.manifest,
            "report": self.report.to_json(),
            "program_blob": self.program_blob,
            "events": [event_to_dict(e) for e in self.events],
            "counters": dict(self.counters),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CacheEntry":
        return cls(
            key=payload["key"],
            manifest=payload["manifest"],
            report=CompilationReport.from_json(payload["report"]),
            program_blob=payload["program_blob"],
            events=[event_from_dict(d) for d in payload.get("events", [])],
            counters=dict(payload.get("counters", {})),
        )


def pack_artifact(program: Program, bytecode: Any = None) -> bytes:
    """Pickle ``(program, bytecode)`` as ONE blob.

    A single pickle keeps the node identity shared between the graphs
    and the bytecode (instruction tuples reference IR nodes for
    observers/profiles); two separate blobs would rehydrate two
    disconnected copies.
    """
    return pickle.dumps((program, bytecode), protocol=PICKLE_PROTOCOL)


def unpack_artifact(blob: bytes) -> tuple[Program, Any]:
    """Inverse of :func:`pack_artifact`; tolerates pre-schema-2 blobs
    that pickled a bare :class:`Program` (bytecode comes back None)."""
    obj = pickle.loads(blob)
    if isinstance(obj, Program):
        return obj, None
    return obj


def make_entry(
    key: str,
    program: Program,
    report: CompilationReport,
    events: Iterable[Event] = (),
    counters: Optional[dict[str, int]] = None,
    bytecode: Any = None,
) -> CacheEntry:
    """Build an entry from a just-finished compilation.

    Pass the VM ``bytecode`` translation to persist it alongside the
    program — cache hits then skip both the compile and the translate.
    """
    events = list(events)
    return CacheEntry(
        key=key,
        manifest=artifact_manifest(program, report, events),
        report=report,
        program_blob=pack_artifact(program, bytecode),
        events=events,
        counters=dict(counters or {}),
    )


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Tallies of one cache's lifetime (one process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def format(self) -> str:
        return (
            f"cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s), {self.evictions} eviction(s) "
            f"({self.hit_rate * 100.0:.0f}% hit rate)"
        )


class ArtifactCache:
    """Content-addressed store of :class:`CacheEntry` files.

    Thread/process safe for writers (atomic ``os.replace``); readers
    verify a whole-payload digest, so a reader can never observe a
    partially written entry — worst case it misses.
    """

    def __init__(
        self, root: Union[str, Path], verify_bytecode: str = "off"
    ) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        #: ``--check-bc`` mode: anything but "off" runs the static
        #: bytecode verifier on every loaded artifact before it can
        #: reach a dispatch loop (failure → evict + miss → recompile)
        self.verify_bytecode = verify_bytecode

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.entry"

    # ------------------------------------------------------------------
    def get(self, key: str, tracer: Optional[Tracer] = None) -> Optional[CacheEntry]:
        """The entry for ``key``, or None (miss or corrupted)."""
        tracer = tracer if tracer is not None else current_tracer()
        registry = current_registry()
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            tracer.count("cache.miss")
            tracer.event("cache.miss", key=key)
            registry.inc("repro_cache_lookups_total", result="miss")
            return None
        entry = self._decode(key, raw)
        if entry is None:
            self._evict(key, path, "corrupted entry", tracer)
            self.stats.misses += 1
            tracer.count("cache.miss")
            tracer.event("cache.miss", key=key)
            registry.inc("repro_cache_lookups_total", result="miss")
            return None
        if self.verify_bytecode != "off":
            reason = self._verify_entry(entry)
            if reason is not None:
                self._evict(key, path, reason, tracer)
                registry.inc("repro_bcverify_rejected_artifacts_total")
                self.stats.misses += 1
                tracer.count("cache.miss")
                tracer.event("cache.miss", key=key)
                registry.inc("repro_cache_lookups_total", result="miss")
                return None
        self.stats.hits += 1
        tracer.count("cache.hit")
        tracer.event("cache.hit", key=key, path=str(path))
        registry.inc("repro_cache_lookups_total", result="hit")
        registry.observe("repro_cache_entry_bytes", len(raw), op="get")
        return entry

    def _verify_entry(self, entry: CacheEntry) -> Optional[str]:
        """Statically verify a decoded artifact's bytecode.

        Returns an eviction reason, or None when the entry is sound.
        The digest check in :meth:`_decode` only proves the *file* is
        the bytes someone wrote; this proves the decoded instruction
        streams are well-formed and equivalent to a fresh translation
        of the cached program, so a tampered-but-redigested artifact
        still can't reach dispatch.
        """
        from ..analysis.bcverify import verify_artifact

        try:
            program = entry.program()
            bytecode = entry.bytecode()
        except Exception as exc:
            return f"artifact unpickle failed: {type(exc).__name__}"
        if bytecode is None:
            # pre-schema-2 blob: nothing cached to verify; the caller
            # translates fresh, which the rewrite mode covers.
            return None
        report = verify_artifact(program, bytecode)
        if report.ok:
            return None
        errors = report.errors()
        return (
            f"bytecode verification failed ({len(errors)} error(s)): "
            f"{errors[0].format()}"
        )

    def put(
        self, entry: CacheEntry, tracer: Optional[Tracer] = None
    ) -> Path:
        """Atomically persist ``entry``; returns its path."""
        tracer = tracer if tracer is not None else current_tracer()
        path = self.path_for(entry.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(entry.to_payload(), protocol=PICKLE_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{entry.key[:8]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(digest.encode("ascii") + b"\n" + payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        tracer.count("cache.store")
        tracer.event("cache.store", key=entry.key, path=str(path))
        registry = current_registry()
        registry.inc("repro_cache_stores_total")
        registry.observe("repro_cache_entry_bytes", len(payload), op="put")
        return path

    # ------------------------------------------------------------------
    # Aux blobs: small digest-verified side artifacts keyed separately
    # from compilation entries — the tiered engine stores its
    # profile-fingerprint-keyed tier-up plans here (docs/TIERING.md).
    # Same durability story as entries: atomic replace on write, a
    # whole-payload digest on read, corrupted files evicted.
    # ------------------------------------------------------------------
    def aux_path_for(self, key: str) -> Path:
        return self.root / "aux" / key[:2] / f"{key}.aux"

    def get_aux(self, key: str, tracer: Optional[Tracer] = None) -> Optional[Any]:
        """The aux payload for ``key``, or None (miss or corrupted)."""
        tracer = tracer if tracer is not None else current_tracer()
        registry = current_registry()
        path = self.aux_path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            tracer.count("cache.miss")
            tracer.event("cache.miss", key=key, kind="aux")
            registry.inc("repro_cache_lookups_total", result="miss")
            return None
        payload: Optional[Any] = None
        try:
            digest, body = raw.split(b"\n", 1)
            if hashlib.sha256(body).hexdigest().encode("ascii") == digest:
                payload = pickle.loads(body)
        except Exception:
            payload = None
        if payload is None:
            self._evict(key, path, "corrupted aux blob", tracer)
            self.stats.misses += 1
            tracer.count("cache.miss")
            tracer.event("cache.miss", key=key, kind="aux")
            registry.inc("repro_cache_lookups_total", result="miss")
            return None
        self.stats.hits += 1
        tracer.count("cache.hit")
        tracer.event("cache.hit", key=key, path=str(path), kind="aux")
        registry.inc("repro_cache_lookups_total", result="hit")
        return payload

    def put_aux(
        self, key: str, payload: Any, tracer: Optional[Tracer] = None
    ) -> Path:
        """Atomically persist an aux ``payload``; returns its path."""
        tracer = tracer if tracer is not None else current_tracer()
        path = self.aux_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
        digest = hashlib.sha256(body).hexdigest()
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(digest.encode("ascii") + b"\n" + body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        tracer.count("cache.store")
        tracer.event("cache.store", key=key, path=str(path), kind="aux")
        current_registry().inc("repro_cache_stores_total")
        return path

    # ------------------------------------------------------------------
    def _decode(self, key: str, raw: bytes) -> Optional[CacheEntry]:
        """Parse + verify one entry file; None means corrupted."""
        try:
            digest, payload = raw.split(b"\n", 1)
            if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
                return None
            entry = CacheEntry.from_payload(pickle.loads(payload))
            if entry.key != key:
                return None
            return entry
        except Exception:
            return None

    def _evict(
        self, key: str, path: Path, reason: str, tracer: Tracer
    ) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.evictions += 1
        tracer.count("cache.evict")
        tracer.event("cache.evict", key=key, reason=reason)
        current_registry().inc("repro_cache_evictions_total")
