"""Human-readable duplication-decision reports.

Since the telemetry subsystem landed, explanation is event-driven:
``explain_candidates`` records one ``dbds.decision`` event per
predecessor-merge pair through the same
:func:`~repro.dbds.tradeoff.evaluate_candidate` /
:func:`~repro.dbds.tradeoff.emit_decision` path the real
:class:`~repro.dbds.phase.DbdsPhase` uses, then renders the report
*from the recorded events* — no second implementation of the
Section 5.4 ``shouldDuplicate`` terms exists.  The same renderer
(:func:`format_decision_events`) works on decision events read back
from a ``--trace-out`` JSONL file of an actual compilation.  Exposed
as ``python -m repro explain prog.mini``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..costmodel.estimator import graph_code_size
from ..ir.graph import Graph, Program
from ..obs.tracer import Event, Tracer, use_tracer
from .simulation import SimulationResult, SimulationTier
from .tradeoff import (
    REASON_ACCEPT,
    REASON_BUDGET,
    REASON_THRESHOLD,
    REASON_UNIT_SIZE,
    TradeOffConfig,
    emit_decision,
    evaluate_candidate,
    sort_candidates,
)


@dataclass
class CandidateExplanation:
    """One candidate's full trade-off story."""

    candidate: SimulationResult
    weighted: float
    threshold_term: bool
    unit_size_term: bool
    budget_term: bool

    @property
    def accepted(self) -> bool:
        return self.threshold_term and self.unit_size_term and self.budget_term

    def verdict(self) -> str:
        if self.accepted:
            return "DUPLICATE"
        reasons = []
        if not self.threshold_term:
            reasons.append(REASON_THRESHOLD)
        if not self.unit_size_term:
            reasons.append(REASON_UNIT_SIZE)
        if not self.budget_term:
            reasons.append(REASON_BUDGET)
        return "skip (" + ", ".join(reasons) + ")"


def record_decisions(
    graph: Graph,
    program: Optional[Program] = None,
    config: Optional[TradeOffConfig] = None,
) -> tuple[list[SimulationResult], list[Event]]:
    """Simulate every pair and record a ``dbds.decision`` event each,
    without changing the graph.

    The budget term is evaluated against the *current* size for each
    candidate independently (the real optimization tier consumes budget
    as it goes, so later candidates there can see a tighter budget).
    """
    config = config or TradeOffConfig()
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        tier = SimulationTier(graph, program)
        candidates = sort_candidates(tier.run(), config)
        size = graph_code_size(graph)
        for candidate in candidates:
            decision = evaluate_candidate(candidate, size, size, config)
            emit_decision(tracer, graph.name, candidate, decision, mode="explain")
    return candidates, tracer.named("dbds.decision")


def explain_candidates(
    graph: Graph,
    program: Optional[Program] = None,
    config: Optional[TradeOffConfig] = None,
) -> list[CandidateExplanation]:
    """Record decision events and rebuild per-candidate explanations."""
    candidates, events = record_decisions(graph, program, config)
    by_pair = {(c.merge.name, c.pred.name): c for c in candidates}
    explanations = []
    for event in events:
        attrs = event.attrs
        explanations.append(
            CandidateExplanation(
                candidate=by_pair[(attrs["merge"], attrs["pred"])],
                weighted=attrs["weighted"],
                threshold_term=attrs["threshold_term"],
                unit_size_term=attrs["unit_size_term"],
                budget_term=attrs["budget_term"],
            )
        )
    return explanations


def format_explanations(
    graph: Graph, explanations: list[CandidateExplanation]
) -> str:
    """Render the report the way a compiler log would."""
    lines = [
        f"DBDS candidate report for {graph.name!r} "
        f"(unit size {graph_code_size(graph):.0f})",
    ]
    if not explanations:
        lines.append("  no predecessor-merge pairs to consider")
        return "\n".join(lines)
    for rank, explanation in enumerate(explanations, start=1):
        c = explanation.candidate
        fired = ", ".join(sorted(set(c.reasons))) or "nothing fires"
        lines.append(
            f"  #{rank} {c.merge.name} -> {c.pred.name}: "
            f"benefit {c.benefit:.1f} cyc x p {c.probability:.2f} "
            f"= {explanation.weighted:.2f}, cost {c.cost:.1f}"
        )
        lines.append(f"      enables: {fired}")
        lines.append(f"      decision: {explanation.verdict()}")
    return "\n".join(lines)


def format_decision_events(events: Iterable[Event]) -> str:
    """Render recorded ``dbds.decision`` events (e.g. read back from a
    JSONL trace of a real compilation) in the same log style."""
    decisions = [e for e in events if e.name == "dbds.decision"]
    if not decisions:
        return "no DBDS decisions recorded"
    lines = []
    for rank, event in enumerate(decisions, start=1):
        a = event.attrs
        verdict = (
            "DUPLICATE"
            if a.get("accepted")
            else "skip (" + str(a.get("reason", "?")) + ")"
        )
        weighted = a.get("weighted", a["benefit"] * a["probability"])
        lines.append(
            f"  #{rank} [{a.get('graph', '?')}] {a['merge']} -> {a['pred']}: "
            f"benefit {a['benefit']:.1f} cyc x p {a['probability']:.2f} "
            f"= {weighted:.2f}, cost {a['cost']:.1f}"
        )
        detail = f"      decision: {verdict}"
        if "iteration" in a:
            detail += f"  (iteration {a['iteration']}, mode {a.get('mode', 'dbds')})"
        lines.append(detail)
    return "\n".join(lines)


def explain_graph(
    graph: Graph,
    program: Optional[Program] = None,
    config: Optional[TradeOffConfig] = None,
) -> str:
    """One-call convenience: simulate, evaluate, render."""
    return format_explanations(
        graph, explain_candidates(graph, program, config)
    )
