"""Experiment T7 — Figure 7: Java/Scala micro benchmarks.

Paper geomeans: DBDS +8.07% perf / +15.38% compile time / +11.53% size;
dupalot +8.57% perf / +26.41% compile time / +25.78% size.  The paper
highlights 5–40% per-benchmark gains from streams/lambdas patterns
(escape analysis + redundant type checks).

Shape checks: the micro suite shows clear performance wins, and for at
least one benchmark DBDS matches or beats dupalot despite duplicating
less (the paper's akkaPP observation, Section 6.2).
"""

from _support import record_figure

from repro.bench.harness import format_suite_report, run_suite
from repro.bench.workloads.suites import MICRO


def test_fig7_micro(benchmark):
    report = benchmark.pedantic(lambda: run_suite(MICRO), rounds=1, iterations=1)
    record_figure("fig7_micro", format_suite_report(report))
    assert report.geomean_speedup("dbds") > 0.0
    assert any(
        row.speedup("dbds") >= row.speedup("dupalot") for row in report.rows
    )
